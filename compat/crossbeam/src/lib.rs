//! Offline compatibility shim for the [`crossbeam`](https://docs.rs/crossbeam)
//! API surface this workspace uses.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. The `spmd` runtime only needs
//! unbounded MPSC channels with cloneable senders; `std::sync::mpsc`
//! provides exactly that, so this crate re-exports it under crossbeam's
//! names. Swap the workspace dependency back to the real crate when a
//! registry is available — no call sites change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels (here: the MPSC subset).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side of a channel is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crate: Debug regardless of T, without printing T.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when all senders of a channel are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with no message, or every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders have hung up; no message will ever arrive.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Cloneable, so a full
    /// point-to-point mesh can fan one receiver out to many senders.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send `value`, failing only if the receiver has hung up.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives, failing only if every sender has
        /// hung up.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receive without blocking, if a value is ready.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.0.try_recv().map_err(|_| RecvError)
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(42u32).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(1).unwrap());
            s.spawn(move || tx2.send(2).unwrap());
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }
}
