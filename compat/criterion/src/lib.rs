//! Offline compatibility shim for the [`criterion`](https://docs.rs/criterion)
//! API subset this workspace uses.
//!
//! Unlike the other compat shims this one must actually *measure*: the
//! acceptance criteria for the remap work are stated as criterion
//! speedups. Each benchmark runs a short warm-up, then `sample_size`
//! timed samples (each sample auto-scales its iteration count to a
//! per-sample time slice of `measurement_time / sample_size`), and
//! prints the median per-iteration time plus throughput. No plots, no
//! statistics beyond median/min/max, no HTML report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Work-per-iteration declaration used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    /// Iterations per sample, chosen during warm-up.
    iters_per_sample: u64,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine`, called repeatedly; its return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let sample_count = self.samples.capacity().max(1);
        for _ in 0..self.iters_per_sample.max(1) {
            black_box(routine());
        }
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample.max(1) {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn format_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time spent warming up (and calibrating iteration count) per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark that closes over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: BenchmarkId, mut f: F) {
        // Calibration pass: time one iteration, then scale so each sample
        // fills its slice of the measurement budget.
        let mut probe = Bencher {
            samples: Vec::with_capacity(1),
            iters_per_sample: 1,
            _marker: std::marker::PhantomData,
        };
        let warm_start = Instant::now();
        f(&mut probe);
        let once = probe
            .samples
            .first()
            .copied()
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));
        // Keep warming until the warm-up budget is spent.
        while warm_start.elapsed() < self.warm_up_time {
            let mut w = Bencher {
                samples: Vec::with_capacity(1),
                iters_per_sample: 1,
                _marker: std::marker::PhantomData,
            };
            f(&mut w);
        }
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = (per_sample / once.as_secs_f64()).floor().clamp(1.0, 1e9) as u64;

        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: iters,
            _marker: std::marker::PhantomData,
        };
        f(&mut bencher);

        let mut per_iter: Vec<Duration> = bencher
            .samples
            .iter()
            .map(|s| *s / u32::try_from(iters).unwrap_or(u32::MAX).max(1))
            .collect();
        per_iter.sort_unstable();
        if per_iter.is_empty() {
            println!("{}/{}: no samples collected", self.name, id.id);
            return;
        }
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  thrpt: {:.3} Melem/s", per_sec / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  thrpt: {:.3} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{}/{}: time [{} {} {}]{}",
            self.name,
            id.id,
            format_time(lo),
            format_time(median),
            format_time(hi),
            rate
        );
    }

    /// End the group (separator line, matching criterion's API shape).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a [`BenchmarkGroup`] named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(BenchmarkId::from(name), &mut f);
        self
    }
}

/// Bundle benchmark functions under one name (`criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups (`criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(256));
        group.bench_with_input(BenchmarkId::new("sum", 256), &256u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
