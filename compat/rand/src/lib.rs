//! Offline compatibility shim for the [`rand`](https://docs.rs/rand/0.8) 0.8
//! API subset this workspace uses: `StdRng::seed_from_u64`, `SmallRng`,
//! and `Rng::gen_range` over primitive ranges.
//!
//! The generator is SplitMix64 — statistically fine for test workloads and
//! deterministic per seed, which is all the experiment harness needs. The
//! streams differ from the real crate's ChaCha-based `StdRng`, so absolute
//! key sequences change if the real crate is restored; nothing in the
//! workspace depends on the specific stream, only on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Core random-number generation: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, here only from a `u64` (the one entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types `gen_range` can sample uniformly from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias over a 64-bit draw is irrelevant here.
                let draw = rng.next_u64() as u128;
                self.start + ((draw * span) >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 — the shim's stand-in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    /// Small fast generator — same engine as [`StdRng`] in this shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn low_bits_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0u32..8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }
}
