//! Offline compatibility shim for the [`proptest`](https://docs.rs/proptest)
//! API subset this workspace uses.
//!
//! Implements the `proptest!` macro, `any::<T>()`, integer/float range
//! strategies, `Just`, `prop_perturb`, `proptest::collection::vec`, and
//! `ProptestConfig::with_cases`. Differences from the real crate, accepted
//! for an offline build:
//!
//! * **No shrinking** — a failing case panics with its index; rerun with
//!   the same binary to reproduce (generation is deterministic per test).
//! * **`prop_assert!`/`prop_assert_eq!` panic** instead of returning
//!   `Err(TestCaseError)`; with shrinking gone the distinction is moot.
//! * Generation draws from SplitMix64, not proptest's RNG, so specific
//!   generated values differ from the real crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::TestRng;

/// Error type carried by a generated test case's `Result` (kept for
/// source compatibility with `return Ok(())` in test bodies; this shim's
/// assertions panic instead of constructing it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier machine
        // tests (thread-per-rank SPMD runs per case) CI-friendly.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The real crate separates strategies from value
/// trees to support shrinking; without shrinking, a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with access to a fork of the RNG
    /// (proptest's `prop_perturb`).
    fn prop_perturb<O, F>(self, fun: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, fun }
    }

    /// Map generated values through `fun` (proptest's `prop_map`).
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, fun }
    }
}

/// Strategy produced by [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.fun)(value, rng.fork())
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit values take two draws; a single truncating cast would leave the
// high half permanently zero.
impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Permitted sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
/// Parameters may also be written `name: Type` as shorthand for
/// `name in any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { [$cfg] [$body] [] $($params)* }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters munched: run the cases. Values are bound with `let`
    // patterns (not closure parameters) so their types infer from the
    // strategy expressions; the body runs in a zero-argument closure to
    // give `return Ok(())` a `Result` context.
    ([$cfg:expr] [$body:block] [$(($pat:pat) ($strat:expr))*]) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        for __case in 0..__config.cases {
            $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
            #[allow(clippy::redundant_closure_call)]
            let __result: ::std::result::Result<(), $crate::TestCaseError> =
                (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(__e) = __result {
                panic!("proptest case {} failed: {:?}", __case, __e);
            }
        }
    }};
    // `pat in strategy` (last, optional trailing comma handled by the
    // empty-tail arm above).
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat_param in $s:expr) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($s)] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat_param in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($s)] $($rest)* }
    };
    // `name: Type` shorthand.
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:ident : $t:ty) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($crate::any::<$t>())] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($crate::any::<$t>())] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn type_shorthand_and_mut_patterns(mut v in crate::collection::vec(any::<u8>(), 0..9), flag: bool) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            let _ = flag;
        }

        #[test]
        fn perturb_provides_rng(x in Just(5u32).prop_perturb(|v, mut rng| v + (rng.next_u32() % 2))) {
            prop_assert!(x == 5 || x == 6);
        }

        #[test]
        fn early_return_ok_compiles(x in 0u32..10) {
            if x < 100 { return Ok(()); }
            prop_assert!(false);
        }
    }

    #[test]
    fn fixed_vec_size() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(0u32..4, 16usize);
        assert_eq!(Strategy::generate(&s, &mut rng).len(), 16);
    }
}
