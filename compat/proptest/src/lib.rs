//! Offline compatibility shim for the [`proptest`](https://docs.rs/proptest)
//! API subset this workspace uses.
//!
//! Implements the `proptest!` macro, `any::<T>()`, integer/float range
//! strategies, `Just`, `prop_perturb`, `proptest::collection::vec`, and
//! `ProptestConfig::with_cases`. Differences from the real crate, accepted
//! for an offline build:
//!
//! * **No shrinking** — a failing case panics with its index; rerun with
//!   the same binary to reproduce (generation is deterministic per test).
//! * **`prop_assert!`/`prop_assert_eq!` panic** instead of returning
//!   `Err(TestCaseError)`; with shrinking gone the distinction is moot.
//! * Generation draws from SplitMix64, not proptest's RNG, so specific
//!   generated values differ from the real crate's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::TestRng;

/// Error type carried by a generated test case's `Result` (kept for
/// source compatibility with `return Ok(())` in test bodies; this shim's
/// assertions panic instead of constructing it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded.
    Reject(String),
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the heavier machine
        // tests (thread-per-rank SPMD runs per case) CI-friendly.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The real crate separates strategies from value
/// trees to support shrinking; without shrinking, a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with access to a fork of the RNG
    /// (proptest's `prop_perturb`).
    fn prop_perturb<O, F>(self, fun: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, fun }
    }

    /// Map generated values through `fun` (proptest's `prop_map`).
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, fun }
    }
}

/// Strategy produced by [`Strategy::prop_perturb`].
#[derive(Debug, Clone)]
pub struct Perturb<S, F> {
    inner: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value, TestRng) -> O> Strategy for Perturb<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.fun)(value, rng.fork())
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    fun: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit values take two draws; a single truncating cast would leave the
// high half permanently zero.
impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Permitted sizes for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies for record-sort tuples — keys at one of the serving
/// stack's wire widths (4, 8 or 16 bytes) plus an opaque payload of
/// `stride` bytes per key. Shared by `tests/records.rs` and
/// `tests/wire.rs` so both suites draw the same input distribution.
pub mod record {
    use super::{Arbitrary, Strategy, TestRng};

    /// One generated record request, width-agnostic: keys are held as
    /// `u128` values masked to the width, and the payload holds
    /// `keys.len() * stride` bytes (row `i` belongs to `keys[i]`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RecordCase {
        /// Key width in bytes: 4, 8 or 16.
        pub width: u8,
        /// Keys, each below `2^(8*width)`.
        pub keys: Vec<u128>,
        /// Payload bytes per key.
        pub stride: usize,
        /// `keys.len() * stride` payload bytes.
        pub payload: Vec<u8>,
        /// Sort direction for the case.
        pub descending: bool,
    }

    impl RecordCase {
        /// Largest key the case's width admits.
        #[must_use]
        pub fn key_mask(&self) -> u128 {
            width_mask(self.width)
        }
    }

    fn width_mask(width: u8) -> u128 {
        if width == 16 {
            u128::MAX
        } else {
            (1u128 << (8 * u32::from(width))) - 1
        }
    }

    /// Strategy behind [`record_cases`] / [`dup_heavy_record_cases`].
    #[derive(Debug, Clone)]
    pub struct RecordCaseStrategy {
        max_keys: usize,
        max_stride: usize,
        dup_heavy: bool,
    }

    impl Strategy for RecordCaseStrategy {
        type Value = RecordCase;
        fn generate(&self, rng: &mut TestRng) -> RecordCase {
            use rand::Rng as _;
            let width = [4u8, 8, 16][rng.gen_range(0..3usize)];
            let mask = width_mask(width);
            let n = rng.gen_range(0..self.max_keys + 1);
            let stride = rng.gen_range(0..self.max_stride + 1);
            let keys: Vec<u128> = if self.dup_heavy && n > 0 {
                // Draw from a tiny pool so nearly every key collides —
                // the stability-stressing distribution.
                let pool: Vec<u128> = (0..rng.gen_range(1..5usize))
                    .map(|_| u128::arbitrary(rng) & mask)
                    .collect();
                (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
            } else {
                (0..n).map(|_| u128::arbitrary(rng) & mask).collect()
            };
            let payload: Vec<u8> = (0..n * stride).map(|_| u8::arbitrary(rng)).collect();
            RecordCase {
                width,
                keys,
                stride,
                payload,
                descending: bool::arbitrary(rng),
            }
        }
    }

    /// Record cases with up to `max_keys` uniformly random keys and up
    /// to `max_stride` payload bytes per key, across all three widths
    /// and both directions (stride 0 and the empty request included).
    #[must_use]
    pub fn record_cases(max_keys: usize, max_stride: usize) -> RecordCaseStrategy {
        RecordCaseStrategy {
            max_keys,
            max_stride,
            dup_heavy: false,
        }
    }

    /// [`record_cases`] drawing keys from a pool of at most four
    /// distinct values, so ties dominate and stability bugs surface.
    #[must_use]
    pub fn dup_heavy_record_cases(max_keys: usize, max_stride: usize) -> RecordCaseStrategy {
        RecordCaseStrategy {
            max_keys,
            max_stride,
            dup_heavy: true,
        }
    }

    impl Arbitrary for RecordCase {
        fn arbitrary(rng: &mut TestRng) -> Self {
            record_cases(48, 8).generate(rng)
        }
    }
}

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test (panics in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` over generated inputs.
/// Parameters may also be written `name: Type` as shorthand for
/// `name in any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { [$cfg] [$body] [] $($params)* }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters munched: run the cases. Values are bound with `let`
    // patterns (not closure parameters) so their types infer from the
    // strategy expressions; the body runs in a zero-argument closure to
    // give `return Ok(())` a `Result` context.
    ([$cfg:expr] [$body:block] [$(($pat:pat) ($strat:expr))*]) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::deterministic();
        for __case in 0..__config.cases {
            $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
            #[allow(clippy::redundant_closure_call)]
            let __result: ::std::result::Result<(), $crate::TestCaseError> =
                (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(__e) = __result {
                panic!("proptest case {} failed: {:?}", __case, __e);
            }
        }
    }};
    // `pat in strategy` (last, optional trailing comma handled by the
    // empty-tail arm above).
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat_param in $s:expr) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($s)] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat_param in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($s)] $($rest)* }
    };
    // `name: Type` shorthand.
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:ident : $t:ty) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($crate::any::<$t>())] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* ($p) ($crate::any::<$t>())] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn type_shorthand_and_mut_patterns(mut v in crate::collection::vec(any::<u8>(), 0..9), flag: bool) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            let _ = flag;
        }

        #[test]
        fn perturb_provides_rng(x in Just(5u32).prop_perturb(|v, mut rng| v + (rng.next_u32() % 2))) {
            prop_assert!(x == 5 || x == 6);
        }

        #[test]
        fn early_return_ok_compiles(x in 0u32..10) {
            if x < 100 { return Ok(()); }
            prop_assert!(false);
        }

        #[test]
        fn record_cases_are_well_formed(case in crate::record::record_cases(12, 5)) {
            prop_assert!([4u8, 8, 16].contains(&case.width));
            prop_assert!(case.keys.len() <= 12);
            prop_assert!(case.stride <= 5);
            prop_assert_eq!(case.payload.len(), case.keys.len() * case.stride);
            let mask = case.key_mask();
            prop_assert!(case.keys.iter().all(|k| *k <= mask));
        }

        #[test]
        fn dup_heavy_cases_actually_collide(case in crate::record::dup_heavy_record_cases(32, 2)) {
            let mut distinct = case.keys.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert!(distinct.len() <= 4);
        }
    }

    #[test]
    fn fixed_vec_size() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(0u32..4, 16usize);
        assert_eq!(Strategy::generate(&s, &mut rng).len(), 16);
    }
}
