//! The RNG handed to strategies and `prop_perturb` closures.

/// Deterministic test RNG (SplitMix64, like the `rand` shim's `StdRng`).
///
/// Exposes `next_u32`/`next_u64` as inherent methods so `prop_perturb`
/// closures can draw bits without importing a trait, and also implements
/// [`rand::RngCore`] so `gen_range` and friends work on it.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed RNG driving a `proptest!` run.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5EED_CAFE_F00D_D00D,
        }
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Split off an independent child RNG (used by `prop_perturb`, which
    /// receives the fork by value).
    #[must_use]
    pub fn fork(&mut self) -> TestRng {
        TestRng {
            state: self.next_u64() | 1,
        }
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        TestRng::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn forks_diverge_from_parent() {
        let mut a = TestRng::deterministic();
        let mut fork = a.fork();
        assert_ne!(a.next_u64(), fork.next_u64());
    }
}
