//! Offline compatibility shim for the [`parking_lot`](https://docs.rs/parking_lot)
//! API surface this workspace uses: a non-poisoning [`Mutex`] whose
//! `lock()` returns the guard directly, and a [`Condvar`] whose `wait`
//! takes the guard by `&mut`. Backed by `std::sync`; poisoning is
//! swallowed (a panicking rank already aborts the whole SPMD run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Internally an `Option` so [`Condvar::wait`] can move the underlying
/// std guard out and back without unsafe code.
pub struct MutexGuard<'a, T>(Option<StdGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, blocking until it is available. Never panics on
    /// poisoning — the protected state of a poisoned lock is returned
    /// as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard is present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard is present outside wait")
    }
}

/// Outcome of a [`Condvar::wait_for`]: did the wait hit its deadline?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable whose `wait` reborrows the guard in place.
#[derive(Debug, Default)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// New condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar(StdCondvar::new())
    }

    /// Atomically release the lock and block until notified; the lock is
    /// reacquired before returning. Spurious wakeups are possible, as with
    /// every condvar — callers must re-check their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard is present outside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`. Returns a
    /// [`WaitTimeoutResult`] whose `timed_out()` reports whether the wait
    /// ended by deadline rather than notification. Spurious wakeups are
    /// possible either way — callers must re-check their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard is present outside wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        drop(guard);
        assert_eq!(*m.lock(), ());
    }
}
