//! Cross-shard bulk-sort guarantees: a request larger than every band,
//! split by sampled splitters and merged back, answers byte-identically
//! to a single pool and the independent oracle — on adversarial inputs
//! as well as random ones — partition skew respects the configured
//! bound on random input, a refused partition fails the whole request
//! with a structured shard-and-reason failure, and the virtual-time
//! engine twin replays scatter/merge bit for bit.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use obs::TraceConfig;
use proptest::prelude::*;
use sort_service::{
    split, BulkConfig, BulkReason, ClassConfig, EngineEvent, Rejection, ServiceConfig, ShardEngine,
    ShardedConfig, ShardedService, SortError, SortRequest, SortService,
};
use std::time::Duration;

/// A two-band bulk-enabled topology small enough for tests: requests up
/// to 64 keys are "small", up to 256 keys are "large", one 2-rank
/// machine each; anything above 256 keys takes the split path.
fn bulk_bands() -> ShardedConfig {
    let base = ServiceConfig::new(2);
    let mut small = base;
    small.max_wait = Duration::from_micros(200);
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, small),
            ClassConfig::new("large", 256, base),
        ],
        steal_after: None,
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::on(),
    };
    cfg.validate();
    cfg
}

/// A single pool with admission opened wide enough to take any request
/// these tests offer whole — the equal-answer baseline.
fn wide_single_pool() -> SortService {
    let mut cfg = ServiceConfig::new(2);
    cfg.max_request_keys = 1 << 13;
    cfg.max_batch_keys = cfg.max_batch_keys.max(1 << 13);
    SortService::start(cfg)
}

/// Submit one request to each service and demand byte-identical replies
/// that also match the oracle.
fn assert_equivalent(
    tag: &str,
    sharded: &ShardedService,
    single: &SortService,
    keys: &[u32],
    dir: Direction,
) {
    let expected = sorted_independently(keys, dir);
    let bulk = sharded
        .submit(SortRequest::new(keys.to_vec(), dir))
        .unwrap_or_else(|r| panic!("{tag}: bulk submit refused: {r}"))
        .wait()
        .unwrap_or_else(|e| panic!("{tag}: bulk request failed: {e}"));
    let pool = single
        .submit(SortRequest::new(keys.to_vec(), dir))
        .unwrap_or_else(|r| panic!("{tag}: single-pool submit refused: {r}"))
        .wait()
        .unwrap_or_else(|e| panic!("{tag}: single-pool request failed: {e}"));
    assert_eq!(bulk, expected, "{tag}: bulk reply differs from the oracle");
    assert_eq!(bulk, pool, "{tag}: bulk and single-pool replies differ");
}

/// The adversarial fixed corpus: inputs chosen to break splitter
/// selection — no key diversity at all, already sorted either way, and
/// heavy duplication straddling every splitter boundary.
#[test]
fn adversarial_bulk_inputs_match_oracle_and_single_pool() {
    let sharded = ShardedService::start(bulk_bands());
    let single = wide_single_pool();
    let cases: Vec<(&str, Vec<u32>, Direction)> = vec![
        ("all-equal", vec![7; 700], Direction::Ascending),
        ("all-equal desc", vec![3; 400], Direction::Descending),
        ("presorted", (0..600).collect(), Direction::Ascending),
        (
            "reverse-sorted",
            (0..600).rev().collect(),
            Direction::Ascending,
        ),
        (
            "dups across splitters",
            (0..900).map(|i| i % 8).collect(),
            Direction::Ascending,
        ),
        (
            "dups descending",
            (0..900).map(|i| i % 8).collect(),
            Direction::Descending,
        ),
        ("random desc", uniform_keys(1111, 42), Direction::Descending),
    ];
    let total = cases.len() as u64;
    for (tag, keys, dir) in &cases {
        assert_equivalent(tag, &sharded, &single, keys, *dir);
    }
    let stats = sharded.shutdown().stats;
    assert_eq!(
        stats.bulk_submitted, total,
        "every case took the split path"
    );
    assert_eq!(stats.bulk_completed, total);
    assert_eq!(stats.bulk_failed, 0);
    let _ = single.shutdown();
}

/// Plan-level degenerate shapes: fewer keys than shards still scatter,
/// sort, and merge to the oracle (the service never sees these — they
/// route in-band — but the plan must not assume `n >= shards`).
#[test]
fn split_plan_handles_fewer_keys_than_shards() {
    let bands = vec![64, 256, 1024];
    let cfg = BulkConfig::on();
    for n in 1..=4usize {
        let keys: Vec<u32> = (0..n as u32).map(|i| 1000 - i).collect();
        let plan = split::plan(&keys, &bands, &cfg);
        let mut scattered: Vec<u32> = plan.parts.iter().flat_map(|p| p.keys.clone()).collect();
        scattered.sort_unstable();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(scattered, expect, "n={n}: scatter loses or invents keys");
        let sorted_parts: Vec<Vec<u32>> = plan
            .parts
            .iter()
            .map(|p| {
                let mut s = p.keys.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(
            split::merge_parts(&sorted_parts, Direction::Ascending),
            expect,
            "n={n}: merge differs from the oracle"
        );
    }
}

/// Satellite regression: with the split path disabled, an over-band
/// request is refused with `TooLarge` reporting the *widest* admitting
/// band's limit — not the first band's — so the wire `detail` names the
/// real ceiling.
#[test]
fn disabled_bulk_reports_the_widest_band_limit() {
    let mut cfg = bulk_bands();
    cfg.bulk = BulkConfig::default();
    let sharded = ShardedService::start(cfg);
    match sharded.submit(SortRequest::new(vec![1; 300], Direction::Ascending)) {
        Err(Rejection::TooLarge { keys, limit }) => {
            assert_eq!(keys, 300);
            assert_eq!(limit, 256, "limit names the widest band");
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    let stats = sharded.shutdown().stats;
    assert_eq!(stats.unroutable, 1);
    assert_eq!(stats.bulk_submitted, 0);
}

/// Partial-failure semantics: when one partition cannot be admitted the
/// parent fails with a structured `BulkFailure` naming the shard and the
/// shed reason, no partition is left behind on any queue, and the
/// service keeps serving.
#[test]
fn a_refused_partition_fails_the_parent_with_shard_and_reason() {
    let mut cfg = bulk_bands();
    for c in &mut cfg.classes {
        // Smaller than any partition chunk the 700-key request scatters,
        // so admission must refuse the first partition it checks.
        c.pool.max_queue_keys = 16;
    }
    let sharded = ShardedService::start(cfg);
    let ticket = sharded
        .submit(SortRequest::new(vec![5; 700], Direction::Ascending))
        .expect("bulk submit returns a ticket; the failure arrives on it");
    match ticket.wait() {
        Err(SortError::Bulk(failure)) => {
            assert!(failure.shard < 2, "failure names a real shard");
            assert!(
                matches!(failure.reason, BulkReason::Shed(_)),
                "reason is the admission shed, got {:?}",
                failure.reason
            );
            let text = failure.to_string();
            assert!(text.contains("shed"), "display names the reason: {text}");
        }
        other => panic!("expected a structured bulk failure, got {other:?}"),
    }
    // Surviving partitions were discarded, not leaked: the service still
    // answers in-band requests and counts exactly one failed bulk sort.
    let reply = sharded
        .submit(SortRequest::new(vec![9, 1, 5], Direction::Ascending))
        .expect("in-band submit")
        .wait()
        .expect("in-band request completes");
    assert_eq!(reply, vec![1, 5, 9]);
    let stats = sharded.shutdown().stats;
    assert_eq!(stats.bulk_submitted, 1);
    assert_eq!(stats.bulk_failed, 1);
    assert_eq!(stats.bulk_completed, 0);
    assert_eq!(stats.expired(), 0, "no orphan partition expired later");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's correctness core on random input: any over-band
    /// request — random, duplicate-heavy, or tiny-spread — answers
    /// byte-identically to a single pool and the oracle through the
    /// split path, in both directions.
    #[test]
    fn bulk_replies_match_oracle_and_single_pool(
        n in 257usize..1500,
        seed in any::<u64>(),
        dup in any::<bool>(),
        desc in any::<bool>(),
    ) {
        let mut keys = uniform_keys(n, seed);
        if dup {
            for k in &mut keys {
                *k %= 16;
            }
        }
        let dir = if desc {
            Direction::Descending
        } else {
            Direction::Ascending
        };
        let sharded = ShardedService::start(bulk_bands());
        let single = wide_single_pool();
        assert_equivalent("random", &sharded, &single, &keys, dir);
        let stats = sharded.shutdown().stats;
        prop_assert_eq!(stats.bulk_submitted, 1);
        prop_assert_eq!(stats.bulk_completed, 1);
        let _ = single.shutdown();
    }

    /// The balance leg on random input: the sampled splitters keep every
    /// partition within the configured skew bound of its shard's
    /// capacity-fair share, at the real banded topology's shape.
    #[test]
    fn partition_skew_respects_the_bound_on_random_input(
        seed in any::<u64>(),
        mult in 2usize..6,
    ) {
        let cfg = ShardedConfig::banded_bulk(4, 2);
        let bands: Vec<usize> = cfg
            .classes
            .iter()
            .map(|c| c.pool.max_request_keys)
            .collect();
        let widest = *bands.last().unwrap();
        let keys = uniform_keys(widest * mult + 17, seed);
        let plan = split::plan(&keys, &bands, &cfg.bulk);
        prop_assert!(
            plan.max_skew() <= cfg.bulk.skew_bound,
            "max skew {} exceeds the bound {}",
            plan.max_skew(),
            cfg.bulk.skew_bound
        );
        // And the plan is a pure function of its inputs.
        prop_assert_eq!(plan, split::plan(&keys, &bands, &cfg.bulk));
    }

    /// The determinism leg: two engine twins fed the same submissions at
    /// the same virtual times produce bit-for-bit identical event logs —
    /// scatter, per-shard batches, and merge included — and identical
    /// oracle-correct replies.
    #[test]
    fn engine_twins_replay_scatter_and_merge_bit_for_bit(
        loads in proptest::collection::vec(
            (proptest::collection::vec(any::<u32>(), 1..700), any::<bool>()),
            1..6,
        ),
    ) {
        let cfg = bulk_bands();
        let run = || {
            let mut engine = ShardEngine::new(&cfg);
            let mut ids = Vec::new();
            for (keys, desc) in &loads {
                let dir = if *desc {
                    Direction::Descending
                } else {
                    Direction::Ascending
                };
                let id = engine
                    .submit(SortRequest::new(keys.clone(), dir))
                    .expect("engine admits the whole mix");
                ids.push(id);
                engine.advance(Duration::from_millis(1));
                engine.run_until_idle();
            }
            let replies: Vec<_> = ids
                .iter()
                .map(|id| engine.reply(*id).cloned().expect("every request answered"))
                .collect();
            (engine.events().to_vec(), replies)
        };
        let (events_a, replies_a) = run();
        let (events_b, replies_b) = run();
        prop_assert_eq!(&events_a, &events_b, "event logs diverged");
        prop_assert_eq!(&replies_a, &replies_b, "replies diverged");
        let split_requests = loads.iter().filter(|(k, _)| k.len() > 256).count();
        let merges = events_a
            .iter()
            .filter(|e| matches!(e, EngineEvent::Merged { .. }))
            .count();
        prop_assert_eq!(merges, split_requests, "one merge per over-band request");
        for ((keys, desc), reply) in loads.iter().zip(&replies_a) {
            let dir = if *desc {
                Direction::Descending
            } else {
                Direction::Ascending
            };
            let out = reply.as_ref().expect("request completed");
            prop_assert_eq!(out, &sorted_independently(keys, dir));
        }
    }
}
