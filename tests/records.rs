//! Record-sorting conformance suite: wide keys + payload carriage.
//!
//! Every test here holds the service to one contract: a record sort is
//! exactly a *stable* `sort_by_key` over `(key, submission index)` —
//! keys come back in the requested direction, payload rows ride their
//! keys byte-for-byte, and equal keys keep submission order in both
//! directions. The oracle is
//! [`bitonic_core::tagged::records_sorted_independently`], shared with
//! the wire benchmark.
//!
//! Layers, bottom-up:
//!
//! 1. property tests over the shared [`proptest::record`] strategies —
//!    all three key widths (4, 8, 16 bytes), both directions, empty
//!    payloads, and a duplicate-heavy corpus where ties are the common
//!    case, against a live [`SortService`];
//! 2. edge shapes — n < P, n = 0, and stride 0 — through the record
//!    path explicitly;
//! 3. a mixed batch: records at every width, both directions, and plain
//!    u32 sorts submitted together so the dispatcher's same-width-only
//!    coalescing lanes are exercised concurrently;
//! 4. bulk records — an over-band record request split across shards by
//!    sampled splitters and merged stably, payload rows intact, via
//!    [`ShardedService`];
//! 5. determinism — the [`ShardEngine`] twin replays a mixed record
//!    script bit-for-bit: identical decision logs and identical record
//!    replies, with fewer flushes than requests (coalescing is real).

use bitonic_core::tagged::records_sorted_independently;
use bitonic_network::Direction;
use obs::TraceConfig;
use proptest::prelude::*;
use proptest::record::{dup_heavy_record_cases, record_cases, RecordCase};
use sort_service::{
    BulkConfig, ClassConfig, EngineEvent, RecordKeys, RecordReply, RecordRequest, ServiceConfig,
    ShardEngine, ShardedConfig, ShardedService, SortService,
};
use std::time::Duration;

fn dir_of(case: &RecordCase) -> Direction {
    if case.descending {
        Direction::Descending
    } else {
        Direction::Ascending
    }
}

fn keys_of(width: u8, keys: &[u128]) -> RecordKeys {
    match width {
        4 => RecordKeys::U32(keys.iter().map(|&k| k as u32).collect()),
        8 => RecordKeys::U64(keys.iter().map(|&k| k as u64).collect()),
        _ => RecordKeys::U128(keys.to_vec()),
    }
}

fn request_of(case: &RecordCase) -> RecordRequest {
    RecordRequest::new(
        keys_of(case.width, &case.keys),
        case.payload.clone(),
        case.stride,
        dir_of(case),
    )
}

fn widen(keys: &RecordKeys) -> Vec<u128> {
    match keys {
        RecordKeys::U32(v) => v.iter().map(|&k| u128::from(k)).collect(),
        RecordKeys::U64(v) => v.iter().map(|&k| u128::from(k)).collect(),
        RecordKeys::U128(v) => v.clone(),
    }
}

/// The stable oracle: sorted keys plus the payload bytes a correct
/// record sort must return for `(keys, payload, stride, dir)`.
fn oracle(keys: &[u128], payload: &[u8], stride: usize, dir: Direction) -> (Vec<u128>, Vec<u8>) {
    let seg = records_sorted_independently(keys, dir);
    let bytes = seg
        .perm
        .iter()
        .flat_map(|&i| payload[i as usize * stride..(i as usize + 1) * stride].to_vec())
        .collect();
    (seg.keys, bytes)
}

fn assert_matches_oracle(case: &RecordCase, reply: &RecordReply) {
    let (want_keys, want_payload) = oracle(&case.keys, &case.payload, case.stride, dir_of(case));
    assert_eq!(widen(&reply.keys), want_keys, "keys diverged from oracle");
    assert_eq!(reply.keys.width(), case.width, "reply width changed");
    assert_eq!(reply.payload, want_payload, "payload rows left their keys");
    assert_eq!(reply.stride, case.stride, "stride changed in flight");
}

// ---------------------------------------------------------------------
// 1. Property tests against a live service.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every width, both directions, strides 0..=8: the record reply is
    /// exactly the stable oracle's keys and payload bytes.
    #[test]
    fn record_sorts_match_the_stable_oracle(case in record_cases(48, 8)) {
        let service = SortService::start(ServiceConfig::new(2));
        let reply = service
            .submit_record(request_of(&case))
            .expect("admitted")
            .wait()
            .expect("sorted");
        assert_matches_oracle(&case, &reply);
        let report = service.shutdown();
        prop_assert_eq!(report.stats.completed, 1);
        prop_assert_eq!(report.stats.shed + report.stats.expired + report.stats.failed, 0);
    }

    /// Duplicate-heavy corpus: keys drawn from a pool of at most four
    /// distinct values, so nearly every request has ties — a sort that
    /// is unstable on payload order cannot pass byte-identity.
    #[test]
    fn duplicate_heavy_payloads_keep_submission_order(
        case in dup_heavy_record_cases(64, 8),
    ) {
        let service = SortService::start(ServiceConfig::new(2));
        let reply = service
            .submit_record(request_of(&case))
            .expect("admitted")
            .wait()
            .expect("sorted");
        assert_matches_oracle(&case, &reply);
        let _ = service.shutdown();
    }
}

// ---------------------------------------------------------------------
// 2. Edge shapes through the record path.
// ---------------------------------------------------------------------

/// n < P, n = 0, and stride 0 all cross the record path and come back
/// oracle-identical — the padded batch machinery must not invent or
/// drop rows.
#[test]
fn small_empty_and_payload_free_records_sort() {
    let service = SortService::start(ServiceConfig::new(4));
    let cases = [
        // n < P with ties and payload.
        RecordCase {
            width: 8,
            keys: vec![7, 7, 3],
            stride: 4,
            payload: vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3],
            descending: false,
        },
        // n = 1 descending at full width.
        RecordCase {
            width: 16,
            keys: vec![u128::MAX],
            stride: 2,
            payload: vec![0xAA, 0xBB],
            descending: true,
        },
        // n = 0: nothing in, nothing out.
        RecordCase {
            width: 4,
            keys: vec![],
            stride: 8,
            payload: vec![],
            descending: false,
        },
        // stride 0: keys-only records (empty payload, non-empty keys).
        RecordCase {
            width: 8,
            keys: vec![5, 1, 5, 0, u64::MAX as u128],
            stride: 0,
            payload: vec![],
            descending: true,
        },
    ];
    for case in &cases {
        let reply = service
            .submit_record(request_of(case))
            .expect("admitted")
            .wait()
            .expect("sorted");
        assert_matches_oracle(case, &reply);
    }
    let report = service.shutdown();
    assert_eq!(report.stats.completed, cases.len() as u64);
}

// ---------------------------------------------------------------------
// 3. Mixed widths and directions submitted together.
// ---------------------------------------------------------------------

/// Records at every width, both directions, plus plain u32 sorts, all
/// in flight at once: the dispatcher's width lanes must keep each
/// request's keys, payload, and direction straight while coalescing.
#[test]
fn mixed_widths_and_directions_sort_concurrently() {
    let mut cfg = ServiceConfig::new(2);
    // A generous coalescing window so concurrent submissions share
    // batches instead of trickling through one by one.
    cfg.max_wait = Duration::from_millis(20);
    cfg.validate();
    let service = SortService::start(cfg);

    let mut cases = Vec::new();
    for round in 0u32..4 {
        for &width in &[4u8, 8, 16] {
            let max = if width == 16 {
                u128::MAX
            } else {
                (1u128 << (8 * u32::from(width))) - 1
            };
            let stride = usize::from(width) % 3 + 1;
            let n = 6;
            let keys: Vec<u128> = (0..n as u32)
                .map(|i| [0, max, max / 3][(i.wrapping_add(round)) as usize % 3])
                .collect();
            let payload: Vec<u8> = (0..n * stride).map(|b| (b as u8) ^ (round as u8)).collect();
            cases.push(RecordCase {
                width,
                keys,
                stride,
                payload,
                descending: (round + u32::from(width)) % 2 == 0,
            });
        }
    }

    // Submit everything before waiting on anything, with plain sorts
    // interleaved so the plain lane is live too.
    let mut plain_tickets = Vec::new();
    let record_tickets: Vec<_> = cases
        .iter()
        .enumerate()
        .map(|(i, case)| {
            if i % 3 == 0 {
                let keys = vec![9u32, 1, 9, 4];
                plain_tickets.push((
                    keys.clone(),
                    service
                        .submit(sort_service::SortRequest::ascending(keys))
                        .expect("plain admitted"),
                ));
            }
            service.submit_record(request_of(case)).expect("admitted")
        })
        .collect();

    for (case, ticket) in cases.iter().zip(record_tickets) {
        let reply = ticket.wait().expect("sorted");
        assert_matches_oracle(case, &reply);
    }
    for (keys, ticket) in plain_tickets {
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(ticket.wait().expect("sorted"), want);
    }

    let report = service.shutdown();
    assert_eq!(report.stats.completed, 16);
    assert_eq!(
        report.stats.shed + report.stats.expired + report.stats.failed,
        0
    );
}

// ---------------------------------------------------------------------
// 4. Bulk records: over-band requests split, sorted, and merged.
// ---------------------------------------------------------------------

/// Two-band bulk-enabled topology (64 / 256 keys); anything larger
/// takes the split path.
fn bulk_config() -> ShardedConfig {
    let base = ServiceConfig::new(2);
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, base),
            ClassConfig::new("large", 256, base),
        ],
        steal_after: None,
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::on(),
    };
    cfg.validate();
    cfg
}

/// An over-band record request is split by sampled splitters, each
/// partition sorts with its payload rows, and the k-way merge brings
/// everything back in key order with ties still in submission order.
#[test]
fn bulk_record_requests_merge_payload_in_key_order() {
    let sharded = ShardedService::start(bulk_config());
    for (descending, width) in [(false, 8u8), (true, 16u8), (false, 4u8)] {
        let n = 700usize;
        let stride = 4usize;
        let max = if width == 16 {
            u128::MAX
        } else {
            (1u128 << (8 * u32::from(width))) - 1
        };
        // Duplicate-heavy: 16 distinct values over 700 keys, so ties
        // span partition boundaries and the merge must stay stable.
        let keys: Vec<u128> = (0..n as u64)
            .map(|i| {
                let v = i.wrapping_mul(2_654_435_761).rotate_left(9) % 16;
                (u128::from(v) * (max / 15)).min(max)
            })
            .collect();
        let payload: Vec<u8> = (0..n * stride).map(|b| (b % 251) as u8).collect();
        let case = RecordCase {
            width,
            keys,
            stride,
            payload,
            descending,
        };
        let reply = sharded
            .submit_record(request_of(&case))
            .expect("bulk admitted")
            .wait()
            .expect("merged");
        assert_matches_oracle(&case, &reply);
    }
    let report = sharded.shutdown();
    assert_eq!(report.stats.bulk_submitted, 3);
    assert_eq!(report.stats.bulk_completed, 3);
    assert_eq!(report.stats.bulk_failed, 0);
}

// ---------------------------------------------------------------------
// 5. Determinism: the engine twin replays records bit-for-bit.
// ---------------------------------------------------------------------

fn twin_config() -> ShardedConfig {
    let base = ServiceConfig::new(2);
    ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, base),
            ClassConfig::new("bulk", 16_384, base),
        ],
        steal_after: None,
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::default(),
    }
}

/// A fixed mixed-width record script against the virtual-time engine.
fn record_script(engine: &mut ShardEngine) -> Vec<(RecordCase, u64)> {
    let mut out = Vec::new();
    // Lane-contiguous submission order: the coalescer batches runs of
    // same-width neighbors at the queue head, so adjacent pairs share a
    // batch while the width boundaries force a flush.
    for (i, &width) in [4u8, 4, 8, 8, 16, 16].iter().enumerate() {
        let max = if width == 16 {
            u128::MAX
        } else {
            (1u128 << (8 * u32::from(width))) - 1
        };
        let stride = i % 3;
        let n = 8 + i;
        let keys: Vec<u128> = (0..n as u64)
            .map(|k| u128::from(k.wrapping_mul(0x9E37_79B9) % 5) * (max / 4))
            .collect();
        let payload: Vec<u8> = (0..n * stride)
            .map(|b| (b as u8).wrapping_mul(31))
            .collect();
        let case = RecordCase {
            width,
            keys,
            stride,
            payload,
            descending: i % 2 == 1,
        };
        let id = engine.submit_record(request_of(&case)).expect("admitted");
        out.push((case, id));
    }
    engine.advance(Duration::from_millis(2));
    engine.tick();
    engine.run_until_idle();
    out
}

/// Same script, fresh engine → identical decision log and identical
/// record replies; and the log shows real coalescing (fewer flushes
/// than requests) while every reply still matches the stable oracle.
#[test]
fn the_engine_twin_replays_record_batches_bit_for_bit() {
    let cfg = twin_config();
    let mut engine = ShardEngine::new(&cfg);
    let script = record_script(&mut engine);

    for (case, id) in &script {
        let reply = engine
            .record_reply(*id)
            .expect("batch ran")
            .as_ref()
            .expect("sorted");
        assert_matches_oracle(case, reply);
    }
    let flushes = engine
        .events()
        .iter()
        .filter(|e| matches!(e, EngineEvent::Flushed { .. }))
        .count();
    assert!(
        flushes < script.len(),
        "six same-shard requests across three width lanes must coalesce \
         into fewer than six batches, got {flushes}"
    );

    let mut replay = ShardEngine::new(&cfg);
    let replayed = record_script(&mut replay);
    assert_eq!(
        engine.events(),
        replay.events(),
        "the decision log must replay exactly"
    );
    for (case_id, replay_id) in script.iter().zip(&replayed) {
        assert_eq!(
            engine.record_reply(case_id.1),
            replay.record_reply(replay_id.1),
            "record replies must replay bit-for-bit"
        );
    }
}
