//! Wire-protocol conformance suite for the TCP frontend.
//!
//! Four layers, bottom-up:
//!
//! 1. the `SORT_1` frame codec — property-tested round-trips over every
//!    supported key width, direction, deadline, and length (including
//!    the empty sort and n < P), plus a fuzz corpus of truncated,
//!    oversized, bad-magic, and otherwise malformed frames — payload
//!    sections included — that must yield structured [`FrameError`]s,
//!    never panics, and narrow widths (1 and 2) that decode but are
//!    refused as record requests before admission;
//! 2. structured replies — every [`Rejection`] variant survives a real
//!    socket with its numeric fields and `label()` intact, and live
//!    rejections reconcile counter-for-counter with the service's
//!    shed-reason metrics;
//! 3. deadline propagation — a deadline set on a frame reaches the
//!    admission gate and the queue on the far side of the socket;
//! 4. connection faults — half-open peers, slow-loris writers, mid-frame
//!    disconnects, and malformed-frame floods each close with the
//!    expected structured [`Disconnect`] reason while the pool keeps
//!    serving healthy connections, and a seeded fault plan replays to
//!    identical per-reason disconnect tallies on a fresh server.

use bitonic_network::Direction;
use obs::TraceConfig;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use sort_service::net::chaos::{self, ConnFault};
use sort_service::net::{
    parse_text_request, FrameError, ReplyFrame, RequestFrame, WireClient, WireConfig, WireServer,
    DISCONNECT_LABELS, LEN_PREFIX, REJECTION_LABELS, REQUEST_HEADER, SUPPORTED_WIDTHS, VERSION,
};
use sort_service::{BulkConfig, ClassConfig, RecordKeys, Rejection, ServiceConfig, ShardedConfig};
use std::io::Write;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// The service behind every live-socket test: two ranks, one warm
/// machine, metrics on (the default) so registry reconciliation is
/// exercised everywhere.
fn service_config() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(2);
    cfg.batch_watchdog = Some(Duration::from_millis(500));
    cfg.validate();
    cfg
}

fn server(wire: WireConfig) -> WireServer {
    WireServer::start(service_config(), wire, "127.0.0.1:0").expect("bind loopback")
}

/// A two-band bulk-enabled sharded topology for wire tests: requests up
/// to 64 keys are "small", up to 256 keys are "large", one 2-rank
/// machine each; anything above 256 keys takes the split path.
fn bulk_sharded_config() -> ShardedConfig {
    let base = ServiceConfig::new(2);
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, base),
            ClassConfig::new("large", 256, base),
        ],
        steal_after: None,
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::on(),
    };
    cfg.validate();
    cfg
}

/// Poll `done` until it holds or `patience` runs out; returns whether it
/// held. Used to wait for the server side to finish accounting a close.
fn wait_until(patience: Duration, mut done: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < patience {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    done()
}

fn sorted(keys: &[u32], dir: Direction) -> Vec<u32> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    if dir == Direction::Descending {
        out.reverse();
    }
    out
}

// ---------------------------------------------------------------------
// 1. Frame codec: property round-trips and the malformed-frame corpus.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Request frames round-trip over every supported width: the raw
    /// key bytes, width, direction, and deadline all survive
    /// encode→decode bit-for-bit.
    #[test]
    fn request_frames_round_trip_every_width(
        wi in 0usize..SUPPORTED_WIDTHS.len(),
        desc: bool,
        deadline_us: u64,
        bytes in pvec(any::<u8>(), 0..256),
    ) {
        let width = SUPPORTED_WIDTHS[wi];
        let w = usize::from(width);
        let mut key_bytes = bytes;
        key_bytes.truncate(key_bytes.len() / w * w);
        let frame = RequestFrame {
            dir: if desc { Direction::Descending } else { Direction::Ascending },
            width,
            deadline_us,
            key_bytes,
            payload_stride: 0,
            payload: Vec::new(),
        };
        let encoded = frame.encode();
        prop_assert_eq!(encoded.len(), LEN_PREFIX + REQUEST_HEADER + frame.key_bytes.len());
        let back = RequestFrame::decode(&encoded[LEN_PREFIX..]).expect("round trip");
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(back.count(), frame.key_bytes.len() / w);
    }

    /// The width-4 path the server actually sorts: keys, direction, and
    /// deadline survive the codec and convert losslessly into the
    /// service's `SortRequest` — including n = 0 and n < P.
    #[test]
    fn width4_frames_reach_the_service_intact(
        keys in pvec(any::<u32>(), 0..130),
        desc: bool,
        deadline_us in 0u64..10_000_000,
    ) {
        let dir = if desc { Direction::Descending } else { Direction::Ascending };
        let deadline = (deadline_us > 0).then(|| Duration::from_micros(deadline_us));
        let frame = RequestFrame::from_u32_keys(&keys, dir, deadline);
        let back = RequestFrame::decode(&frame.encode()[LEN_PREFIX..]).expect("round trip");
        prop_assert_eq!(back.keys_u32().expect("width 4"), keys.clone());
        prop_assert_eq!(back.deadline(), deadline);
        let req = back.into_request().expect("width 4 converts");
        prop_assert_eq!(req.keys, keys);
        prop_assert_eq!(req.dir, dir);
        prop_assert_eq!(req.deadline, deadline);
    }

    /// Sorted replies round-trip with every key intact.
    #[test]
    fn sorted_replies_round_trip(keys in pvec(any::<u32>(), 0..200)) {
        let reply = ReplyFrame::Sorted(keys);
        let back = ReplyFrame::decode(&reply.encode()[LEN_PREFIX..]).expect("round trip");
        prop_assert_eq!(back, reply);
    }

    /// Decoding arbitrary bytes — request or reply — returns a
    /// structured error or a frame; it must never panic, and every
    /// error's code↔label mapping is self-consistent.
    #[test]
    fn decoding_fuzz_never_panics(payload in pvec(any::<u8>(), 0..200)) {
        if let Err(e) = RequestFrame::decode(&payload) {
            prop_assert_eq!(FrameError::label_of_code(e.code()), e.label());
        }
        if let Err(e) = ReplyFrame::decode(&payload) {
            prop_assert_eq!(FrameError::label_of_code(e.code()), e.label());
        }
    }
}

/// Hand-built malformed frames classify as the *specific* structured
/// error a conforming peer can act on.
#[test]
fn malformed_frame_corpus_yields_structured_errors() {
    let valid = RequestFrame::from_u32_keys(&[3, 1, 2], Direction::Ascending, None).encode();
    let payload = &valid[LEN_PREFIX..];

    assert!(matches!(
        RequestFrame::decode(&[]),
        Err(FrameError::Truncated { have: 0, .. })
    ));
    assert!(matches!(
        RequestFrame::decode(&payload[..REQUEST_HEADER - 1]),
        Err(FrameError::Truncated { .. })
    ));

    let mut bad_magic = payload.to_vec();
    bad_magic[0] = b'X';
    assert!(matches!(
        RequestFrame::decode(&bad_magic),
        Err(FrameError::BadMagic(_))
    ));

    let mut bad_version = payload.to_vec();
    bad_version[4] = VERSION + 9;
    assert_eq!(
        RequestFrame::decode(&bad_version),
        Err(FrameError::BadVersion(VERSION + 9))
    );

    let mut bad_flags = payload.to_vec();
    bad_flags[5] = 0xF0;
    assert_eq!(
        RequestFrame::decode(&bad_flags),
        Err(FrameError::BadFlags(0xF0))
    );

    let mut bad_width = payload.to_vec();
    bad_width[6] = 3;
    assert_eq!(
        RequestFrame::decode(&bad_width),
        Err(FrameError::BadWidth(3))
    );

    // Declared count disagrees with the body length in both directions.
    let mut short_body = payload.to_vec();
    short_body.truncate(payload.len() - 4);
    assert!(matches!(
        RequestFrame::decode(&short_body),
        Err(FrameError::CountMismatch { declared: 3, .. })
    ));
    let mut long_body = payload.to_vec();
    long_body.extend_from_slice(&[0; 4]);
    assert!(matches!(
        RequestFrame::decode(&long_body),
        Err(FrameError::CountMismatch { declared: 3, .. })
    ));

    let mut bad_status = ReplyFrame::ServiceClosed.encode()[LEN_PREFIX..].to_vec();
    bad_status[5] = 77;
    assert_eq!(
        ReplyFrame::decode(&bad_status),
        Err(FrameError::BadStatus(77))
    );
}

/// The stdin frontend's text format parses into the same frame the wire
/// carries: one validation path for both frontends.
#[test]
fn text_requests_and_wire_frames_share_one_parse() {
    let frame = parse_text_request("desc deadline=2500 5 1 9").expect("parses");
    assert_eq!(frame.dir, Direction::Descending);
    assert_eq!(frame.deadline(), Some(Duration::from_micros(2500)));
    assert_eq!(frame.keys_u32().expect("width 4"), vec![5, 1, 9]);
    let back = RequestFrame::decode(&frame.encode()[LEN_PREFIX..]).expect("round trip");
    let req = back.into_request().expect("width 4");
    assert_eq!(req.deadline, Some(Duration::from_micros(2500)));
    assert_eq!(req.keys, vec![5, 1, 9]);

    assert!(
        parse_text_request("1 asc 2").is_err(),
        "direction must lead"
    );
    assert!(parse_text_request("asc deadline=x 1").is_err());
}

// ---------------------------------------------------------------------
// 2. Structured replies over a real socket.
// ---------------------------------------------------------------------

/// Every reply variant — all five rejections included — survives a real
/// TCP hop with its numeric fields and `label()` intact.
#[test]
fn every_reply_variant_round_trips_over_a_socket() {
    let replies = vec![
        ReplyFrame::Sorted(vec![1, 2, 3, u32::MAX]),
        ReplyFrame::Rejected(Rejection::Closed),
        ReplyFrame::Rejected(Rejection::TooLarge {
            keys: 90_000,
            limit: 16_384,
        }),
        ReplyFrame::Rejected(Rejection::QueueFull {
            queued: 4096,
            limit: 4096,
        }),
        ReplyFrame::Rejected(Rejection::QueueOverflow {
            would_hold: 1 << 21,
            limit: 1 << 20,
        }),
        ReplyFrame::Rejected(Rejection::DeadlineUnmeetable {
            predicted_wait: Duration::from_micros(1234),
            deadline: Duration::from_micros(100),
        }),
        ReplyFrame::Expired {
            waited_us: 777,
            deadline_us: 500,
        },
        ReplyFrame::Failed("rank 1 wedged".into()),
        ReplyFrame::BulkFailed {
            shard: 1,
            reason: "bulk partition on shard 1 was shed: queue full".into(),
        },
        ReplyFrame::ServiceClosed,
        ReplyFrame::BadFrame(FrameError::BadWidth(3).code()),
    ];
    let expected_labels = [
        "ok",
        "closed",
        "too_large",
        "queue_full",
        "queue_overflow",
        "deadline_unmeetable",
        "expired",
        "machine_failed",
        "bulk_failed",
        "service_closed",
        "bad_frame",
    ];

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let to_send = replies.clone();
    let writer = std::thread::spawn(move || {
        let (mut peer, _) = listener.accept().expect("accept");
        use std::io::Write;
        for reply in &to_send {
            peer.write_all(&reply.encode()).expect("write reply");
        }
    });

    let mut client = WireClient::connect(addr).expect("connect");
    for (reply, label) in replies.iter().zip(expected_labels) {
        let got = client.read_reply().expect("read reply");
        assert_eq!(&got, reply);
        assert_eq!(got.label(), label);
    }
    writer.join().expect("writer");
}

/// Live rejections: oversized requests are shed as `too_large` on the
/// wire, the connection stays open, and the per-reason wire counters
/// match the service's shed-reason metrics exactly — for every reason,
/// zeros included.
#[test]
fn live_rejections_reconcile_with_shed_reason_counters() {
    let cfg = service_config();
    let srv = server(WireConfig::default());
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    let huge = vec![7u32; cfg.max_request_keys + 1];
    for _ in 0..3 {
        match client
            .sort(&huge, Direction::Ascending, None)
            .expect("reply")
        {
            ReplyFrame::Rejected(Rejection::TooLarge { keys, limit }) => {
                assert_eq!(keys, huge.len());
                assert_eq!(limit, cfg.max_request_keys);
            }
            other => panic!("expected too_large, got {other:?}"),
        }
    }
    // The connection survived three rejections: a normal sort still works.
    let keys = [9u32, 4, 6, 1, 8];
    match client
        .sort(&keys, Direction::Descending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, sorted(&keys, Direction::Descending)),
        other => panic!("expected sorted keys, got {other:?}"),
    }
    drop(client);
    assert!(wait_until(Duration::from_secs(5), || {
        let w = srv.wire_stats();
        w.connections_closed == w.connections_opened
    }));

    let metrics = srv.metrics().expect("metrics on");
    let snap = metrics.snapshot();
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;

    assert_eq!(wire.rejection("too_large"), 3);
    assert_eq!(wire.rejected_total(), 3);
    assert_eq!(stats.shed, 3);
    assert_eq!(wire.frames_read, stats.submitted);
    assert_eq!(wire.replies_ok, stats.completed);
    for reason in REJECTION_LABELS {
        let on_wire = snap.counter_labeled("bitonic_wire_rejections_total", "reason", reason);
        let shed = snap.counter_labeled("bitonic_requests_shed_total", "reason", reason);
        assert_eq!(on_wire, shed, "reason {reason} diverged");
        assert_eq!(
            on_wire,
            wire.rejection(reason),
            "reason {reason} vs WireStats"
        );
    }
}

/// An over-band request — refused `too_large` at the seed — now
/// round-trips a correct fully-merged bulk reply over a real socket,
/// and the same connection keeps serving in-band sorts.
#[test]
fn over_band_requests_round_trip_a_bulk_reply() {
    let srv =
        WireServer::start_sharded(bulk_sharded_config(), WireConfig::default(), "127.0.0.1:0")
            .expect("bind loopback");
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    // Larger than the widest (256-key) band: only the split path answers.
    let keys: Vec<u32> = (0..700u32)
        .rev()
        .map(|k| k.wrapping_mul(2_654_435_761))
        .collect();
    match client
        .sort(&keys, Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, sorted(&keys, Direction::Ascending)),
        other => panic!("expected a merged bulk reply, got {other:?}"),
    }
    match client
        .sort(&keys, Direction::Descending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, sorted(&keys, Direction::Descending)),
        other => panic!("expected a merged bulk reply, got {other:?}"),
    }
    // The same connection still serves in-band requests.
    let small = [9u32, 4, 6];
    match client
        .sort(&small, Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, vec![4, 6, 9]),
        other => panic!("expected sorted keys, got {other:?}"),
    }

    drop(client);
    let report = srv.shutdown();
    assert_eq!(report.wire.replies_ok, 3);
    assert_eq!(report.wire.bulk_failed, 0);
    let sharded = report.sharded.expect("sharded backend reports its stats");
    assert_eq!(sharded.stats.bulk_submitted, 2);
    assert_eq!(sharded.stats.bulk_completed, 2);
    assert_eq!(sharded.stats.bulk_failed, 0);
    assert_eq!(sharded.stats.unroutable, 0);
}

/// A bulk sub-request failure surfaces as a structured `bulk_failed`
/// reply naming the shard and reason — not a disconnect — and the
/// connection keeps serving.
#[test]
fn a_failed_partition_surfaces_as_a_structured_bulk_reply() {
    let mut cfg = bulk_sharded_config();
    for c in &mut cfg.classes {
        // Smaller than any partition chunk, so admission must refuse one.
        c.pool.max_queue_keys = 16;
    }
    let srv = WireServer::start_sharded(cfg, WireConfig::default(), "127.0.0.1:0")
        .expect("bind loopback");
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    match client
        .sort(&vec![5u32; 700], Direction::Ascending, None)
        .expect("a structured reply, not a disconnect")
    {
        ReplyFrame::BulkFailed { shard, reason } => {
            assert!(shard < 2, "failure names a real shard, got {shard}");
            assert!(reason.contains("shed"), "reason names the cause: {reason}");
        }
        other => panic!("expected bulk_failed, got {other:?}"),
    }
    // The connection survived the failure: a small sort still works.
    match client
        .sort(&[3u32, 1, 2], Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, vec![1, 2, 3]),
        other => panic!("expected sorted keys, got {other:?}"),
    }

    drop(client);
    let report = srv.shutdown();
    assert_eq!(report.wire.bulk_failed, 1);
    assert_eq!(report.wire.replies_ok, 1);
    let sharded = report.sharded.expect("sharded backend reports its stats");
    assert_eq!(sharded.stats.bulk_submitted, 1);
    assert_eq!(sharded.stats.bulk_failed, 1);
    assert_eq!(sharded.stats.bulk_completed, 0);
}

/// Satellite regression: with the split path disabled, an over-band
/// request is refused `too_large` whose numeric detail names the
/// *widest* band's limit — the real admission ceiling — in both the
/// frame fields and the rendered detail words.
#[test]
fn sharded_too_large_reports_the_widest_band_limit_on_the_wire() {
    let mut cfg = bulk_sharded_config();
    cfg.bulk = BulkConfig::default();
    let srv = WireServer::start_sharded(cfg, WireConfig::default(), "127.0.0.1:0")
        .expect("bind loopback");
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    match client
        .sort(&vec![1u32; 300], Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Rejected(r @ Rejection::TooLarge { keys, limit }) => {
            assert_eq!(keys, 300);
            assert_eq!(limit, 256, "limit names the widest band, not the first");
            let detail = r.to_string();
            assert!(
                detail.contains("300 keys") && detail.contains("256-key limit"),
                "detail words diverged: {detail}"
            );
        }
        other => panic!("expected too_large, got {other:?}"),
    }
    drop(client);
    let report = srv.shutdown();
    assert_eq!(report.wire.rejection("too_large"), 1);
    let sharded = report.sharded.expect("sharded backend reports its stats");
    assert_eq!(sharded.stats.unroutable, 1);
}

// ---------------------------------------------------------------------
// 3. Deadline propagation through the socket.
// ---------------------------------------------------------------------

/// A deadline set on the frame acts on the far side of the socket: a
/// generous one sorts, a 1 µs one is refused at admission or expires in
/// the queue — and either outcome is a structured reply that reconciles.
#[test]
fn deadlines_propagate_through_the_wire() {
    let srv = server(WireConfig::default());
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    let keys = [5u32, 3, 8, 1];
    match client
        .sort(&keys, Direction::Ascending, Some(Duration::from_secs(5)))
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, sorted(&keys, Direction::Ascending)),
        other => panic!("generous deadline should sort, got {other:?}"),
    }

    let reply = client
        .sort(&keys, Direction::Ascending, Some(Duration::from_micros(1)))
        .expect("reply");
    assert!(
        matches!(reply.label(), "expired" | "deadline_unmeetable"),
        "a 1 µs deadline cannot be met, got {reply:?}"
    );

    drop(client);
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;
    assert_eq!(wire.replies_ok, 1);
    assert_eq!(wire.expired + wire.rejected_total(), 1);
    assert_eq!(wire.expired, stats.expired);
    assert_eq!(wire.rejected_total(), stats.shed);
}

// ---------------------------------------------------------------------
// 4. Connection faults: structured disconnects, isolation, and replay.
// ---------------------------------------------------------------------

const INJECT_PATIENCE: Duration = Duration::from_secs(3);

/// Each connection fault closes with its expected structured reason,
/// and after every fault the pool still serves a fresh connection —
/// isolation asserted through `ServiceStats` (no fault ever reaches
/// `submit`, nothing fails, every healthy sort completes).
#[test]
fn connection_faults_classify_and_leave_the_pool_serving() {
    let faults = [
        ConnFault::HalfOpen,
        ConnFault::SlowLoris {
            byte_gap: Duration::from_millis(10),
        },
        ConnFault::MidFrameCut { keep_bytes: 11 },
        ConnFault::Garbage { len: 32 },
        ConnFault::BadVersion,
        ConnFault::Oversized { declared: u32::MAX },
        ConnFault::TruncatedHeader,
    ];
    let srv = server(WireConfig::fast_faults());
    let addr = srv.local_addr();

    let mut healthy_sorts = 0u64;
    let mut expected: Vec<(&str, u64)> = Vec::new();
    for (round, fault) in faults.iter().enumerate() {
        chaos::inject(addr, fault, INJECT_PATIENCE).expect("inject");
        let label = fault.expected_disconnect();
        let want = 1 + expected
            .iter()
            .filter(|(l, _)| *l == label)
            .map(|(_, n)| *n)
            .sum::<u64>();
        expected.push((label, 1));
        assert!(
            wait_until(INJECT_PATIENCE, || srv.wire_stats().disconnect(label)
                >= want),
            "round {round}: {} never tallied {label} (stats {:?})",
            fault.label(),
            srv.wire_stats()
        );

        // Isolation: a brand-new connection sorts immediately after the
        // fault (fast_faults idle timeouts are too tight to keep one
        // connection parked across rounds).
        let keys: Vec<u32> = (0..16u32).rev().map(|k| k * (round as u32 + 1)).collect();
        let mut client = WireClient::connect(addr).expect("healthy connect");
        match client
            .sort(&keys, Direction::Ascending, None)
            .expect("reply")
        {
            ReplyFrame::Sorted(out) => assert_eq!(out, sorted(&keys, Direction::Ascending)),
            other => panic!("round {round}: healthy sort got {other:?}"),
        }
        healthy_sorts += 1;
        drop(client);
    }

    assert!(wait_until(Duration::from_secs(5), || {
        let w = srv.wire_stats();
        w.connections_closed == w.connections_opened
    }));
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;

    // Per-reason disconnect tallies: one per fault, plus a clean close
    // per healthy connection.
    assert_eq!(wire.disconnect("idle_timeout"), 1);
    assert_eq!(wire.disconnect("read_stall"), 1);
    assert_eq!(wire.disconnect("mid_frame_eof"), 1);
    assert_eq!(wire.disconnect("bad_frame"), 4);
    assert_eq!(wire.disconnect("clean_eof"), healthy_sorts);
    assert_eq!(wire.frame_errors, 4);
    assert_eq!(wire.connections_opened, faults.len() as u64 + healthy_sorts);

    // Isolation, in the service's own books: only healthy traffic ever
    // reached the admission gate, and all of it completed.
    assert_eq!(stats.submitted, healthy_sorts);
    assert_eq!(stats.completed, healthy_sorts);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(wire.frames_read, stats.submitted);
}

/// A frame the codec accepts but the sorter cannot serve (narrow width
/// 2 — width 8 sorts as a record now) is answered `bad_frame` and never
/// reaches the admission gate.
#[test]
fn unsupported_width_is_refused_before_admission() {
    let srv = server(WireConfig::default());
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");
    let frame = RequestFrame {
        dir: Direction::Ascending,
        width: 2,
        deadline_us: 0,
        key_bytes: vec![0xAB; 16],
        payload_stride: 0,
        payload: Vec::new(),
    };
    client.send(&frame).expect("send");
    match client.read_reply().expect("reply") {
        ReplyFrame::BadFrame(code) => {
            assert_eq!(
                FrameError::label_of_code(code),
                FrameError::BadWidth(2).label()
            );
        }
        other => panic!("expected bad_frame, got {other:?}"),
    }
    let report = srv.shutdown();
    assert_eq!(report.wire.frames_read, 0);
    assert_eq!(report.wire.frame_errors, 1);
    assert_eq!(report.wire.disconnect("bad_frame"), 1);
    assert_eq!(report.service.stats.submitted, 0);
}

/// Send raw bytes as one connection and read the single structured
/// reply the server writes before it disconnects the offender.
fn raw_bad_frame(addr: std::net::SocketAddr, bytes: &[u8]) -> ReplyFrame {
    let mut client = WireClient::connect(addr).expect("connect");
    {
        let mut stream = client.stream();
        stream.write_all(bytes).expect("write raw frame");
        stream.flush().expect("flush");
    }
    match client.read_reply().expect("a structured reply, not a cut") {
        ReplyFrame::BadFrame(code) => ReplyFrame::BadFrame(code),
        other => panic!("expected bad_frame, got {other:?}"),
    }
}

/// Malformed payload sections over a live socket: a truncated payload,
/// a stride that disagrees with the row bytes, and a width-1 record
/// each draw a structured `bad_frame` naming the precise error — the
/// server never panics, and a fresh connection still sorts.
#[test]
fn malformed_payload_frames_draw_structured_bad_frames() {
    let srv = server(WireConfig::default());
    let addr = srv.local_addr();

    let valid = RequestFrame::from_u64_keys(&[5, 1], Direction::Ascending, None)
        .with_payload(4, vec![0xA0, 0xA1, 0xA2, 0xA3, 0xB0, 0xB1, 0xB2, 0xB3])
        .encode();

    // Truncated payload: drop the last three payload bytes and re-state
    // the length prefix so the frame arrives whole but internally short.
    let mut truncated = valid.clone();
    truncated.truncate(valid.len() - 3);
    let body_len = (truncated.len() - LEN_PREFIX) as u32;
    truncated[..LEN_PREFIX].copy_from_slice(&body_len.to_le_bytes());
    let payload_code = FrameError::PayloadMismatch {
        declared: 0,
        body_bytes: 0,
    }
    .code();
    match raw_bad_frame(addr, &truncated) {
        ReplyFrame::BadFrame(code) => assert_eq!(code, payload_code, "truncated payload"),
        other => panic!("{other:?}"),
    }

    // Stride/count mismatch: inflate the stride word so declared rows
    // exceed the bytes on the wire.
    let mut inflated = valid.clone();
    let stride_at = LEN_PREFIX + REQUEST_HEADER + 16;
    inflated[stride_at..stride_at + 4].copy_from_slice(&100u32.to_le_bytes());
    match raw_bad_frame(addr, &inflated) {
        ReplyFrame::BadFrame(code) => assert_eq!(code, payload_code, "inflated stride"),
        other => panic!("{other:?}"),
    }

    // Width 1 decodes (the codec carries it) but no sorter serves it.
    let narrow = RequestFrame {
        dir: Direction::Descending,
        width: 1,
        deadline_us: 0,
        key_bytes: vec![9, 7, 8],
        payload_stride: 0,
        payload: Vec::new(),
    }
    .encode();
    match raw_bad_frame(addr, &narrow) {
        ReplyFrame::BadFrame(code) => {
            assert_eq!(
                FrameError::label_of_code(code),
                FrameError::BadWidth(1).label(),
                "narrow width"
            );
        }
        other => panic!("{other:?}"),
    }

    // The pool outlived all three offenders: a fresh connection sorts.
    let mut client = WireClient::connect(addr).expect("healthy connect");
    match client
        .sort(&[3u32, 1, 2], Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, vec![1, 2, 3]),
        other => panic!("expected sorted keys, got {other:?}"),
    }
    drop(client);

    assert!(wait_until(Duration::from_secs(5), || {
        let w = srv.wire_stats();
        w.connections_closed == w.connections_opened
    }));
    let report = srv.shutdown();
    assert_eq!(report.wire.frame_errors, 3);
    assert_eq!(report.wire.disconnect("bad_frame"), 3);
    assert_eq!(report.wire.frames_read, 1, "only the healthy frame counts");
    assert_eq!(report.service.stats.submitted, 1);
    assert_eq!(report.service.stats.completed, 1);
}

/// Record frames over a live socket: payload rows come back in key
/// order as `ok_record` replies, and the record counters reconcile
/// three ways — WireStats, ServiceStats, and the metrics registry,
/// per-width counters included.
#[test]
fn record_replies_reconcile_ok_record_counters_three_ways() {
    let srv = server(WireConfig::default());
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");

    // u64 keys with a tie: rows must follow their keys stably.
    let frame = RequestFrame::from_u64_keys(&[5, 5, 1], Direction::Ascending, None)
        .with_payload(2, vec![10, 11, 20, 21, 30, 31]);
    match client.exchange(&frame).expect("reply") {
        ReplyFrame::Record {
            keys: RecordKeys::U64(keys),
            payload,
            stride,
        } => {
            assert_eq!(keys, vec![1, 5, 5]);
            assert_eq!(payload, vec![30, 31, 10, 11, 20, 21]);
            assert_eq!(stride, 2);
        }
        other => panic!("expected a u64 record reply, got {other:?}"),
    }

    // u128 keys, no payload: still a record reply (width routes it).
    let frame = RequestFrame::from_u128_keys(&[u128::MAX, 0], Direction::Descending, None);
    match client.exchange(&frame).expect("reply") {
        ReplyFrame::Record {
            keys: RecordKeys::U128(keys),
            payload,
            stride,
        } => {
            assert_eq!(keys, vec![u128::MAX, 0]);
            assert!(payload.is_empty());
            assert_eq!(stride, 0);
        }
        other => panic!("expected a u128 record reply, got {other:?}"),
    }

    // Width-4, payload-free frames still ride the legacy plain path.
    match client
        .sort(&[2u32, 1], Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, vec![1, 2]),
        other => panic!("expected sorted keys, got {other:?}"),
    }

    drop(client);
    assert!(wait_until(Duration::from_secs(5), || {
        let w = srv.wire_stats();
        w.connections_closed == w.connections_opened
    }));
    let metrics = srv.metrics().expect("metrics on");
    let snap = metrics.snapshot();
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;

    assert_eq!(wire.frames_read, 3);
    assert_eq!(wire.replies_record, 2);
    assert_eq!(wire.replies_ok, 1);
    assert_eq!(wire.frames_read, stats.submitted);
    assert_eq!(wire.replies_ok + wire.replies_record, stats.completed);
    assert_eq!(
        snap.counter_labeled("bitonic_wire_replies_total", "status", "ok_record"),
        wire.replies_record
    );
    assert_eq!(
        snap.counter_labeled("bitonic_wire_replies_total", "status", "ok"),
        wire.replies_ok
    );
    assert_eq!(
        snap.counter_labeled("bitonic_record_requests_total", "width", "8"),
        1
    );
    assert_eq!(
        snap.counter_labeled("bitonic_record_requests_total", "width", "16"),
        1
    );
    assert_eq!(snap.histogram_count("bitonic_record_payload_bytes"), 2);
}

/// The `width=` and `payload=` text tokens parse through the same codec
/// the socket uses — one validation path for both frontends.
#[test]
fn text_width_and_payload_tokens_share_the_wire_codec() {
    let frame = parse_text_request("desc width=8 payload=0a0b0c0d 300 7").expect("parses");
    assert_eq!(frame.dir, Direction::Descending);
    assert_eq!(frame.width, 8);
    assert_eq!(frame.payload_stride, 2);
    assert_eq!(frame.payload, vec![0x0A, 0x0B, 0x0C, 0x0D]);
    let back = RequestFrame::decode(&frame.encode()[LEN_PREFIX..]).expect("round trip");
    assert_eq!(back, frame);
    let req = back.into_record_request().expect("record request");
    assert_eq!(req.keys, RecordKeys::U64(vec![300, 7]));
    assert_eq!(req.stride, 2);

    // Width bounds the key range; payload hex and divisibility are
    // validated before any frame exists.
    assert!(parse_text_request("width=1 256").is_err(), "key over range");
    assert!(parse_text_request("width=3 1").is_err(), "width 3 invalid");
    assert!(parse_text_request("payload=abc 1 2").is_err(), "odd hex");
    assert!(
        parse_text_request("payload=aabb 1 2 3").is_err(),
        "4 bytes over 3 keys does not divide"
    );
    assert!(
        parse_text_request("payload=aabb").is_err(),
        "payload with no keys"
    );
}

/// Connections still open at shutdown close as `server_closed`.
#[test]
fn shutdown_closes_live_connections_with_server_closed() {
    let srv = server(WireConfig::default());
    let mut client = WireClient::connect(srv.local_addr()).expect("connect");
    let keys = [2u32, 1];
    match client
        .sort(&keys, Direction::Ascending, None)
        .expect("reply")
    {
        ReplyFrame::Sorted(out) => assert_eq!(out, vec![1, 2]),
        other => panic!("expected sorted keys, got {other:?}"),
    }
    // Leave the connection open: shutdown must reclaim it.
    let report = srv.shutdown();
    assert_eq!(report.wire.disconnect("server_closed"), 1);
    assert_eq!(
        report.wire.connections_closed,
        report.wire.connections_opened
    );
    drop(client);
}

/// Run a fault plan serially against a fresh fast-fault server and
/// return the per-reason disconnect tallies.
fn disconnect_tallies(faults: &[ConnFault]) -> Vec<(&'static str, u64)> {
    let srv = server(WireConfig::fast_faults());
    let addr = srv.local_addr();
    for fault in faults {
        chaos::inject(addr, fault, INJECT_PATIENCE).expect("inject");
    }
    assert!(
        wait_until(Duration::from_secs(10), || {
            let w = srv.wire_stats();
            w.connections_closed == w.connections_opened
                && w.connections_opened == faults.len() as u64
        }),
        "plan never drained: {:?}",
        srv.wire_stats()
    );
    let wire = srv.shutdown().wire;
    DISCONNECT_LABELS
        .iter()
        .map(|l| (*l, wire.disconnect(l)))
        .collect()
}

/// The seeded fault plan is a pure function of `(seed, conns)`, and
/// replaying the same plan against a fresh server produces identical
/// per-reason disconnect tallies — deterministic fault replay end to
/// end.
#[test]
fn seeded_fault_plans_replay_to_identical_tallies() {
    let seed = 0xC0FF_EE00_BEEF;
    let faults = chaos::plan(seed, 6);
    assert_eq!(
        faults,
        chaos::plan(seed, 6),
        "plan must be pure in the seed"
    );
    assert_eq!(faults.len(), 6);

    // What the plan promises, from the fault values alone.
    let mut promised: Vec<(&str, u64)> = DISCONNECT_LABELS.iter().map(|l| (*l, 0)).collect();
    for fault in &faults {
        let label = fault.expected_disconnect();
        let slot = promised
            .iter_mut()
            .find(|(l, _)| *l == label)
            .expect("label");
        slot.1 += 1;
    }

    let first = disconnect_tallies(&faults);
    let second = disconnect_tallies(&faults);
    assert_eq!(first, second, "same plan, different tallies");
    assert_eq!(first, promised, "tallies diverged from the plan's promise");
}
