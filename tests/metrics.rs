//! Metrics-plane guarantees: histogram quantiles stay within one
//! bucket's relative error of the exact sample quantile, merging
//! histograms is exactly observing the concatenated streams, and the
//! live registry reconciles *exactly* with the serving layer's own
//! counters — two independent tallies of the same events.

use bitonic_network::Direction;
use obs::Histogram;
use proptest::prelude::*;
use sort_service::{
    Rejection, ServiceConfig, ShardedConfig, ShardedService, SortRequest, SortService,
};

/// The log-linear bucket layout's sub-bucket resolution: 2^5 buckets per
/// octave, so a bucket's width is at most `value >> 5` (~3.1% relative).
const SUB_BITS: u32 = 5;

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_quantile_bounded(samples: &[u64], q: f64) {
    let h = Histogram::new();
    for &v in samples {
        h.observe(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let exact = exact_quantile(&sorted, q);
    let approx = h.quantile(q);
    assert!(
        approx >= exact,
        "q={q}: bucket upper bound {approx} below exact {exact}"
    );
    assert!(
        approx - exact <= exact >> SUB_BITS,
        "q={q}: {approx} vs exact {exact} exceeds one bucket's width"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Constant stream: every quantile must land in the sample's bucket.
    #[test]
    fn constant_distribution_quantiles_are_bucket_exact(
        value in 1u64..1_000_000_000,
        count in 1usize..200,
        q in 0.01f64..1.0,
    ) {
        assert_quantile_bounded(&vec![value; count], q);
    }

    /// Bimodal stream: the quantile must pick the right mode and stay
    /// within one bucket of it.
    #[test]
    fn bimodal_distribution_quantiles_are_bounded(
        lo in 1u64..1_000,
        hi in 100_000u64..10_000_000,
        n_lo in 1usize..100,
        n_hi in 1usize..100,
        q in 0.01f64..1.0,
    ) {
        let mut samples = vec![lo; n_lo];
        samples.extend(std::iter::repeat_n(hi, n_hi));
        assert_quantile_bounded(&samples, q);
    }

    /// Power-law stream spanning many octaves — the layout the log-linear
    /// buckets exist for.
    #[test]
    fn power_law_distribution_quantiles_are_bounded(
        exponents in proptest::collection::vec(0u32..40, 1..200),
        q in 0.01f64..1.0,
    ) {
        let samples: Vec<u64> = exponents
            .iter()
            .map(|&e| (1u64 << e) | (u64::from(e) * 7 % (1 << e).max(1)))
            .collect();
        assert_quantile_bounded(&samples, q);
    }

    /// Bucket-wise merge is exact: merging two histograms is
    /// indistinguishable from observing the concatenated sample streams.
    #[test]
    fn merge_equals_histogram_of_concatenation(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let ha = Histogram::new();
        for &v in &a {
            ha.observe(v);
        }
        let hb = Histogram::new();
        for &v in &b {
            hb.observe(v);
        }
        ha.merge_from(&hb);

        let concat = Histogram::new();
        for &v in a.iter().chain(&b) {
            concat.observe(v);
        }
        prop_assert_eq!(ha.count(), concat.count());
        prop_assert_eq!(ha.sum(), concat.sum());
        prop_assert_eq!(ha.cumulative_buckets(), concat.cumulative_buckets());
    }
}

/// Registry totals reconcile exactly with the single service's
/// `ServiceStats`: submissions, admissions, sheds (by reason), completed
/// requests, batches, the latency histogram's sample count, and the plan
/// cache's hit/miss counters.
#[test]
fn single_service_registry_reconciles_with_service_stats() {
    let cfg = ServiceConfig::new(4);
    let too_large = cfg.max_request_keys + 1;
    let service = SortService::start(cfg);
    let metrics = service.metrics().expect("metrics are on by default");

    let mut tickets = Vec::new();
    for i in 0..20u32 {
        let keys: Vec<u32> = (0..(8 + i * 3)).map(|k| k * 17 % 97).collect();
        let dir = if i % 2 == 0 {
            Direction::Ascending
        } else {
            Direction::Descending
        };
        tickets.push(
            service
                .submit(SortRequest::new(keys, dir))
                .expect("admitted"),
        );
    }
    // One oversized request, shed at admission with a stable reason label.
    match service.submit(SortRequest::ascending(vec![1; too_large])) {
        Err(Rejection::TooLarge { .. }) => {}
        other => panic!("oversized request should shed as too_large, got {other:?}"),
    }
    for t in tickets {
        t.wait().expect("request sorts");
    }
    let stats = service.shutdown().stats;

    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter_total("bitonic_requests_submitted_total"),
        stats.submitted
    );
    assert_eq!(
        snap.counter_total("bitonic_requests_admitted_total"),
        stats.admitted
    );
    assert_eq!(
        snap.counter_total("bitonic_requests_shed_total"),
        stats.shed
    );
    assert_eq!(
        snap.counter_labeled("bitonic_requests_shed_total", "reason", "too_large"),
        1,
        "the shed carries its Rejection reason as a label"
    );
    assert_eq!(
        snap.counter_total("bitonic_requests_completed_total"),
        stats.completed
    );
    assert_eq!(snap.counter_total("bitonic_batches_total"), stats.batches);
    assert_eq!(
        snap.histogram_count("bitonic_request_latency_us"),
        stats.completed,
        "one latency sample per completed request"
    );
    assert_eq!(
        snap.counter_total("bitonic_plan_cache_hits_total"),
        stats.pool.plan_hits
    );
    assert_eq!(
        snap.counter_total("bitonic_plan_cache_misses_total"),
        stats.pool.plan_misses
    );
}

/// The sharded registry reconciles per class: every shard's counters
/// match its `class`-labelled series, and router drops surface as the
/// unroutable counter.
#[test]
fn sharded_registry_reconciles_per_class() {
    let cfg = ShardedConfig::banded(4, 2);
    let widest = cfg
        .classes
        .last()
        .expect("at least one class")
        .pool
        .max_request_keys;
    let service = ShardedService::start(cfg);
    let metrics = service.metrics().expect("metrics are on by default");

    let mut tickets = Vec::new();
    for i in 0..12u32 {
        // Mostly small requests, every third one bulk-sized.
        let n = if i % 3 == 2 {
            widest - 5
        } else {
            6 + i as usize
        };
        let keys: Vec<u32> = (0..n as u32).map(|k| k.wrapping_mul(31) % 211).collect();
        tickets.push(
            service
                .submit(SortRequest::ascending(keys))
                .expect("admitted"),
        );
    }
    match service.submit(SortRequest::ascending(vec![1; widest + 1])) {
        Err(Rejection::TooLarge { .. }) => {}
        other => panic!("oversized request should be unroutable, got {other:?}"),
    }
    for t in tickets {
        t.wait().expect("request sorts");
    }
    let stats = service.shutdown().stats;

    let snap = metrics.snapshot();
    assert_eq!(
        snap.counter_total("bitonic_requests_unroutable_total"),
        stats.unroutable
    );
    assert_eq!(stats.unroutable, 1);
    for shard in &stats.shards {
        for (name, stat) in [
            ("bitonic_requests_submitted_total", shard.submitted),
            ("bitonic_requests_admitted_total", shard.admitted),
            ("bitonic_requests_shed_total", shard.shed),
            ("bitonic_requests_completed_total", shard.completed),
            ("bitonic_batches_total", shard.batches),
            ("bitonic_steals_total", shard.steals),
            ("bitonic_stolen_requests_total", shard.stolen_requests),
        ] {
            assert_eq!(
                snap.counter_labeled(name, "class", &shard.class),
                stat,
                "{} diverged for class {}",
                name,
                shard.class
            );
        }
        assert!(
            snap.counter_labeled("bitonic_requests_completed_total", "class", &shard.class)
                <= snap.histogram_count("bitonic_request_latency_us"),
            "every completion recorded a latency sample somewhere"
        );
    }
    // Latency samples across all classes equal completions across all
    // classes (steal credit moves both to the thief together).
    assert_eq!(
        snap.histogram_count("bitonic_request_latency_us"),
        stats.shards.iter().map(|s| s.completed).sum::<u64>()
    );
}
