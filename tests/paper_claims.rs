//! The thesis's quantitative claims, as executable assertions.

use bitonic_core::schedule::SmartSchedule;
use bitonic_core::RemapKind;
use logp::cost::{loggp_total_us, logp_total_us};
use logp::metrics;
use logp::LogGpParams;

/// Theorem 1 via Lemma 1: no phase of the smart schedule executes more
/// than lg n steps, and every phase except possibly the last executes
/// exactly lg n — so the number of remaps meets the lower bound
/// ⌈(#tail steps) / lg n⌉.
#[test]
fn theorem_1_minimum_number_of_remaps() {
    for lgn in 1..10u32 {
        for lgp in 1..7u32 {
            let n_total = 1usize << (lgn + lgp);
            let p = 1usize << lgp;
            let sched = SmartSchedule::new(n_total, p);
            let tail_steps: u64 =
                u64::from(lgp) * u64::from(lgn) + u64::from(lgp) * (u64::from(lgp) + 1) / 2;
            for (i, phase) in sched.phases.iter().enumerate() {
                assert!(
                    phase.steps.len() as u64 <= u64::from(lgn),
                    "Lemma 1 violated"
                );
                if i + 1 != sched.phases.len() {
                    assert_eq!(phase.steps.len() as u64, u64::from(lgn));
                }
            }
            let lower_bound = tail_steps.div_ceil(u64::from(lgn));
            assert_eq!(
                sched.remap_count() as u64,
                lower_bound,
                "lgn={lgn} lgp={lgp}"
            );
        }
    }
}

/// Section 3.2: R_smart ≈ lgP + 1 in the common regime vs 2·lgP for
/// cyclic-blocked — about half.
#[test]
fn smart_halves_the_remap_count() {
    for lgp in 1..6u32 {
        let p = 1usize << lgp;
        let n = 1usize << 20;
        let r_smart = metrics::smart_exact(n, p).remaps;
        let r_cb = metrics::cyclic_blocked(n, p).remaps;
        assert_eq!(r_smart, u64::from(lgp) + 1);
        assert_eq!(r_cb, 2 * u64::from(lgp));
    }
}

/// Section 3.2.1: V_cyclic-blocked / V_smart ≈ 2(1 − 1/P).
#[test]
fn volume_ratio_is_two_ish() {
    for lgp in 1..6u32 {
        let p = 1usize << lgp;
        let n = 1usize << 20;
        let ratio =
            metrics::cyclic_blocked(n, p).volume as f64 / metrics::smart_exact(n, p).volume as f64;
        let expect = 2.0 * (1.0 - 1.0 / p as f64);
        assert!((ratio - expect).abs() < 1e-9, "P={p}: {ratio} vs {expect}");
    }
}

/// Theorem 1 remark: the smart layout has no N >= P^2 restriction; the
/// schedule exists and sorts even when n < P.
#[test]
fn no_n_ge_p_squared_restriction() {
    let sched = SmartSchedule::new(64, 32); // n = 2 << P = 32
    assert!(sched.remap_count() > 0);
    // And cyclic-blocked genuinely cannot cover the final stage locally:
    // lg N = 6 > 2·lg n = 2.
    let lg_n = sched.lg_n();
    let lg_total = sched.lg_n() + sched.lg_p();
    assert!(lg_total > 2 * lg_n);
}

/// Section 4.1: in the common regime the schedule is one inside remap,
/// then crossings — so every local phase is just a sort.
#[test]
fn common_regime_phase_kinds() {
    let sched = SmartSchedule::new(1usize << 25, 32);
    let kinds: Vec<RemapKind> = sched.phases.iter().map(|ph| ph.params.kind).collect();
    assert_eq!(kinds[0], RemapKind::Inside);
    assert!(kinds[1..kinds.len() - 1]
        .iter()
        .all(|k| *k == RemapKind::Crossing));
    assert_eq!(*kinds.last().unwrap(), RemapKind::Last);
}

/// Section 3.4.2: under LogP (short messages), smart wins on all three
/// metrics simultaneously, hence on time.
#[test]
fn smart_is_logp_optimal() {
    for (n, p) in [(1usize << 20, 32usize), (1 << 18, 16), (1 << 14, 8)] {
        let params = LogGpParams::meiko_cs2(p);
        let s = metrics::smart_exact(n, p);
        let cb = metrics::cyclic_blocked(n, p);
        let b = metrics::blocked(n, p);
        assert!(s.remaps <= cb.remaps && s.volume <= cb.volume && s.messages <= cb.messages);
        let t = |m: metrics::CommMetrics| logp_total_us(&params, m);
        assert!(t(s) < t(cb) && t(cb) < t(b));
    }
}

/// Section 3.4.3: under LogGP, blocked sends the fewest messages, and for
/// P = 2 it can win outright.
#[test]
fn loggp_can_favor_blocked_for_two_processors() {
    let (n, p) = (1usize << 20, 2usize);
    let params = LogGpParams::meiko_cs2(p);
    let t = |m: metrics::CommMetrics| loggp_total_us(&params, m, 4);
    assert!(t(metrics::blocked(n, p)) <= t(metrics::smart_exact(n, p)));
    assert!(t(metrics::blocked(n, p)) <= t(metrics::cyclic_blocked(n, p)));
}

/// Section 5.4: long messages cut communication time by an order of
/// magnitude at P = 16 (Table 5.3's ~13x).
#[test]
fn long_messages_order_of_magnitude() {
    let (n, p) = (1usize << 18, 16usize);
    let params = LogGpParams::meiko_cs2(p);
    let m = metrics::smart_exact(n, p);
    let short = logp_total_us(
        &params,
        metrics::CommMetrics {
            messages: m.volume,
            ..m
        },
    );
    let long = loggp_total_us(&params, m, 4);
    let ratio = short / long;
    assert!(ratio > 10.0, "got {ratio:.1}x");
}

/// Figure 3.3's headline: 7 remaps instead of cyclic-blocked's 8 for
/// N = 256, P = 16 — and fewer elements transferred at each remap.
#[test]
fn figure_3_3_improvements() {
    let (n_total, p) = (256usize, 16usize);
    let n = n_total / p;
    let s = bitonic_core::complexity::smart_metrics(n_total, p);
    let cb = metrics::cyclic_blocked(n, p);
    assert_eq!(s.remaps, 7);
    assert_eq!(cb.remaps, 8);
    assert!(s.volume < cb.volume);
    let per_remap_cb = n as u64 - (n / p) as u64;
    for prof in bitonic_core::complexity::smart_profiles(n_total, p) {
        assert!(prof.sent as u64 <= per_remap_cb);
    }
}
