//! Large-scale and exhaustive-grid tests.
//!
//! The grid sweep runs in the normal suite; the paper-scale runs are
//! `#[ignore]`d (minutes of single-core time) — run them with
//! `cargo test --release --test stress -- --ignored`.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use spmd::MessageMode;

/// Every (lg n, lg P) cell of a small grid, deterministic keys: the smart
/// sort must work at every shape, including every n < P cell.
#[test]
fn exhaustive_machine_grid() {
    for lg_p in 0..=5u32 {
        for lg_n in 1..=6u32 {
            let p = 1usize << lg_p;
            let total = 1usize << (lg_n + lg_p);
            let input = uniform_keys(total, u64::from(lg_n * 31 + lg_p));
            let mut expect = input.clone();
            expect.sort_unstable();
            let run = run_parallel_sort(
                &input,
                p,
                MessageMode::Long,
                Algorithm::Smart,
                LocalStrategy::Merges,
            );
            assert_eq!(run.output, expect, "lg n = {lg_n}, lg P = {lg_p}");
        }
    }
}

/// All four bitonic pipelines on a moderately large machine in one go.
#[test]
fn four_pipelines_quarter_million_keys() {
    let input = uniform_keys(1 << 18, 99);
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in [
        Algorithm::Smart,
        Algorithm::SmartFused,
        Algorithm::CyclicBlocked,
        Algorithm::BlockedMerge,
    ] {
        let run = run_parallel_sort(&input, 16, MessageMode::Long, algo, LocalStrategy::Merges);
        assert_eq!(run.output, expect, "{algo:?}");
    }
}

/// Paper-scale: 4M keys on 32 ranks (the Table 5.1 128K-per-proc row).
#[test]
#[ignore = "paper-scale run: ~4M keys on 32 threads, minutes on one core"]
fn paper_scale_table_5_1_row() {
    let n_per_proc = 128 * 1024;
    let p = 32;
    let input = uniform_keys(n_per_proc * p, 5551);
    let mut expect = input.clone();
    expect.sort_unstable();
    let run = run_parallel_sort(
        &input,
        p,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    assert_eq!(run.output, expect);
    let stats = &run.ranks[0].stats;
    assert_eq!(stats.remap_count(), 6, "R = lgP + 1 in the common regime");
    assert_eq!(stats.elements_sent, 5 * n_per_proc as u64, "V = n lgP");
    eprintln!(
        "paper-scale smart sort: {:.2}s wall on this host, R={}, V={}",
        run.elapsed.as_secs_f64(),
        stats.remap_count(),
        stats.elements_sent
    );
}

/// Paper-scale fused pipeline at 1M keys per processor on 16 ranks.
#[test]
#[ignore = "paper-scale run: 16M keys, minutes on one core"]
fn paper_scale_fused_16m_keys() {
    let input = uniform_keys(16 << 20, 777);
    let run = run_parallel_sort(
        &input,
        16,
        MessageMode::Long,
        Algorithm::SmartFused,
        LocalStrategy::Merges,
    );
    assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
    eprintln!("fused 16M keys: {:.2}s wall", run.elapsed.as_secs_f64());
}
