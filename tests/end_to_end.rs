//! End-to-end randomized testing of every sort in the workspace, across
//! machine sizes, message modes and input distributions.

use baselines::{run_baseline, Baseline};
use bitonic_bench::workloads::{keys, Distribution};
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use proptest::prelude::*;
use spmd::MessageMode;

const DISTS: [Distribution; 5] = [
    Distribution::Uniform31,
    Distribution::LowEntropy,
    Distribution::Constant,
    Distribution::Sorted,
    Distribution::ReverseSorted,
];

#[test]
fn every_algorithm_every_distribution() {
    for dist in DISTS {
        let input = keys(1 << 10, dist, 5);
        let mut expect = input.clone();
        expect.sort_unstable();
        for p in [1usize, 4, 16] {
            for algo in [
                Algorithm::Smart,
                Algorithm::CyclicBlocked,
                Algorithm::BlockedMerge,
            ] {
                let run =
                    run_parallel_sort(&input, p, MessageMode::Long, algo, LocalStrategy::Merges);
                assert_eq!(run.output, expect, "{algo:?} P={p} {}", dist.name());
            }
            for which in [Baseline::Radix, Baseline::Sample] {
                let run = run_baseline(&input, p, MessageMode::Long, which);
                assert_eq!(run.output, expect, "{which:?} P={p} {}", dist.name());
            }
        }
    }
}

#[test]
fn short_and_long_messages_agree() {
    let input = keys(1 << 9, Distribution::Uniform31, 6);
    for algo in [
        Algorithm::Smart,
        Algorithm::CyclicBlocked,
        Algorithm::BlockedMerge,
    ] {
        let long = run_parallel_sort(&input, 8, MessageMode::Long, algo, LocalStrategy::Merges);
        let short = run_parallel_sort(&input, 8, MessageMode::Short, algo, LocalStrategy::Merges);
        assert_eq!(long.output, short.output, "{algo:?}");
        // Same elements move either way; short mode sends one message per
        // element.
        assert_eq!(
            long.ranks[0].stats.elements_sent,
            short.ranks[0].stats.elements_sent
        );
        assert_eq!(
            short.ranks[0].stats.messages_sent, short.ranks[0].stats.elements_sent,
            "short messages: M = V"
        );
        assert!(long.ranks[0].stats.messages_sent < short.ranks[0].stats.messages_sent);
    }
}

#[test]
fn canonical_and_merges_strategies_agree_end_to_end() {
    let input = keys(1 << 10, Distribution::Uniform31, 7);
    let a = run_parallel_sort(
        &input,
        8,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Canonical,
    );
    let b = run_parallel_sort(
        &input,
        8,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    assert_eq!(a.output, b.output);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn smart_sorts_arbitrary_inputs(
        lg_total in 4u32..11,
        lg_p in 0u32..4,
        seed in any::<u64>(),
        dist_idx in 0usize..DISTS.len(),
    ) {
        // Keep at least 2 keys per processor.
        let lg_p = lg_p.min(lg_total - 1);
        let total = 1usize << lg_total;
        let p = 1usize << lg_p;
        let input = keys(total, DISTS[dist_idx], seed);
        let mut expect = input.clone();
        expect.sort_unstable();
        let run = run_parallel_sort(&input, p, MessageMode::Long, Algorithm::Smart,
                                    LocalStrategy::Merges);
        prop_assert_eq!(run.output, expect);
    }

    #[test]
    fn baselines_sort_arbitrary_inputs(
        lg_total in 6u32..11,
        lg_p in 0u32..4,
        seed in any::<u64>(),
    ) {
        let lg_p = lg_p.min(lg_total - 1);
        let total = 1usize << lg_total;
        let p = 1usize << lg_p;
        let input = keys(total, Distribution::Uniform31, seed);
        let mut expect = input.clone();
        expect.sort_unstable();
        for which in [Baseline::Radix, Baseline::Sample] {
            let run = run_baseline(&input, p, MessageMode::Long, which);
            prop_assert_eq!(&run.output, &expect, "{:?}", which);
        }
    }
}
