//! Chaos conformance suite: every sorting network must produce exactly
//! the sorted input — no lost, duplicated, or misordered keys — while the
//! mesh underneath drops, duplicates, reorders and delays its messages,
//! or stalls a whole rank. Faults are injected deterministically from a
//! master seed (see `spmd::fault`), so every failure here is replayable.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort_chaos, Algorithm};
use bitonic_core::local::LocalStrategy;
use spmd::{run_spmd_chaos, FailurePhase, FaultConfig, MessageMode, TraceConfig};
use std::time::Duration;

const ALGOS: [Algorithm; 4] = [
    Algorithm::Smart,
    Algorithm::SmartFused,
    Algorithm::CyclicBlocked,
    Algorithm::BlockedMerge,
];

const MODES: [MessageMode; 2] = [MessageMode::Long, MessageMode::Short];

const MACHINES: [usize; 3] = [2, 4, 8];

/// Keys per rank: long messages are cheap, short mode pays per key (and
/// per-key injection), so it runs a smaller working set.
fn keys_per_rank(mode: MessageMode) -> usize {
    match mode {
        MessageMode::Long => 256,
        MessageMode::Short => 64,
    }
}

/// Test-speed recovery timings: tight retry tick so dropped messages are
/// renacked quickly, and a watchdog far above any plausible recovery time
/// so a genuine liveness bug fails the test instead of hanging it.
fn tuned(base: FaultConfig) -> FaultConfig {
    FaultConfig {
        retry_tick: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(4),
        watchdog: Some(Duration::from_secs(20)),
        ..base
    }
}

/// Run `algo` under `fault` on every machine size and message mode, and
/// require the output to be *exactly* the sorted input — sortedness and
/// multiset preservation (nothing lost, nothing delivered twice) in one
/// comparison.
fn conformance(algo: Algorithm, fault: FaultConfig, label: &str) {
    for mode in MODES {
        for p in MACHINES {
            let fault = FaultConfig {
                // A stall rank outside the machine would silently disable
                // the class; pin it to the last rank of this machine.
                stall_rank: fault.stall_rank.map(|_| p - 1),
                ..fault
            };
            let input = uniform_keys(keys_per_rank(mode) * p, 23 + p as u64);
            let mut expect = input.clone();
            expect.sort_unstable();
            let run = run_parallel_sort_chaos(
                &input,
                p,
                mode,
                algo,
                LocalStrategy::Merges,
                TraceConfig::off(),
                fault,
            )
            .unwrap_or_else(|f| panic!("{label}/{algo:?}/{mode:?} P={p}: {f}"));
            assert_eq!(
                run.output, expect,
                "{label}/{algo:?}/{mode:?} P={p}: output must be the sorted input"
            );
        }
    }
}

#[test]
fn survives_latency_jitter() {
    let fault = tuned(FaultConfig {
        jitter_us: 30,
        ..FaultConfig::off()
    });
    for algo in ALGOS {
        conformance(algo, FaultConfig { seed: 101, ..fault }, "jitter");
    }
}

#[test]
fn survives_reordering() {
    let fault = tuned(FaultConfig {
        reorder_rate: 0.2,
        ..FaultConfig::off()
    });
    for algo in ALGOS {
        conformance(algo, FaultConfig { seed: 202, ..fault }, "reorder");
    }
}

#[test]
fn survives_duplication() {
    let fault = tuned(FaultConfig {
        dup_rate: 0.1,
        ..FaultConfig::off()
    });
    for algo in ALGOS {
        conformance(algo, FaultConfig { seed: 303, ..fault }, "duplicate");
    }
}

#[test]
fn survives_drops() {
    let fault = tuned(FaultConfig {
        drop_rate: 0.05,
        ..FaultConfig::off()
    });
    for algo in ALGOS {
        conformance(algo, FaultConfig { seed: 404, ..fault }, "drop");
    }
}

#[test]
fn survives_a_stalling_rank() {
    let fault = tuned(FaultConfig {
        stall_rank: Some(usize::MAX), // pinned to P-1 per machine
        stall_us: 300,
        ..FaultConfig::off()
    });
    for algo in ALGOS {
        conformance(algo, FaultConfig { seed: 505, ..fault }, "stall");
    }
}

#[test]
fn survives_all_classes_at_once() {
    for algo in ALGOS {
        conformance(algo, tuned(FaultConfig::chaos(606)), "mixed");
    }
}

/// The acceptance bar from the issue: 5% drops at P=8, all four
/// algorithms, fully sorted duplicate-free delivery.
#[test]
fn five_percent_drops_at_p8_sort_correctly() {
    let fault = tuned(FaultConfig {
        seed: 808,
        drop_rate: 0.05,
        ..FaultConfig::off()
    });
    let input = uniform_keys(256 * 8, 99);
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in ALGOS {
        let run = run_parallel_sort_chaos(
            &input,
            8,
            MessageMode::Long,
            algo,
            LocalStrategy::Merges,
            TraceConfig::off(),
            fault,
        )
        .expect("drops must be recovered, not fatal");
        assert_eq!(run.output, expect, "{algo:?}: every key exactly once");
        let drops: u64 = run
            .ranks
            .iter()
            .map(|r| r.stats.faults.drops_injected)
            .sum();
        assert!(drops > 0, "{algo:?}: the fault plan must actually bite");
    }
}

/// Identical seeds → identical injected-fault decisions, identical
/// traffic counters, identical output. The recovery-side counters
/// (retries, nacks) are timing-dependent by design and deliberately not
/// compared.
#[test]
fn equal_seeds_inject_equal_faults() {
    let input = uniform_keys(256 * 4, 7);
    let run_once = || {
        run_parallel_sort_chaos(
            &input,
            4,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
            TraceConfig::off(),
            tuned(FaultConfig::chaos(4242)),
        )
        .expect("chaos preset must be survivable")
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.output, b.output, "same seed, same sorted output");
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(
            ra.stats.remaps, rb.stats.remaps,
            "rank {}: R/V/M records must be reproducible",
            ra.rank
        );
        assert_eq!(ra.stats.elements_sent, rb.stats.elements_sent);
        assert_eq!(ra.stats.messages_sent, rb.stats.messages_sent);
        assert_eq!(
            ra.stats.faults.injected(),
            rb.stats.faults.injected(),
            "rank {}: injected fault counters must be reproducible",
            ra.rank
        );
    }
}

/// Different seeds must actually change the fault plan (otherwise the
/// seed is decorative).
#[test]
fn different_seeds_inject_different_faults() {
    let input = uniform_keys(256 * 4, 7);
    let run_with = |seed| {
        run_parallel_sort_chaos(
            &input,
            4,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
            TraceConfig::off(),
            tuned(FaultConfig::chaos(seed)),
        )
        .expect("chaos preset must be survivable")
    };
    let a = run_with(1);
    let b = run_with(2);
    let plan = |run: &bitonic_core::algorithms::SortRun<u32>| -> Vec<[u64; 6]> {
        run.ranks
            .iter()
            .map(|r| r.stats.faults.injected())
            .collect()
    };
    assert_ne!(plan(&a), plan(&b), "seeds 1 and 2 drew the same fault plan");
    let mut expect = input.clone();
    expect.sort_unstable();
    assert_eq!(a.output, expect);
    assert_eq!(b.output, expect);
}

/// `FaultConfig::off` must be indistinguishable from the legacy machine:
/// zero fault counters, identical R/V/M records.
#[test]
fn fault_config_off_changes_nothing() {
    let input = uniform_keys(128 * 4, 5);
    let baseline = bitonic_core::algorithms::run_parallel_sort(
        &input,
        4,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    let off = run_parallel_sort_chaos(
        &input,
        4,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
        TraceConfig::off(),
        FaultConfig::off(),
    )
    .expect("a fault-free machine cannot fail");
    assert_eq!(baseline.output, off.output);
    for (ra, rb) in baseline.ranks.iter().zip(&off.ranks) {
        assert_eq!(ra.stats.remaps, rb.stats.remaps);
        assert_eq!(rb.stats.faults, Default::default(), "no counters touched");
    }
}

/// A rank that never shows up must become a structured `RankFailure`
/// naming the barrier, not a deadlock: the survivors' watchdogs withdraw
/// them from the barrier and the runtime reports the lowest failed rank.
#[test]
fn barrier_watchdog_converts_deadlock_into_failure() {
    let fault = FaultConfig {
        watchdog: Some(Duration::from_millis(150)),
        ..FaultConfig::off()
    };
    let err =
        run_spmd_chaos::<u32, (), _>(4, MessageMode::Long, TraceConfig::off(), fault, |comm| {
            if comm.rank() == 3 {
                // Simulate a wedged rank: far past everyone's watchdog.
                std::thread::sleep(Duration::from_millis(600));
            }
            comm.barrier();
        })
        .expect_err("the machine must fail, not hang");
    assert_eq!(err.during, FailurePhase::Barrier);
    assert!(err.rank < 3, "a waiting rank reports, got {err}");
    assert!(err.waited >= Duration::from_millis(150), "{err}");
}

/// The receive watchdog: a peer that never sends is reported with the
/// link that went silent.
#[test]
fn receive_watchdog_names_the_silent_peer() {
    let fault = FaultConfig {
        watchdog: Some(Duration::from_millis(150)),
        retry_tick: Duration::from_millis(2),
        ..FaultConfig::off()
    };
    let err =
        run_spmd_chaos::<u32, (), _>(2, MessageMode::Long, TraceConfig::off(), fault, |comm| {
            if comm.rank() == 0 {
                // Rank 1 expects a sendrecv that rank 0 never joins.
                std::thread::sleep(Duration::from_millis(600));
            } else {
                let _ = comm.sendrecv(0, vec![1u32, 2, 3]);
            }
        })
        .expect_err("the machine must fail, not hang");
    assert_eq!(err.rank, 1);
    assert_eq!(err.during, FailurePhase::Receive);
    assert_eq!(err.waiting_on, Some(0), "failure names the silent peer");
}

/// Fault spans surface in traces: injected stalls produce `Stall` spans
/// on the afflicted rank and nowhere else.
#[test]
fn injected_stalls_appear_in_traces() {
    use obs::TracePhase;
    let fault = tuned(FaultConfig {
        seed: 909,
        stall_rank: Some(1),
        stall_us: 200,
        ..FaultConfig::off()
    });
    let input = uniform_keys(64 * 2, 3);
    let run = run_parallel_sort_chaos(
        &input,
        2,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
        TraceConfig::on(),
        fault,
    )
    .expect("stalls are benign");
    for rank in &run.ranks {
        let stall_spans = rank
            .trace
            .spans()
            .filter(|s| s.phase == TracePhase::Stall)
            .count();
        if rank.rank == 1 {
            assert!(stall_spans > 0, "stalled rank must record Stall spans");
            assert!(rank.stats.faults.stalls_injected > 0);
            assert!(rank.stats.faults.stall_time >= Duration::from_micros(200));
        } else {
            assert_eq!(stall_spans, 0, "only the stalled rank stalls");
            assert_eq!(rank.stats.faults.stalls_injected, 0);
        }
    }
}

/// Dropped messages leave their fingerprints in the recovery counters:
/// somebody nacked, somebody retransmitted, and the receiver suppressed
/// any crossing duplicates — all visible through `CommStats`.
#[test]
fn drop_recovery_is_observable_in_counters() {
    let fault = tuned(FaultConfig {
        seed: 1001,
        drop_rate: 0.08,
        ..FaultConfig::off()
    });
    let input = uniform_keys(256 * 4, 55);
    let run = run_parallel_sort_chaos(
        &input,
        4,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
        TraceConfig::off(),
        fault,
    )
    .expect("drops must be recovered");
    let total = |f: fn(&spmd::FaultStats) -> u64| -> u64 {
        run.ranks.iter().map(|r| f(&r.stats.faults)).sum()
    };
    let drops = total(|f| f.drops_injected);
    let retries = total(|f| f.retries);
    let nacks = total(|f| f.nacks_sent);
    assert!(drops > 0, "plan must inject drops at 8%");
    assert!(nacks > 0, "receivers must have complained");
    assert!(
        retries >= drops,
        "every dropped payload needs at least one retransmission \
         (drops={drops}, retries={retries})"
    );
}
