//! Cross-cutting properties: obliviousness, determinism, wide keys, and
//! runtime failure behavior.

use bitonic_bench::workloads::{keys, Distribution};
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::layout::blocked;
use bitonic_core::local::LocalStrategy;
use bitonic_core::{BitLayout, RemapPlan};
use proptest::prelude::*;
use spmd::{run_spmd, MessageMode};

/// Section 5.5: "Bitonic sort … is oblivious to the input distribution" —
/// the communication pattern (R, V, M, per-remap volumes) is *identical*
/// for every input, unlike sample sort's.
#[test]
fn bitonic_communication_is_input_oblivious() {
    let (total, p) = (1usize << 10, 8usize);
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for dist in [
        Distribution::Uniform31,
        Distribution::LowEntropy,
        Distribution::Constant,
        Distribution::Sorted,
        Distribution::ReverseSorted,
    ] {
        let input = keys(total, dist, 3);
        let run = run_parallel_sort(
            &input,
            p,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let profile: Vec<(u64, u64)> = run.ranks[0]
            .stats
            .remaps
            .iter()
            .map(|r| (r.elements_sent, r.messages_sent))
            .collect();
        match &reference {
            None => reference = Some(profile),
            Some(expect) => {
                assert_eq!(&profile, expect, "{} changed the pattern", dist.name());
            }
        }
    }
}

/// Same seed, same machine → bit-identical outputs and counters across
/// repeated runs (the channel nondeterminism must not leak).
#[test]
fn runs_are_deterministic() {
    let input = keys(1 << 10, Distribution::Uniform31, 9);
    let a = run_parallel_sort(
        &input,
        8,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    let b = run_parallel_sort(
        &input,
        8,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    assert_eq!(a.output, b.output);
    for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(ra.stats.remaps, rb.stats.remaps);
    }
}

/// 64-bit keys flow through the whole stack (RadixKey is generic).
#[test]
fn sorts_u64_keys_end_to_end() {
    let mut x = 42u64;
    let input: Vec<u64> = (0..1 << 10)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        })
        .collect();
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in [
        Algorithm::Smart,
        Algorithm::SmartFused,
        Algorithm::CyclicBlocked,
    ] {
        let run = run_parallel_sort(&input, 8, MessageMode::Long, algo, LocalStrategy::Merges);
        assert_eq!(run.output, expect, "{algo:?}");
    }
}

/// Signed 32-bit keys (via the order-preserving sign-flip RadixKey impl)
/// sort correctly end to end, including across zero.
#[test]
fn sorts_signed_keys_end_to_end() {
    let mut x = 7u64;
    let input: Vec<i32> = (0..1 << 10)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as i32 - (1 << 30)
        })
        .collect();
    let mut expect = input.clone();
    expect.sort_unstable();
    let run = run_parallel_sort(
        &input,
        8,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );
    assert_eq!(run.output, expect);
    assert!(run.output.first().unwrap() < &0 && run.output.last().unwrap() > &0);
}

/// A rank panic propagates out of run_spmd instead of hanging the machine.
#[test]
fn rank_panic_propagates() {
    let result = std::panic::catch_unwind(|| {
        run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            if comm.rank() == 2 {
                panic!("rank 2 exploded");
            }
            // Other ranks return without communicating (they would block if
            // they tried to talk to rank 2).
        })
    });
    assert!(result.is_err(), "the panic must surface");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The fused pipeline equals the plain smart sort on arbitrary inputs
    /// and machine shapes.
    #[test]
    fn fused_equals_plain(
        lg_total in 6u32..11,
        lg_p in 0u32..4,
        seed in any::<u64>(),
    ) {
        let lg_p = lg_p.min(lg_total - 1);
        let total = 1usize << lg_total;
        let p = 1usize << lg_p;
        let input = keys(total, Distribution::Uniform31, seed);
        let plain =
            run_parallel_sort(&input, p, MessageMode::Long, Algorithm::Smart, LocalStrategy::Merges);
        let fused = run_parallel_sort(
            &input, p, MessageMode::Long, Algorithm::SmartFused, LocalStrategy::Merges);
        prop_assert_eq!(plain.output, fused.output);
    }

    /// FullSort equals Merges wherever the Figure 4.5 regime holds (and
    /// falls back identically where it doesn't).
    #[test]
    fn fullsort_equals_merges(
        lg_total in 6u32..11,
        lg_p in 0u32..5,
        seed in any::<u64>(),
    ) {
        let lg_p = lg_p.min(lg_total - 1);
        let total = 1usize << lg_total;
        let p = 1usize << lg_p;
        let input = keys(total, Distribution::Uniform31, seed);
        let merges =
            run_parallel_sort(&input, p, MessageMode::Long, Algorithm::Smart, LocalStrategy::Merges);
        let fullsort = run_parallel_sort(
            &input, p, MessageMode::Long, Algorithm::Smart, LocalStrategy::FullSort);
        prop_assert_eq!(merges.output, fullsort.output);
    }

    /// The flat zero-copy remap path ([`RemapPlan::apply_into`]) equals the
    /// legacy nested-Vec oracle ([`RemapPlan::apply`]) under adversarial
    /// geometries the sort schedules never produce: tiny per-rank arrays
    /// (`n < P`), near-identity layout pairs where most destination buckets
    /// are empty, and the exact identity remap (zero traffic).
    #[test]
    fn flat_remap_matches_oracle_under_adversarial_layouts(
        lg_total in 4u32..7,
        lg_local in 1u32..3,
        n_swaps in 0u32..3,
        swap_bits in any::<u64>(),
        long in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Layout `a` is blocked; `b` perturbs its bit permutation by 0–2
        // transpositions. Zero swaps is the identity remap; one local-bit
        // swap moves nothing between ranks; small swap counts leave most
        // of the P destination buckets empty. lg_local < lg_total/2 makes
        // n as small as 2 while P reaches 32.
        let a = blocked(lg_total, lg_local);
        let mut perm: Vec<u32> = (0..lg_total).collect();
        for s in 0..n_swaps {
            let i = ((swap_bits >> (8 * s)) & 0xf) as u32 % lg_total;
            let j = ((swap_bits >> (8 * s + 4)) & 0xf) as u32 % lg_total;
            perm.swap(i as usize, j as usize);
        }
        let b = BitLayout::new(perm, lg_local);
        let procs = a.procs();
        let mode = if long { MessageMode::Long } else { MessageMode::Short };
        let (a2, b2) = (a.clone(), b.clone());
        let results = run_spmd::<u64, _, _>(procs, mode, move |comm| {
            let me = comm.rank();
            let data: Vec<u64> = (0..a2.local_size())
                .map(|x| (a2.abs_at(me, x) as u64).wrapping_mul(seed | 1))
                .collect();
            let plan = RemapPlan::new(&a2, &b2, me);
            let oracle = plan.apply(comm, &data);
            let mut flat = Vec::new();
            plan.apply_into(comm, &data, &mut flat);
            (flat, oracle)
        });
        for r in &results {
            let (flat, oracle) = &r.output;
            prop_assert_eq!(flat, oracle, "rank {}: flat path diverged", r.rank);
            // Both paths must also record identical R/V/M counters.
            let [x, y] = &r.stats.remaps[..] else {
                panic!("expected exactly two remap records");
            };
            prop_assert_eq!(x, y, "rank {}: counter records diverged", r.rank);
        }
    }
}
