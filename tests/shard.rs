//! Sharded-serving guarantees: the router/steal/autoscale stack answers
//! byte-identically to a single pool, work stealing fires exactly where
//! the policy says and replays bit for bit, the autoscaler walks a full
//! grow/shrink cycle deterministically, and a rank failure in one shard
//! never leaks into its neighbors.

use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use obs::{TraceConfig, TracePhase};
use proptest::prelude::*;
use sort_service::{
    AutoscaleConfig, BulkConfig, ClassConfig, EngineEvent, ServiceConfig, ShardEngine,
    ShardedConfig, ShardedService, SortRequest, SortService,
};
use std::time::Duration;

/// A two-band topology small enough for tests: requests up to 64 keys
/// are "small", up to 256 keys are "bulk", one 2-rank machine each.
fn two_bands() -> ShardedConfig {
    let base = ServiceConfig::new(2);
    let mut small = base;
    small.max_wait = Duration::from_micros(200);
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, small),
            ClassConfig::new("bulk", 256, base),
        ],
        steal_after: Some(Duration::from_micros(300)),
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::default(),
    };
    cfg.validate();
    cfg
}

/// A request mix spanning both bands: tiny requests (n < P, empty,
/// duplicate-heavy) and band-crossing bulk ones, in both directions,
/// some with explicit (generous) per-request deadlines.
fn request_strategy() -> impl Strategy<Value = Vec<(Vec<u32>, Direction, Option<Duration>)>> {
    let request = (
        (
            0usize..4,
            proptest::collection::vec(0u32..16, 0..40),
            proptest::collection::vec(any::<u32>(), 65..256),
        ),
        (any::<bool>(), 0u32..3),
    )
        .prop_map(|((kind, small, bulk), (asc, dl))| {
            // Three of four requests are small (n < P, empty, duplicate-
            // heavy); the fourth crosses into the bulk band.
            let keys = if kind == 3 { bulk } else { small };
            let dir = if asc {
                Direction::Ascending
            } else {
                Direction::Descending
            };
            let deadline = (dl == 0).then(|| Duration::from_secs(30));
            (keys, dir, deadline)
        });
    proptest::collection::vec(request, 1..14)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole's correctness core: routing a mix across shards —
    /// with work stealing live — produces replies byte-identical to the
    /// same mix through one single-pool service, and both match the
    /// oracle.
    #[test]
    fn sharded_replies_are_byte_identical_to_a_single_pool(requests in request_strategy()) {
        let sharded = ShardedService::start(two_bands());
        let single = SortService::start(ServiceConfig::new(2));

        type Submitted = Result<sort_service::Ticket, sort_service::Rejection>;
        let submit_all = |submit: &dyn Fn(SortRequest) -> Submitted| -> Vec<Vec<u32>> {
            let tickets: Vec<sort_service::Ticket> = requests
                .iter()
                .map(|(keys, dir, deadline)| {
                    let mut r = SortRequest::new(keys.clone(), *dir);
                    if let Some(d) = deadline {
                        r = r.with_deadline(*d);
                    }
                    submit(r).expect("admitted")
                })
                .collect();
            tickets.into_iter().map(|t| t.wait().expect("sorted")).collect()
        };
        let sharded_replies = submit_all(&|r| sharded.submit(r));
        let single_replies = submit_all(&|r| single.submit(r));

        prop_assert_eq!(&sharded_replies, &single_replies);
        for (reply, (keys, dir, _)) in sharded_replies.iter().zip(&requests) {
            prop_assert_eq!(reply, &sorted_independently(keys, *dir));
        }

        let stats = sharded.shutdown().stats;
        prop_assert_eq!(stats.completed(), requests.len() as u64);
        prop_assert_eq!(stats.shed() + stats.expired() + stats.failed(), 0);
        let _ = single.shutdown();
    }
}

/// The steal scenario under virtual time: shard 1's only machine is mid
/// run when a second bulk request arrives, so the idle small shard — and
/// nobody else — claims it once the head crosses `steal_after`.
fn steal_script(engine: &mut ShardEngine, seed: u32) -> (u64, u64) {
    let ms = Duration::from_millis;
    let bulk = |n: u32, seed: u32| -> Vec<u32> {
        (0..n)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(7) ^ seed)
            .collect()
    };
    // Request A occupies shard 1's machine for ~2.3 ms of virtual time.
    let a = engine
        .submit(SortRequest::ascending(bulk(10_000, seed)))
        .expect("admitted");
    engine.advance(ms(2)); // past max_wait: the coalescer flushes A
    engine.tick();
    // Request B lands behind the busy machine; its head ages toward the
    // 1 ms steal threshold while shard 0 sits idle.
    let b = engine
        .submit(SortRequest::new(
            bulk(9_000, seed ^ 0xA5A5),
            Direction::Descending,
        ))
        .expect("admitted");
    engine.run_until_idle();
    (a, b)
}

#[test]
fn an_idle_shard_steals_exactly_the_aged_batch_and_replays_bit_for_bit() {
    let base = ServiceConfig::new(2);
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, base),
            ClassConfig::new("bulk", 16_384, base),
        ],
        steal_after: Some(Duration::from_millis(1)),
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::default(),
    };

    let mut engine = ShardEngine::new(&cfg);
    let (a, b) = steal_script(&mut engine, 7);

    // Exactly one batch was stolen: B, by shard 0, from shard 1.
    let steals: Vec<&EngineEvent> = engine
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e,
                EngineEvent::Flushed {
                    stolen_from: Some(_),
                    ..
                }
            )
        })
        .collect();
    assert_eq!(steals.len(), 1, "exactly one steal: {:?}", engine.events());
    assert!(
        matches!(
            steals[0],
            EngineEvent::Flushed {
                shard: 0,
                stolen_from: Some(1),
                ..
            }
        ),
        "the idle small shard robs the busy bulk shard: {:?}",
        steals[0]
    );
    // The thief gets completion credit for B; A stayed with its owner.
    assert!(engine.events().contains(&EngineEvent::Completed {
        request: a,
        shard: 1
    }));
    assert!(engine.events().contains(&EngineEvent::Completed {
        request: b,
        shard: 0
    }));

    // Replies are oracle-correct even across the steal.
    for id in [a, b] {
        let reply = engine
            .reply(id)
            .expect("batch ran")
            .as_ref()
            .expect("sorted");
        assert!(reply
            .windows(2)
            .all(|w| if id == a { w[0] <= w[1] } else { w[0] >= w[1] }));
        assert_eq!(reply.len(), if id == a { 10_000 } else { 9_000 });
    }

    // Bit-for-bit replay: the same script yields the same decision log.
    let mut replay = ShardEngine::new(&cfg);
    let _ = steal_script(&mut replay, 7);
    assert_eq!(
        engine.events(),
        replay.events(),
        "the event log must replay exactly"
    );
}

#[test]
fn a_threaded_idle_shard_steals_from_a_stalled_neighbor_and_records_the_span() {
    // The bulk pool's rank 0 sleeps 3 ms at every collective (no
    // watchdog, so batches finish — slowly). While its machine grinds
    // through the first bulk request, the second one ages past
    // `steal_after` and the idle small shard takes it.
    let base = ServiceConfig::new(2);
    let mut small = base;
    small.max_wait = Duration::ZERO;
    let mut bulk = base;
    bulk.max_wait = Duration::ZERO;
    bulk.fault.stall_rank = Some(0);
    bulk.fault.stall_us = 3_000;
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, small),
            ClassConfig::new("bulk", 256, bulk),
        ],
        steal_after: Some(Duration::from_micros(500)),
        autoscale: None,
        trace: TraceConfig::on(),
        bulk: BulkConfig::default(),
    };

    let service = ShardedService::start(cfg);
    let first = service
        .submit(SortRequest::ascending((0..200u32).rev().collect()))
        .expect("admitted");
    // Let the bulk worker flush request one and get stuck in the stall.
    std::thread::sleep(Duration::from_millis(2));
    let second = service
        .submit(SortRequest::new(
            (0..150u32).collect(),
            Direction::Descending,
        ))
        .expect("admitted");

    assert_eq!(
        first.wait().expect("sorted"),
        (0..200).collect::<Vec<u32>>()
    );
    assert_eq!(
        second.wait().expect("sorted"),
        (0..150).rev().collect::<Vec<u32>>()
    );

    let report = service.shutdown();
    assert_eq!(
        report.stats.shards[0].steals, 1,
        "exactly one steal, by the small shard"
    );
    assert_eq!(report.stats.shards[0].stolen_requests, 1);
    assert_eq!(report.stats.shards[1].steals, 0);
    assert_eq!(report.stats.completed(), 2);
    assert!(
        report.shard_traces[0]
            .spans()
            .any(|s| s.phase == TracePhase::Steal),
        "the thief records a Steal span"
    );
    assert!(
        report
            .router_trace
            .spans()
            .all(|s| s.phase == TracePhase::Route),
        "the router records only Route spans"
    );
}

#[test]
fn the_autoscaler_walks_a_full_grow_and_shrink_cycle_under_virtual_time() {
    // One class with a 50 µs drain budget: any backlog overshoots, so
    // the pool must grow; a millisecond of quiet shrinks it back, one
    // machine per quiet patch, and never below one.
    let mut pool = ServiceConfig::new(2);
    pool.default_deadline = Duration::from_micros(50);
    let mut cfg = ShardedConfig {
        classes: vec![ClassConfig::new("all", 2_000, pool)],
        steal_after: None,
        autoscale: Some(AutoscaleConfig {
            min_machines: 1,
            max_machines: 3,
            headroom: 0.5,
            idle_before_shrink: Duration::from_millis(1),
            cooldown: Duration::from_micros(100),
        }),
        trace: TraceConfig::off(),
        bulk: BulkConfig::default(),
    };
    // One request per batch, so the backlog drains over several waves
    // and the grow pressure persists across ticks.
    cfg.classes[0].pool.max_batch_keys = 2_048;

    let mut engine = ShardEngine::new(&cfg);
    let ids: Vec<u64> = (0..6)
        .map(|i| {
            engine
                .submit(
                    SortRequest::ascending((0..2_000u32).map(|k| k.wrapping_mul(i + 3)).collect())
                        .with_deadline(Duration::from_secs(30)),
                )
                .expect("admitted")
        })
        .collect();
    engine.run_until_idle();

    let grows = engine
        .events()
        .iter()
        .filter(|e| matches!(e, EngineEvent::Scaled { grew: true, .. }))
        .count();
    assert!(
        grows >= 1,
        "the backlog must force at least one grow: {:?}",
        engine.events()
    );
    let peak = engine.machines(0);
    assert!(peak > 1, "the pool grew past one machine");
    for id in &ids {
        let reply = engine.reply(*id).expect("ran").as_ref().expect("sorted");
        assert!(reply.windows(2).all(|w| w[0] <= w[1]));
    }

    // Quiet patches shrink one machine at a time back to the floor.
    let mut shrinks = 0;
    for _ in 0..10 {
        engine.advance(Duration::from_micros(1_100));
        if engine.tick() {
            shrinks += 1;
        }
    }
    assert_eq!(
        engine.machines(0),
        1,
        "idleness drains the pool to the floor"
    );
    assert_eq!(shrinks, peak - 1, "each shrink needed its own quiet patch");
    // The floor holds: more idleness changes nothing.
    engine.advance(Duration::from_millis(5));
    assert!(!engine.tick(), "no verdict below one machine");
    assert_eq!(engine.machines(0), 1);
}

#[test]
fn a_rank_failure_in_one_shard_leaves_its_neighbors_unharmed() {
    // The bulk pool is poisoned: rank 0 stalls 50 ms per collective and
    // the 5 ms watchdog declares the batch wedged. The small shard (and
    // the service as a whole) must keep answering.
    let base = ServiceConfig::new(2);
    let mut small = base;
    small.max_wait = Duration::ZERO;
    let mut bulk = base;
    bulk.max_wait = Duration::ZERO;
    bulk.fault.stall_rank = Some(0);
    bulk.fault.stall_us = 50_000;
    // The service-level batch watchdog takes precedence over any
    // watchdog in the fault config — arm the real containment path.
    bulk.batch_watchdog = Some(Duration::from_millis(5));
    let cfg = ShardedConfig {
        classes: vec![
            ClassConfig::new("small", 64, small),
            ClassConfig::new("bulk", 256, bulk),
        ],
        // No stealing: the healthy shard must not adopt the poisoned
        // batch for this test to isolate the failure domain.
        steal_after: None,
        autoscale: None,
        trace: TraceConfig::off(),
        bulk: BulkConfig::default(),
    };

    let service = ShardedService::start(cfg);
    let small_before = service
        .submit(SortRequest::ascending(vec![3, 1, 2]))
        .expect("admitted");
    let doomed = service
        .submit(SortRequest::ascending((0..200u32).rev().collect()))
        .expect("admitted");
    assert_eq!(small_before.wait().expect("sorted"), vec![1, 2, 3]);
    let failure = doomed.wait().expect_err("the stalled batch fails");
    assert!(!failure.to_string().is_empty());

    // The failure consumed only the bulk shard's machine; small keeps
    // serving without ever noticing.
    let small_after = service
        .submit(SortRequest::new(vec![9, 7, 8], Direction::Descending))
        .expect("admitted");
    assert_eq!(small_after.wait().expect("sorted"), vec![9, 8, 7]);

    let stats = service.shutdown().stats;
    assert_eq!(stats.shards[0].completed, 2);
    assert_eq!(stats.shards[0].failed, 0);
    assert_eq!(stats.shards[0].pool.machines_rebuilt, 0);
    assert_eq!(stats.shards[1].failed, 1);
    assert_eq!(stats.shards[1].completed, 0);
    assert!(stats.shards[1].pool.machines_rebuilt >= 1);
}
