//! Kernel-level properties of the branch-free local-phase kernels
//! (`local_sorts::kernels`) and their dispatch layer:
//!
//! * **oracle equivalence** — every kernel and both dispatched entry
//!   points agree with `slice::sort_unstable` for every `RadixKey` type,
//!   in both directions, at adversarial lengths (empty, singleton,
//!   non-powers-of-two, all-equal, saturated);
//! * **comparator-sequence purity** — the number of key comparisons a
//!   network kernel performs is a function of the input *length* alone
//!   (the oblivious-execution precondition), and matches the closed-form
//!   counts `sort_ce_count` / `merge_ce_count`;
//! * **dispatch semantics** — the force override and the threshold table
//!   select the kernels they claim to.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt::Debug;

use local_sorts::bitonic_merge::sort_circular_with_scratch;
use local_sorts::dispatch::{self, select_merge_kernel, select_sort_kernel, set_force};
use local_sorts::kernels::{
    bitonic_merge_iterative, bitonic_sort_iterative, bitonic_sort_iterative_any, merge_ce_count,
    sort_ce_count,
};
use local_sorts::{
    local_sort_with_scratch, sort_bitonic_with_scratch, Direction, ForceKernel, Kernel, RadixKey,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Oracle equivalence

/// Sort `v` with the network kernel and the dispatched entry point and
/// compare both against the standard library.
fn sort_oracle<K: RadixKey + Debug>(mut v: Vec<K>, descending: bool) {
    let dir = if descending {
        Direction::Descending
    } else {
        Direction::Ascending
    };
    let mut expect = v.clone();
    expect.sort_unstable();
    if descending {
        expect.reverse();
    }

    let mut scratch = Vec::new();
    let mut net = v.clone();
    bitonic_sort_iterative_any(&mut net, &mut scratch, dir);
    assert_eq!(net, expect, "network sort, n={} {dir:?}", v.len());

    // Whatever kernel the table picks must give the same answer.
    local_sort_with_scratch(&mut v, &mut scratch, dir);
    assert_eq!(v, expect, "dispatched sort {dir:?}");
}

/// Shape `v` into a rotated mountain (a circular bitonic sequence), then
/// check every merge kernel and the dispatched merge against the oracle.
fn merge_oracle<K: RadixKey + Debug>(mut v: Vec<K>, rot: usize, descending: bool) {
    let n = v.len();
    if n > 1 {
        let peak = n / 2;
        v[..peak].sort_unstable();
        v[peak..].sort_unstable_by(|a, b| b.cmp(a));
        v.rotate_left(rot % n);
    }
    let dir = if descending {
        Direction::Descending
    } else {
        Direction::Ascending
    };
    let mut expect = v.clone();
    expect.sort_unstable();
    if descending {
        expect.reverse();
    }

    let mut scratch = Vec::new();
    let mut d = v.clone();
    sort_bitonic_with_scratch(&mut d, &mut scratch, dir);
    assert_eq!(d, expect, "dispatched merge, n={n} rot={rot} {dir:?}");

    if n.is_power_of_two() {
        let mut m = v.clone();
        bitonic_merge_iterative(&mut m, dir);
        assert_eq!(m, expect, "network merge, n={n} rot={rot} {dir:?}");
    }

    sort_circular_with_scratch(&mut v, &mut scratch, dir);
    assert_eq!(v, expect, "circular merge, n={n} rot={rot} {dir:?}");
}

macro_rules! oracle_suite {
    ($mod_name:ident, $ty:ty) => {
        mod $mod_name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(48))]

                #[test]
                fn full_sort_matches_oracle(
                    v in proptest::collection::vec(any::<$ty>(), 0..300),
                    descending in any::<bool>(),
                ) {
                    sort_oracle(v, descending);
                }

                #[test]
                fn bitonic_merge_matches_oracle(
                    v in proptest::collection::vec(any::<$ty>(), 0..300),
                    rot in any::<usize>(),
                    descending in any::<bool>(),
                ) {
                    merge_oracle(v, rot, descending);
                }
            }

            #[test]
            fn adversarial_lengths_and_values() {
                for n in [0usize, 1, 2, 3, 5, 31, 33, 255, 257] {
                    for descending in [false, true] {
                        // All-equal saturated keys: every compare-exchange
                        // ties, padding picks the same extreme.
                        sort_oracle(vec![<$ty>::MAX; n], descending);
                        sort_oracle(vec![<$ty>::MIN; n], descending);
                        merge_oracle(vec![<$ty>::MAX; n], n / 2, descending);
                        // A deterministic spread including both extremes.
                        let spread: Vec<$ty> = (0..n)
                            .map(|i| {
                                if i % 3 == 0 {
                                    <$ty>::MAX
                                } else if i % 3 == 1 {
                                    <$ty>::MIN
                                } else {
                                    <$ty>::MAX / 2
                                }
                            })
                            .collect();
                        sort_oracle(spread.clone(), descending);
                        merge_oracle(spread, 1, descending);
                    }
                }
            }
        }
    };
}

oracle_suite!(u16_keys, u16);
oracle_suite!(u32_keys, u32);
oracle_suite!(u64_keys, u64);
oracle_suite!(u128_keys, u128);
oracle_suite!(i32_keys, i32);
oracle_suite!(i64_keys, i64);

// ---------------------------------------------------------------------------
// Comparator-sequence purity

thread_local! {
    static COMPARES: Cell<u64> = const { Cell::new(0) };
}

/// A key whose every comparison bumps a thread-local counter, exposing
/// the comparator sequence length of the kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Counted(u64);

impl PartialOrd for Counted {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Counted {
    fn cmp(&self, other: &Self) -> Ordering {
        COMPARES.with(|c| c.set(c.get() + 1));
        self.0.cmp(&other.0)
    }
}

fn compares_during(f: impl FnOnce()) -> u64 {
    COMPARES.with(|c| c.set(0));
    f();
    COMPARES.with(|c| c.get())
}

fn counted_keys(n: usize, seed: u64) -> Vec<Counted> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Counted(x >> 16)
        })
        .collect()
}

#[test]
fn sort_network_compare_count_is_pure() {
    for lg in 0..=9u32 {
        let n = 1usize << lg;
        for dir in [Direction::Ascending, Direction::Descending] {
            for seed in [1u64, 99, 12345] {
                let mut v = counted_keys(n, seed);
                let count = compares_during(|| bitonic_sort_iterative(&mut v, dir));
                assert_eq!(
                    count,
                    sort_ce_count(n),
                    "n={n} {dir:?} seed={seed}: data leaked into the comparator sequence"
                );
            }
        }
    }
}

#[test]
fn merge_network_compare_count_is_pure() {
    for lg in 1..=10u32 {
        let n = 1usize << lg;
        for dir in [Direction::Ascending, Direction::Descending] {
            for seed in [2u64, 77] {
                // Any input is fine for counting: the sequence of compared
                // addresses must not depend on the values at all.
                let mut v = counted_keys(n, seed);
                let count = compares_during(|| bitonic_merge_iterative(&mut v, dir));
                assert_eq!(count, merge_ce_count(n), "n={n} {dir:?} seed={seed}");
            }
        }
    }
}

#[test]
fn padded_sort_compare_count_is_pure() {
    // Non-power-of-two lengths add a pad-element scan (n − 1 compares)
    // before the network on ⌈n⌉₂ keys; still a pure function of n.
    for n in [3usize, 5, 100, 257] {
        for dir in [Direction::Ascending, Direction::Descending] {
            let expect = (n as u64 - 1) + sort_ce_count(n.next_power_of_two());
            for seed in [3u64, 41, 5000] {
                let mut v = counted_keys(n, seed);
                let mut scratch = Vec::new();
                let count =
                    compares_during(|| bitonic_sort_iterative_any(&mut v, &mut scratch, dir));
                assert_eq!(count, expect, "n={n} {dir:?} seed={seed}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatch semantics

/// Force override and table boundaries, in one test because both read the
/// process-global dispatch state (concurrent oracle tests stay correct
/// under any force, but only this test asserts *which* kernel is picked).
#[test]
fn force_overrides_table_then_auto_restores_boundaries() {
    set_force(ForceKernel::Bitonic);
    assert_eq!(select_sort_kernel::<u64>(1 << 20), Kernel::BitonicNetwork);
    assert_eq!(select_merge_kernel::<u64>(1 << 20), Kernel::NetworkMerge);
    // The comparator network's power-of-two precondition outranks a force.
    assert_eq!(select_merge_kernel::<u64>(100), Kernel::CircularMerge);

    set_force(ForceKernel::Radix);
    assert_eq!(select_sort_kernel::<u64>(2), Kernel::Radix);
    assert_eq!(select_merge_kernel::<u64>(4), Kernel::CircularMerge);

    set_force(ForceKernel::Auto);
    let table = dispatch::current();
    let max = table.sort_bitonic_max_lg[dispatch::width_class::<u64>()];
    assert_eq!(
        select_sort_kernel::<u64>(1 << max),
        Kernel::BitonicNetwork,
        "at the threshold the network must be chosen"
    );
    assert_eq!(
        select_sort_kernel::<u64>(1 << (max + 1)),
        Kernel::Radix,
        "one class above the threshold radix must be chosen"
    );
    let mmax = table.merge_network_max_lg[dispatch::width_class::<u64>()];
    assert_eq!(select_merge_kernel::<u64>(1 << mmax), Kernel::NetworkMerge);
    assert_eq!(
        select_merge_kernel::<u64>(1 << (mmax + 1)),
        Kernel::CircularMerge
    );
}
