//! Tracing invariants: the span timelines are not a parallel bookkeeping
//! system that can drift from the stopwatch totals — they reuse the same
//! clock reads, so per-rank span-duration sums must equal the CommStats
//! phase totals *exactly*, and disabled tracing must record nothing.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort_traced, Algorithm};
use bitonic_core::local::LocalStrategy;
use obs::{rank_phase_totals, step_breakdowns, TraceConfig, TracePhase};
use proptest::prelude::*;
use spmd::{MessageMode, Phase};

const ALGOS: [Algorithm; 4] = [
    Algorithm::Smart,
    Algorithm::SmartFused,
    Algorithm::CyclicBlocked,
    Algorithm::BlockedMerge,
];

/// Per-rank, per-phase: the sum of span durations equals the stopwatch
/// total to the nanosecond (both sides are differences of the *same*
/// `Instant` reads; zero-length spans are dropped but add zero).
fn assert_spans_match_stats(algo: Algorithm, mode: MessageMode, p: usize, n_per_rank: usize) {
    let keys = uniform_keys(n_per_rank * p, 11);
    let run = run_parallel_sort_traced(
        &keys,
        p,
        mode,
        algo,
        LocalStrategy::Merges,
        TraceConfig::on(),
    );
    for rank in &run.ranks {
        let totals = rank_phase_totals(&rank.trace);
        for phase in [
            Phase::Compute,
            Phase::Pack,
            Phase::Transfer,
            Phase::Unpack,
            Phase::Barrier,
        ] {
            let stopwatch_ns = rank.stats.time(phase).as_nanos() as u64;
            let span_ns = totals.ns[TracePhase::from(phase).index()];
            assert_eq!(
                span_ns, stopwatch_ns,
                "{algo:?}/{mode:?} rank {}: {phase:?} spans sum to {span_ns}ns, \
                 stopwatch says {stopwatch_ns}ns",
                rank.trace.rank
            );
        }
        assert_eq!(rank.trace.dropped, 0, "default ring holds a sort's events");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn span_sums_equal_commstats_phase_totals(
        algo_i in 0usize..4,
        mode_i in 0usize..2,
        lg_p in 1u32..4,
        lg_n in 6u32..9,
    ) {
        let mode = if mode_i == 0 { MessageMode::Long } else { MessageMode::Short };
        assert_spans_match_stats(ALGOS[algo_i], mode, 1 << lg_p, 1 << lg_n);
    }
}

/// Counter events mirror CommStats remap records one-to-one, per rank.
#[test]
fn counter_events_mirror_remap_records() {
    for algo in ALGOS {
        let keys = uniform_keys(512 * 8, 17);
        let run = run_parallel_sort_traced(
            &keys,
            8,
            MessageMode::Long,
            algo,
            LocalStrategy::Merges,
            TraceConfig::on(),
        );
        for rank in &run.ranks {
            let counters: Vec<_> = rank.trace.counters().collect();
            assert_eq!(counters.len(), rank.stats.remaps.len(), "{algo:?}");
            for (c, r) in counters.iter().zip(&rank.stats.remaps) {
                assert_eq!(c.counters.elements_sent, r.elements_sent, "{algo:?}");
                assert_eq!(c.counters.messages_sent, r.messages_sent, "{algo:?}");
                assert_eq!(
                    c.counters.elements_received, r.elements_received,
                    "{algo:?}"
                );
                assert_eq!(c.counters.elements_kept, r.elements_kept, "{algo:?}");
            }
        }
        // The machine-wide view agrees too: every counted breakdown row
        // matches the critical-path stats (checked field-wise).
        let traces = spmd::traces_of(&run.ranks);
        let counted = step_breakdowns(&traces)
            .into_iter()
            .filter(|r| r.has_counters)
            .count();
        let crit = spmd::runtime::critical_path_stats(&run.ranks);
        assert_eq!(counted as u64, crit.remap_count(), "{algo:?}");
    }
}

/// With tracing off (the default), the sink records nothing at all —
/// no spans, no counters, no drops. This is the "free when disabled"
/// half of the overhead claim.
#[test]
fn disabled_tracing_records_zero_events() {
    for algo in ALGOS {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let keys = uniform_keys(256 * 4, 23);
            let run = run_parallel_sort_traced(
                &keys,
                4,
                mode,
                algo,
                LocalStrategy::Merges,
                TraceConfig::off(),
            );
            for rank in &run.ranks {
                assert!(rank.trace.events.is_empty(), "{algo:?}/{mode:?}");
                assert_eq!(rank.trace.dropped, 0, "{algo:?}/{mode:?}");
                // The stats pipeline is unaffected by the sink being off.
                assert!(rank.stats.remap_count() > 0, "{algo:?}/{mode:?}");
            }
        }
    }
}

/// A deliberately tiny ring drops oldest events and says how many.
#[test]
fn tiny_ring_reports_drops() {
    let keys = uniform_keys(512 * 4, 29);
    let run = run_parallel_sort_traced(
        &keys,
        4,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
        TraceConfig::with_capacity(4),
    );
    for rank in &run.ranks {
        assert_eq!(rank.trace.events.len(), 4, "ring stays at capacity");
        assert!(rank.trace.dropped > 0, "a sort overflows a 4-slot ring");
    }
}
