//! Cross-crate integration: the distributed execution (core + spmd) must
//! track the flat sorting-network execution (network crate) state for
//! state, and the analytic metrics (logp) must match live counters.

use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::{run_phase, LocalStrategy};
use bitonic_core::remap::RemapPlan;
use bitonic_core::schedule::SmartSchedule;
use bitonic_network::network::StepId;
use bitonic_network::BitonicNetwork;
use spmd::MessageMode;

fn lcg_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        })
        .collect()
}

/// Run the smart algorithm sequentially, but after every phase compare the
/// distributed state (mapped back through the layouts) against the flat
/// array produced by executing the same network steps directly.
#[test]
fn distributed_execution_tracks_flat_network() {
    for (n_total, p, seed) in [
        (256usize, 16usize, 1u64),
        (512, 8, 2),
        (64, 4, 3),
        (128, 32, 4),
    ] {
        let n = n_total / p;
        let keys = lcg_keys(n_total, seed);
        let net = BitonicNetwork::new(n_total);
        let sched = SmartSchedule::new(n_total, p);
        let blocked = sched.blocked_layout();

        // Flat view: run the first lg n stages directly.
        let mut flat = keys.clone();
        let lg_n = sched.lg_n();
        for stage in 1..=lg_n {
            net.apply_stage(&mut flat, stage);
        }

        // Distributed view: per-processor arrays, initial local sort.
        let mut dist: Vec<Vec<u64>> = (0..p)
            .map(|me| keys[me * n..(me + 1) * n].to_vec())
            .collect();
        let mut scratch = Vec::new();
        for (me, d) in dist.iter_mut().enumerate() {
            d.sort_unstable();
            if bitonic_core::local::initial_direction(&blocked, me)
                == bitonic_network::Direction::Descending
            {
                d.reverse();
            }
        }
        // Compare initial states through the blocked layout.
        for (me, d) in dist.iter().enumerate() {
            for (x, v) in d.iter().enumerate() {
                assert_eq!(*v, flat[blocked.abs_at(me, x)], "initial state diverged");
            }
        }

        let mut prev = blocked;
        for phase in &sched.phases {
            // Advance the flat view by the phase's steps.
            for &StepId { stage, step } in &phase.steps {
                net.apply_step(&mut flat, StepId { stage, step });
            }
            // Advance the distributed view: remap + local phase.
            let plans: Vec<RemapPlan> = (0..p)
                .map(|me| RemapPlan::new(&prev, &phase.layout, me))
                .collect();
            RemapPlan::apply_sequential(&plans, &mut dist);
            for (me, d) in dist.iter_mut().enumerate() {
                run_phase(LocalStrategy::Merges, phase, me, d, &mut scratch);
            }
            // Compare through the end-of-phase layout.
            for (me, d) in dist.iter().enumerate() {
                for (x, v) in d.iter().enumerate() {
                    assert_eq!(
                        *v,
                        flat[phase.layout_after.abs_at(me, x)],
                        "divergence at {:?} (N={n_total}, P={p}, proc {me}, slot {x})",
                        phase.info
                    );
                }
            }
            prev = phase.layout_after.clone();
        }
        // Both views must now be globally sorted.
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }
}

/// The live machine's counters equal both the layout-derived profiles and
/// the arithmetic walker's closed forms, for all three strategies.
#[test]
fn live_counters_equal_analytics_everywhere() {
    for (n_total, p) in [(1usize << 9, 4usize), (1 << 10, 16), (1 << 8, 8)] {
        let n = n_total / p;
        let keys: Vec<u32> = lcg_keys(n_total, 7).iter().map(|&k| k as u32).collect();
        let run = run_parallel_sort(
            &keys,
            p,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let analytic = bitonic_core::complexity::smart_metrics(n_total, p);
        let walker = logp::metrics::smart_exact(n, p);
        assert_eq!(analytic, walker);
        for rank in &run.ranks {
            assert_eq!(rank.stats.remap_count(), analytic.remaps);
            assert_eq!(rank.stats.elements_sent, analytic.volume);
            assert_eq!(rank.stats.messages_sent, analytic.messages);
        }
    }
}

/// The zero-one principle applied to the *distributed* pipeline: running
/// the smart algorithm (sequentially, via the same plans and phases the
/// machine uses) over every 0/1 input of size N proves it sorts every
/// input of that size — total correctness, not sampling.
#[test]
fn distributed_zero_one_principle() {
    for (n_total, p) in [(16usize, 4usize), (16, 8), (8, 2), (8, 4)] {
        let n = n_total / p;
        let sched = SmartSchedule::new(n_total, p);
        let blocked = sched.blocked_layout();
        // Precompute plans once per machine shape.
        let mut plans: Vec<Vec<RemapPlan>> = Vec::new();
        let mut prev = blocked.clone();
        for phase in &sched.phases {
            plans.push(
                (0..p)
                    .map(|me| RemapPlan::new(&prev, &phase.layout, me))
                    .collect(),
            );
            prev = phase.layout_after.clone();
        }
        let mut scratch = Vec::new();
        for mask in 0u64..(1u64 << n_total) {
            let mut dist: Vec<Vec<u32>> = (0..p)
                .map(|me| {
                    (0..n)
                        .map(|x| ((mask >> (me * n + x)) & 1) as u32)
                        .collect()
                })
                .collect();
            for (me, d) in dist.iter_mut().enumerate() {
                d.sort_unstable();
                if bitonic_core::local::initial_direction(&blocked, me)
                    == bitonic_network::Direction::Descending
                {
                    d.reverse();
                }
            }
            for (phase, phase_plans) in sched.phases.iter().zip(&plans) {
                RemapPlan::apply_sequential(phase_plans, &mut dist);
                for (me, d) in dist.iter_mut().enumerate() {
                    run_phase(LocalStrategy::Merges, phase, me, d, &mut scratch);
                }
            }
            let flat: Vec<u32> = dist.concat();
            let ones = mask.count_ones() as usize;
            assert!(
                flat[..n_total - ones].iter().all(|&b| b == 0)
                    && flat[n_total - ones..].iter().all(|&b| b == 1),
                "N={n_total} P={p} mask={mask:b}: {flat:?}"
            );
        }
    }
}

/// Mixed-crate sanity: the local-sorts bitonic merge sort agrees with the
/// network-crate comparator merge on inputs produced by core's layouts.
#[test]
fn sorts_and_network_agree_through_core_layouts() {
    let sched = SmartSchedule::new(256, 16);
    let layout = &sched.phases[0].layout;
    // Build a bitonic sequence, view it through the layout's local window.
    let keys = lcg_keys(256, 9);
    for me in 0..16 {
        let mut local: Vec<u64> = (0..16).map(|x| keys[layout.abs_at(me, x)]).collect();
        let mut a = local.clone();
        local_sorts::sort_bitonic(&mut a, bitonic_network::Direction::Ascending);
        // Not necessarily bitonic input here — both routines must still
        // agree when it is; check only multiset equality otherwise.
        let mut b = local.clone();
        b.sort_unstable();
        local.sort_unstable();
        a.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a, local);
    }
}
