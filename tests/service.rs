//! Serving-layer guarantees: coalesced batches are indistinguishable
//! from independent sorts, the warm pool's plan cache reaches a perfect
//! steady-state hit rate, and a stalled batch fails alone.

use bitonic_core::tagged::{sorted_independently, TaggedBatch};
use bitonic_network::Direction;
use proptest::prelude::*;
use sort_service::{PoolStats, ServiceConfig, SortRequest, SortService, WarmPool};
use std::time::Duration;

/// A request mix for the coalescing property: small counts and sizes
/// (including n < P and empty), low-entropy keys (duplicates), and both
/// directions.
fn request_strategy() -> impl Strategy<Value = Vec<(Vec<u32>, Direction)>> {
    let request = (
        proptest::collection::vec(0u32..16, 0..40),
        any::<bool>().prop_map(|asc| {
            if asc {
                Direction::Ascending
            } else {
                Direction::Descending
            }
        }),
    );
    proptest::collection::vec(request, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's correctness core: any mix of requests coalesced
    /// into one tagged batch splits back into exactly what each request
    /// would get from its own independent sort.
    #[test]
    fn coalesced_batches_equal_independent_sorts(requests in request_strategy()) {
        let mut cfg = ServiceConfig::new(4);
        cfg.batch_watchdog = Some(Duration::from_secs(20));
        let mut pool = WarmPool::new(&cfg);

        let mut batch = TaggedBatch::new();
        for (keys, dir) in &requests {
            batch.push(keys, *dir);
        }
        let (words, per_rank) = batch.padded_words(cfg.procs);
        let sorted = pool.run_batch(words, per_rank).expect("batch runs");
        let outputs = batch.split(&sorted);

        prop_assert_eq!(outputs.len(), requests.len());
        for (out, (keys, dir)) in outputs.iter().zip(&requests) {
            prop_assert_eq!(out, &sorted_independently(keys, *dir));
        }
    }
}

/// The satellite regression: once the pool has seen a batch shape, every
/// later batch of that shape must run at a 100% plan-cache hit rate.
#[test]
fn steady_state_plan_cache_hit_rate_is_100_percent() {
    let cfg = ServiceConfig::new(4);
    let mut pool = WarmPool::new(&cfg);
    let keys: Vec<u32> = (0..512u32).rev().collect();

    let run = |pool: &mut WarmPool| {
        let mut batch = TaggedBatch::new();
        batch.push(&keys, Direction::Ascending);
        let (words, per_rank) = batch.padded_words(cfg.procs);
        pool.run_batch(words, per_rank).expect("batch runs");
    };

    run(&mut pool);
    let cold: PoolStats = pool.stats();
    assert!(cold.plan_misses > 0, "the first batch computes its plans");

    for _ in 0..8 {
        run(&mut pool);
    }
    let warm = pool.stats();
    assert_eq!(
        warm.plan_misses, cold.plan_misses,
        "a warmed shape must never recompute a plan"
    );
    assert_eq!(warm.last_batch_plan_misses, 0);
    // The lifetime rate climbs toward 1 as warm batches accumulate.
    assert!(warm.plan_hit_rate() > cold.plan_hit_rate());
}

/// The containment satellite end to end: a batch whose job stalls a rank
/// past the watchdog fails *that batch* with a structured error; the
/// service sheds nothing, replaces the machine, and keeps serving.
#[test]
fn a_stalled_batch_fails_alone_and_the_service_keeps_serving() {
    let mut cfg = ServiceConfig::new(2);
    cfg.batch_watchdog = Some(Duration::from_millis(50));
    // Forbid coalescing across the poisoned request: flush immediately.
    cfg.max_wait = Duration::ZERO;
    let service = SortService::start(cfg);

    // A healthy request first proves the pool works.
    let ok = service
        .submit(SortRequest::ascending(vec![3, 1, 2]))
        .expect("admitted")
        .wait()
        .expect("sorted");
    assert_eq!(ok, vec![1, 2, 3]);

    // There is no public way to stall a rank through the service API (by
    // design), so poison a pool directly the same way a stalled rank
    // manifests: a job that breaks the machine mid-batch.
    let mut pool = WarmPool::new(&ServiceConfig {
        batch_watchdog: Some(Duration::from_millis(50)),
        ..ServiceConfig::new(2)
    });
    // per_rank = 3 is not a power of two: every rank's sort asserts, the
    // machine breaks, and run_batch reports a structured failure.
    let failure = pool.run_batch(vec![9u64; 6], 3).expect_err("batch fails");
    assert!(!failure.to_string().is_empty());
    let stats = pool.stats();
    assert_eq!((stats.batches_failed, stats.machines_rebuilt), (1, 1));

    // The replacement machine (and the untouched service) still serve.
    let mut batch = TaggedBatch::new();
    batch.push(&[5, 4, 6, 2], Direction::Descending);
    let (words, per_rank) = batch.padded_words(2);
    let sorted = pool.run_batch(words, per_rank).expect("pool recovered");
    assert_eq!(batch.split(&sorted).remove(0), vec![6, 5, 4, 2]);

    let still = service
        .submit(SortRequest::new(vec![9, 7, 8], Direction::Descending))
        .expect("admitted")
        .wait()
        .expect("sorted");
    assert_eq!(still, vec![9, 8, 7]);
    let report = service.shutdown();
    assert_eq!(report.stats.shed, 0);
    assert_eq!(report.stats.completed, 2);
}
