//! Quickstart: sort a million keys on a virtual 16-processor machine with
//! the smart-layout bitonic sort and inspect the communication counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use spmd::MessageMode;

fn main() {
    let total = 1 << 20;
    let procs = 16;
    println!("Sorting {total} uniform 31-bit keys on {procs} virtual processors…");

    // The thesis's workload: uniformly distributed keys in [0, 2^31).
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let keys: Vec<u32> = (0..total)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) & 0x7FFF_FFFF) as u32
        })
        .collect();

    let run = run_parallel_sort(
        &keys,
        procs,
        MessageMode::Long,
        Algorithm::Smart,
        LocalStrategy::Merges,
    );

    assert!(
        run.output.windows(2).all(|w| w[0] <= w[1]),
        "output must be sorted"
    );
    println!("sorted ✓ in {:.3}s wall-clock", run.elapsed.as_secs_f64());

    let stats = &run.ranks[0].stats;
    let n = total / procs;
    println!("\nPer-processor communication (every rank is identical — Lemma 4):");
    println!(
        "  remaps (R)        : {}  (cyclic-blocked would need {})",
        stats.remap_count(),
        2 * procs.trailing_zeros()
    );
    println!(
        "  volume (V)        : {} elements = {:.2}·n  (cyclic-blocked: {:.2}·n)",
        stats.elements_sent,
        stats.elements_sent as f64 / n as f64,
        logp::metrics::cyclic_blocked(n, procs).volume as f64 / n as f64
    );
    println!("  messages (M)      : {}", stats.messages_sent);
    println!("\nPer-remap profile (bits changed → group structure):");
    for (i, r) in stats.remaps.iter().enumerate() {
        println!(
            "  remap {i}: sent {:>6}  kept {:>6}  messages {:>3}  group {:>3}",
            r.elements_sent, r.elements_kept, r.messages_sent, r.group_size
        );
    }
}
