//! Layout explorer: prints the smart remap schedule of Figure 3.3 and the
//! absolute-address bit patterns of Figure 3.4, for any (N, P).
//!
//! ```text
//! cargo run --example layout_explorer -- 256 16
//! ```

use bitonic_core::masks::MaskInfo;
use bitonic_core::schedule::SmartSchedule;
use bitonic_core::smart::RemapKind;
use bitonic_network::render;
use bitonic_network::BitonicNetwork;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_total: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(256);
    let p: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);

    let sched = SmartSchedule::new(n_total, p);
    let n = n_total / p;
    println!("Smart remap schedule for N = {n_total}, P = {p} (n = {n}):");
    println!(
        "  lg n = {}, lg P = {}; R_smart = {} remaps",
        sched.lg_n(),
        sched.lg_p(),
        sched.remap_count()
    );
    println!("  (cyclic-blocked would use {} remaps)\n", 2 * sched.lg_p());

    let mut prev = sched.blocked_layout();
    println!("start: blocked layout   {}", prev.pattern_string());
    for (i, phase) in sched.phases.iter().enumerate() {
        let info = MaskInfo::new(&prev, &phase.layout);
        let kind = match phase.params.kind {
            RemapKind::Inside => "inside ",
            RemapKind::Crossing => "crossing",
            RemapKind::Last => "last    ",
        };
        println!(
            "\nremap {i}: {kind} at stage {:>2}, step {:>2}   (k,s,a,b,t) = ({},{},{},{},{})",
            phase.info.stage,
            phase.info.step,
            phase.params.k,
            phase.params.s,
            phase.params.a,
            phase.params.b,
            phase.params.t
        );
        println!("  pattern: {}", phase.layout.pattern_string());
        println!(
            "  bits changed: {}   keeps n/2^{} = {} of {} keys   group of {} procs",
            info.bits_changed, info.bits_changed, info.kept_per_proc, n, info.group_size
        );
        println!("  pack mask: {}", info.pack_mask_string());
        println!(
            "  local steps: {:?}",
            phase
                .steps
                .iter()
                .map(|s| (s.stage, s.step))
                .collect::<Vec<_>>()
        );
        prev = phase.layout_after.clone();
    }
    println!("\nend: blocked layout, globally sorted.");

    if n_total <= 32 {
        // Figures 2.4/2.5: the network itself, with remote arcs (under the
        // starting blocked layout) drawn with '=' instead of '-'.
        println!("\nNetwork (o = ascending, x = descending, '=' = remote under blocked):\n");
        let net = BitonicNetwork::new(n_total);
        let n_local = n_total / p;
        print!("{}", render::ascii(&net, &|r| r / n_local));
        let counts = render::classify_steps(&net, &|r| r / n_local);
        let remote_steps = counts.iter().filter(|&&(_, _, rem)| rem > 0).count();
        println!(
            "\n{remote_steps} of {} steps need communication under a fixed blocked layout.",
            counts.len()
        );
    } else {
        println!("\n(run with N <= 32 to draw the network, e.g. `-- 16 4`)");
    }
}
