//! Race every parallel sort in the workspace on the same input and report
//! wall-clock, counters and correctness — the Section 5.5 comparison, live.
//!
//! ```text
//! cargo run --release --example sort_race -- [total_keys] [procs]
//! ```

use baselines::{run_baseline, Baseline};
use bitonic_bench::workloads::{keys, Distribution};
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use spmd::MessageMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let total: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1 << 18);
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    assert!(total.is_power_of_two() && procs.is_power_of_two());

    for dist in [Distribution::Uniform31, Distribution::LowEntropy] {
        println!(
            "\n=== {} keys, {} procs, {} input ===",
            total,
            procs,
            dist.name()
        );
        println!(
            "{:<18} {:>10} {:>6} {:>12} {:>10} {:>7}",
            "algorithm", "wall (ms)", "R", "V (elems)", "M", "sorted"
        );
        let input = keys(total, dist, 99);
        let mut expect = input.clone();
        expect.sort_unstable();

        let report =
            |name: &str, output: &[u32], elapsed: std::time::Duration, stats: &spmd::CommStats| {
                println!(
                    "{:<18} {:>10.2} {:>6} {:>12} {:>10} {:>7}",
                    name,
                    elapsed.as_secs_f64() * 1e3,
                    stats.remap_count(),
                    stats.elements_sent,
                    stats.messages_sent,
                    output == expect
                );
            };

        for algo in [
            Algorithm::Smart,
            Algorithm::SmartFused,
            Algorithm::CyclicBlocked,
            Algorithm::BlockedMerge,
        ] {
            let run = run_parallel_sort(
                &input,
                procs,
                MessageMode::Long,
                algo,
                LocalStrategy::Merges,
            );
            report(algo.name(), &run.output, run.elapsed, &run.ranks[0].stats);
        }
        let mut baselines = vec![("Radix", Baseline::Radix), ("Sample", Baseline::Sample)];
        if total / procs >= 2 * (procs - 1) * (procs - 1) {
            baselines.push(("Column", Baseline::Column));
        }
        for (name, which) in baselines {
            let run = run_baseline(&input, procs, MessageMode::Long, which);
            report(name, &run.output, run.elapsed, &run.ranks[0].stats);
        }
    }
}
