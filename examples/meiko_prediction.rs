//! Reproduce the Chapter 5 headline tables from the LogGP model alone —
//! what the thesis's own Section 3.4 analysis predicts for its Meiko CS-2.
//!
//! ```text
//! cargo run --example meiko_prediction
//! ```

use logp::predict::{predict, CostModel, Messages, StrategyKind};
use logp::LogGpParams;

fn main() {
    let model = CostModel::meiko_cs2();
    println!("LogGP prediction, Meiko CS-2 calibration (see logp::params)\n");

    println!("Execution time per key (µs) on 32 processors (cf. Table 5.1):");
    println!(
        "{:>14} {:>14} {:>15} {:>8}",
        "keys/proc", "Blocked-Merge", "Cyclic-Blocked", "Smart"
    );
    let params = LogGpParams::meiko_cs2(32);
    for lgn in [17u32, 18, 19, 20] {
        let n = 1usize << lgn;
        let us =
            |kind| predict(kind, n, 32, &params, &model, Messages::Long { fused: true }).total_us();
        println!(
            "{:>13}K {:>14.2} {:>15.2} {:>8.2}",
            n / 1024,
            us(StrategyKind::BlockedMerge),
            us(StrategyKind::CyclicBlocked),
            us(StrategyKind::Smart)
        );
    }

    println!("\nCommunication µs/key, 16 processors, short vs long messages (cf. Table 5.3):");
    let params16 = LogGpParams::meiko_cs2(16);
    let n = 1usize << 18;
    let short = predict(
        StrategyKind::Smart,
        n,
        16,
        &params16,
        &model,
        Messages::Short,
    );
    let long = predict(
        StrategyKind::Smart,
        n,
        16,
        &params16,
        &model,
        Messages::Long { fused: false },
    );
    println!("  short messages: {:>6.2}", short.comm_us());
    println!(
        "  long messages : {:>6.2}  (pack {:.2} + transfer {:.2} + unpack {:.2})",
        long.comm_us(),
        long.pack_us,
        long.transfer_us,
        long.unpack_us
    );
    println!(
        "  speedup from long messages: {:.1}x",
        short.comm_us() / long.comm_us()
    );

    println!("\nSpeedup sorting 1M keys on 2..32 processors (cf. Fig 5.3):");
    let total = 1usize << 20;
    let mut base = None;
    for p in [2usize, 4, 8, 16, 32] {
        let n = total / p;
        let pr = LogGpParams::meiko_cs2(p);
        let t = predict(
            StrategyKind::Smart,
            n,
            p,
            &pr,
            &model,
            Messages::Long { fused: true },
        )
        .total_seconds(n);
        let b = *base.get_or_insert(t * 2.0);
        println!("  P = {p:>2}: {t:>7.3}s   speedup {:>5.2}", b / t);
    }
}
