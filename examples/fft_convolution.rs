//! The future-work chapter, running: multiply two big polynomials exactly
//! with a *distributed* number-theoretic transform built on the thesis's
//! own layout/remap machinery.
//!
//! ```text
//! cargo run --release --example fft_convolution -- [lg_size] [procs]
//! ```

use butterfly_fft::field::{mul, P};
use butterfly_fft::{ntt, parallel_intt, parallel_ntt};
use spmd::{run_spmd, MessageMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let lg: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(16);
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let n = 1usize << lg;
    println!("Distributed NTT convolution: N = 2^{lg} coefficients on {procs} ranks");

    // Two pseudo-random polynomials of degree N/2 − 1.
    let mut x: u64 = 0xA24BAED4963EE407;
    let mut poly = |len: usize| -> Vec<u64> {
        let mut v: Vec<u64> = (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x % P
            })
            .collect();
        v.resize(n, 0);
        v
    };
    let a = poly(n / 2);
    let b = poly(n / 2);

    let t0 = std::time::Instant::now();
    let transform = |data: &[u64], inverse: bool| -> Vec<u64> {
        let per = data.len() / procs;
        let data = data.to_vec();
        run_spmd::<u64, _, _>(procs, MessageMode::Long, move |comm| {
            let me = comm.rank();
            let local = data[me * per..(me + 1) * per].to_vec();
            if inverse {
                parallel_intt(comm, local)
            } else {
                parallel_ntt(comm, local)
            }
        })
        .into_iter()
        .flat_map(|r| r.output)
        .collect()
    };

    let fa = transform(&a, false);
    let fb = transform(&b, false);
    let prod: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| mul(x, y)).collect();
    let c = transform(&prod, true);
    println!(
        "3 distributed transforms (3 remaps each) in {:.3}s",
        t0.elapsed().as_secs_f64()
    );

    // Verify against the sequential pipeline.
    let mut sa = a.clone();
    let mut sb = b.clone();
    ntt(&mut sa);
    ntt(&mut sb);
    let mut sc: Vec<u64> = sa.iter().zip(&sb).map(|(&x, &y)| mul(x, y)).collect();
    butterfly_fft::intt(&mut sc);
    assert_eq!(c, sc, "distributed convolution must equal sequential");
    println!("verified against the sequential NTT ✓");
    println!("c[0..4] = {:?}", &c[..4.min(c.len())]);
}
