//! Algorithm 2: find the minimum of a bitonic sequence in `O(log n)` time.
//!
//! A bitonic sequence can be viewed circularly (Figure 4.6): it has one
//! ascending and one descending region, hence a unique minimum "valley" when
//! elements are distinct. The algorithm keeps a circular arc guaranteed to
//! contain the minimum, bounded by three splitters `l — m — r` with
//! `data[m] <= data[l]` and `data[m] <= data[r]`, and halves it per round by
//! probing the midpoints of the two sub-arcs (Figure 4.7).
//!
//! Per Lemma 8 the logarithmic bound requires distinct elements; whenever a
//! probe triple contains a tie the search falls back to a linear scan of the
//! remaining arc, exactly as prescribed at the end of Section 4.2.

/// How the minimum was located, for diagnostics and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinSearchStats {
    /// Number of splitter-comparison rounds executed.
    pub rounds: u32,
    /// Number of element comparisons performed.
    pub comparisons: usize,
    /// Whether duplicate splitters forced the linear fallback.
    pub fell_back_to_linear: bool,
}

/// Index of a minimum element of the bitonic sequence `data`.
///
/// `O(log n)` for duplicate-free inputs; degrades gracefully to `O(n)` when
/// ties among probed splitters are encountered.
///
/// ```
/// use local_sorts::bitonic_min_index;
/// let v = [6, 8, 9, 7, 5, 3, 1, 2, 4]; // valley at index 6
/// assert_eq!(bitonic_min_index(&v), 6);
/// ```
///
/// # Panics
/// Panics if `data` is empty. The result is unspecified (but still the index
/// of *some* element) if `data` is not bitonic.
#[must_use]
pub fn bitonic_min_index<T: Ord>(data: &[T]) -> usize {
    bitonic_min_index_with_stats(data).0
}

/// As [`bitonic_min_index`], additionally reporting search statistics.
#[must_use]
pub fn bitonic_min_index_with_stats<T: Ord>(data: &[T]) -> (usize, MinSearchStats) {
    assert!(
        !data.is_empty(),
        "cannot take the minimum of an empty sequence"
    );
    let n = data.len();
    let mut stats = MinSearchStats {
        rounds: 0,
        comparisons: 0,
        fell_back_to_linear: false,
    };
    if n <= 3 {
        stats.comparisons = n.saturating_sub(1);
        return (min_of_arc(data, 0, n), stats);
    }

    // Circular arc arithmetic: the arc from `a` to `b` going forward.
    let arc_len = |a: usize, b: usize| -> usize { (b + n - a) % n };
    let mid = |a: usize, b: usize| -> usize { (a + arc_len(a, b) / 2) % n };

    // Step 1: three splitters at thirds of the circle; relabel so `m` is the
    // strict minimum of the three. The true minimum then lies on the arc
    // l -> m -> r (the arc avoiding `m` cannot contain it).
    let (s0, s1, s2) = (0usize, n / 3, 2 * n / 3);
    stats.comparisons += 2;
    let (mut l, mut m, mut r) = match strict_argmin3(data, s0, s1, s2) {
        Some(0) => (s2, s0, s1),
        Some(1) => (s0, s1, s2),
        Some(2) => (s1, s2, s0),
        Some(_) => unreachable!("strict_argmin3 returns indices 0..3"),
        None => {
            stats.fell_back_to_linear = true;
            return (min_of_arc(data, 0, n), stats);
        }
    };

    // Step 2, iterated: probe midpoints x of (l, m) and y of (m, r).
    while arc_len(l, r) > 3 {
        stats.rounds += 1;
        let x = mid(l, m);
        let y = mid(m, r);
        // Degenerate sub-arc (x == m or y == m) still shrinks below.
        stats.comparisons += 2;
        match strict_argmin3(data, x, m, y) {
            Some(0) => {
                // min = x: restrict to [l, x] and [x, m].
                r = m;
                m = x;
            }
            Some(1) => {
                // min = m: restrict to [x, m] and [m, y].
                l = x;
                r = y;
            }
            Some(2) => {
                // min = y: restrict to [m, y] and [y, r].
                l = m;
                m = y;
            }
            Some(_) => unreachable!("strict_argmin3 returns indices 0..3"),
            None => {
                // Two equal minimum splitters: sequential search on the
                // remaining interval (Section 4.2).
                stats.fell_back_to_linear = true;
                let len = arc_len(l, r) + 1;
                stats.comparisons += len.saturating_sub(1);
                return (min_of_arc(data, l, len), stats);
            }
        }
    }
    let len = arc_len(l, r) + 1;
    stats.comparisons += len.saturating_sub(1);
    (min_of_arc(data, l, len), stats)
}

/// Index (into `data`) of the minimum over the circular arc of `len`
/// elements starting at `start`.
fn min_of_arc<T: Ord>(data: &[T], start: usize, len: usize) -> usize {
    let n = data.len();
    let mut best = start % n;
    for off in 1..len {
        let i = (start + off) % n;
        if data[i] < data[best] {
            best = i;
        }
    }
    best
}

/// Which of the three indices holds the strict minimum, or `None` when the
/// minimum value is attained by two or more of them.
fn strict_argmin3<T: Ord>(data: &[T], a: usize, b: usize, c: usize) -> Option<usize> {
    use std::cmp::Ordering::*;
    let (va, vb, vc) = (&data[a], &data[b], &data[c]);
    match (va.cmp(vb), va.cmp(vc), vb.cmp(vc)) {
        (Less, Less, _) => Some(0),
        (Greater, _, Less) => Some(1),
        (_, Greater, Greater) => Some(2),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{generate, min_index_linear, rotate_left};
    use proptest::prelude::*;

    fn check(data: &[u64]) {
        let expect = data[min_index_linear(data)];
        let (idx, _) = bitonic_min_index_with_stats(data);
        assert_eq!(data[idx], expect, "wrong min for {data:?}");
    }

    #[test]
    fn all_rotations_of_distinct_mountains() {
        for len in [4usize, 5, 8, 16, 33, 64, 100] {
            for peak in [0, 1, len / 2, len - 1] {
                let m = generate::distinct_mountain(len, peak);
                for shift in 0..len {
                    let mut r = m.clone();
                    rotate_left(&mut r, shift);
                    check(&r);
                }
            }
        }
    }

    #[test]
    fn logarithmic_on_distinct_elements() {
        // For a million distinct elements, the search must use O(log n)
        // comparisons, not O(n).
        let m = generate::rotated((0..1_000_000).collect(), 700_000, 123_456);
        let (idx, stats) = bitonic_min_index_with_stats(&m);
        assert_eq!(m[idx], 0);
        assert!(!stats.fell_back_to_linear);
        assert!(
            stats.comparisons < 200,
            "expected O(log n) comparisons, got {}",
            stats.comparisons
        );
    }

    #[test]
    fn duplicate_heavy_sequences_fall_back_correctly() {
        check(&[5, 5, 5, 5, 5]);
        check(&[1, 1, 2, 1]);
        check(&[3, 3, 3, 1, 3]);
        check(&[0, 0, 5, 0]);
        check(&[5, 0, 5, 6, 7, 8, 8, 8, 8, 8, 8, 8]);
        check(&[2, 1, 2, 3, 3, 2]);
    }

    #[test]
    fn tiny_sequences() {
        check(&[7]);
        check(&[7, 3]);
        check(&[3, 7]);
        check(&[2, 9, 4]);
    }

    #[test]
    fn sorted_and_reverse_sorted() {
        check(&(0..100).collect::<Vec<_>>());
        check(&(0..100).rev().collect::<Vec<_>>());
    }

    #[test]
    fn stats_report_rounds() {
        let m = generate::distinct_mountain(1024, 600);
        let (_, stats) = bitonic_min_index_with_stats(&m);
        assert!(stats.rounds >= 1);
        assert!(
            stats.rounds <= 20,
            "1024 elements need ~10 rounds, got {}",
            stats.rounds
        );
    }

    proptest! {
        #[test]
        fn random_rotated_mountains(
            len in 1usize..200,
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated((0..len as u64).collect(), peak, shift);
            check(&m);
        }

        #[test]
        fn random_mountains_with_duplicates(
            values in proptest::collection::vec(0u64..8, 1..80),
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let len = values.len();
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated(values, peak, shift);
            prop_assert!(bitonic_network::is_bitonic(&m));
            check(&m);
        }
    }
}
