//! The `O(n)` bitonic merge sort of Section 4.2.
//!
//! "For a bitonic input sequence, the fastest way to sort it is to use a
//! merge sort instead of simulating the last stage of a bitonic sorting
//! network. This consists of two phases: first the minimum element of the
//! bitonic sequence is found, and second we use mergesort to merge the keys
//! to the left and right of the minimum."
//!
//! Viewed circularly, the keys starting at the minimum and walking forward
//! form one ascending run, and the keys walking *backward* from the minimum
//! form the other; a single two-pointer circular merge produces the sorted
//! output in `n − 1` comparisons (Lemma 9: `O(n)` vs `O(n log n)` for the
//! comparator network).

use crate::bitonic_min::bitonic_min_index;
use bitonic_network::Direction;

/// Sort the bitonic sequence `data` in place, in direction `dir`.
///
/// Allocates a scratch buffer; use [`sort_bitonic_with_scratch`] in hot
/// loops. The result is unspecified if `data` is not bitonic (use
/// [`bitonic_network::is_bitonic`] to validate in debug paths).
///
/// ```
/// use local_sorts::{sort_bitonic, Direction};
/// let mut v = vec![4, 7, 9, 6, 2, 1, 0, 3]; // bitonic (cyclic shift)
/// sort_bitonic(&mut v, Direction::Ascending);
/// assert_eq!(v, vec![0, 1, 2, 3, 4, 6, 7, 9]);
/// ```
pub fn sort_bitonic<T: Ord + Copy>(data: &mut [T], dir: Direction) {
    let mut scratch = Vec::new();
    sort_bitonic_with_scratch(data, &mut scratch, dir);
}

/// Sort the bitonic sequence `data` in place using a caller-provided
/// scratch buffer (cleared and refilled; capacity is reused).
pub fn sort_bitonic_with_scratch<T: Ord + Copy>(
    data: &mut [T],
    scratch: &mut Vec<T>,
    dir: Direction,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let start = bitonic_min_index(data);
    scratch.clear();
    scratch.reserve(n);
    merge_circular_into(data, start, scratch);
    match dir {
        Direction::Ascending => data.copy_from_slice(scratch),
        Direction::Descending => {
            for (slot, &v) in data.iter_mut().zip(scratch.iter().rev()) {
                *slot = v;
            }
        }
    }
}

/// Sort the bitonic sequence `src` into `out` (appended), ascending.
///
/// This is the allocation-free core used by the fused
/// sort-and-pack path of Section 4.3.
pub fn sort_bitonic_into<T: Ord + Copy>(src: &[T], out: &mut Vec<T>) {
    let n = src.len();
    if n == 0 {
        return;
    }
    let start = bitonic_min_index(src);
    merge_circular_into(src, start, out);
}

/// Two-pointer circular merge: `i` walks forward from the minimum through
/// the ascending region, `j` walks backward from the minimum through the
/// (reversed) descending region; both converge on the maximum.
fn merge_circular_into<T: Ord + Copy>(data: &[T], min_idx: usize, out: &mut Vec<T>) {
    let n = data.len();
    let before = out.len();
    let mut i = min_idx;
    let mut j = (min_idx + n - 1) % n;
    for _ in 0..n {
        if i == j {
            out.push(data[i]);
            break;
        }
        if data[i] <= data[j] {
            out.push(data[i]);
            i = (i + 1) % n;
        } else {
            out.push(data[j]);
            j = (j + n - 1) % n;
        }
    }
    debug_assert_eq!(out.len() - before, n, "merge must emit exactly n elements");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{generate, is_sorted, rotate_left};
    use bitonic_network::{bitonic_merge, is_bitonic};
    use proptest::prelude::*;

    fn check_both_directions(input: &[u64]) {
        assert!(is_bitonic(input), "precondition violated: {input:?}");
        for dir in [Direction::Ascending, Direction::Descending] {
            let mut v = input.to_vec();
            sort_bitonic(&mut v, dir);
            assert!(
                is_sorted(&v, dir),
                "not sorted {dir:?}: {v:?} from {input:?}"
            );
            let mut a = v.clone();
            let mut b = input.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "output is not a permutation of the input");
        }
    }

    #[test]
    fn rotations_of_mountains() {
        for len in [1usize, 2, 3, 8, 17, 64] {
            let m = generate::distinct_mountain(len, len / 2);
            for shift in 0..len {
                let mut r = m.clone();
                rotate_left(&mut r, shift);
                check_both_directions(&r);
            }
        }
    }

    #[test]
    fn duplicate_heavy_inputs() {
        check_both_directions(&[1, 1, 2, 1]);
        check_both_directions(&[5, 5, 5, 5]);
        check_both_directions(&[3, 3, 7, 7, 7, 3]);
        check_both_directions(&[0, 9, 0]);
    }

    #[test]
    fn agrees_with_network_bitonic_merge() {
        // The O(n) merge sort must produce exactly what the comparator
        // butterfly produces (both are stable-free sorts of the same keys).
        for shift in [0usize, 5, 31, 63] {
            let input = generate::rotated((0..64).collect(), 40, shift);
            let mut fast = input.clone();
            sort_bitonic(&mut fast, Direction::Ascending);
            let mut reference = input;
            bitonic_merge(&mut reference, Direction::Ascending);
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn sort_into_appends() {
        let mut out = vec![99u64];
        sort_bitonic_into(&[3, 7, 5, 1], &mut out);
        assert_eq!(out, vec![99, 1, 3, 5, 7]);
    }

    #[test]
    fn scratch_capacity_reused() {
        let mut scratch: Vec<u64> = Vec::new();
        let mut v = generate::distinct_mountain(128, 50);
        sort_bitonic_with_scratch(&mut v, &mut scratch, Direction::Ascending);
        let cap = scratch.capacity();
        let mut v2 = generate::distinct_mountain(128, 90);
        sort_bitonic_with_scratch(&mut v2, &mut scratch, Direction::Descending);
        assert_eq!(scratch.capacity(), cap, "scratch should not reallocate");
    }

    proptest! {
        #[test]
        fn arbitrary_bitonic_sequences(
            values in proptest::collection::vec(any::<u64>(), 1..200),
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let len = values.len();
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated(values, peak, shift);
            check_both_directions(&m);
        }

        #[test]
        fn low_entropy_bitonic_sequences(
            values in proptest::collection::vec(0u64..4, 1..100),
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let len = values.len();
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated(values, peak, shift);
            check_both_directions(&m);
        }
    }
}
