//! The `O(n)` bitonic merge sort of Section 4.2, in a branch-free layout.
//!
//! "For a bitonic input sequence, the fastest way to sort it is to use a
//! merge sort instead of simulating the last stage of a bitonic sorting
//! network. This consists of two phases: first the minimum element of the
//! bitonic sequence is found, and second we use mergesort to merge the keys
//! to the left and right of the minimum."
//!
//! Viewed circularly, the keys starting at the minimum and walking forward
//! form one ascending run, and the keys walking *backward* from the minimum
//! form the other (Lemma 9: `O(n)` vs `O(n log n)` for the comparator
//! network). Instead of chasing both pointers around the circle with two
//! `%` reductions and an `i == j` exit test per element, we **rotate-copy**
//! the circle into scratch so the minimum sits at slot 0 — the sequence is
//! then a mountain: one ascending run from the front, one (reversed) from
//! the back — and run a classic converging two-pointer merge whose per-key
//! work is one comparison, one conditional select, and two index bumps, all
//! branchless. The pointers satisfy `emitted = i + (n-1-j)`, so they meet
//! exactly at the last emission and no bounds branch is needed.
//!
//! [`sort_bitonic_with_scratch`] additionally consults the kernel dispatch
//! table ([`crate::dispatch`]): tiny power-of-two inputs run the in-place
//! branch-free merge *network* ([`crate::kernels::bitonic_merge_iterative`])
//! instead, which beats the rotate-copy below the calibrated size class.

use crate::bitonic_min::bitonic_min_index;
use crate::dispatch::{self, Kernel};
use crate::kernels::bitonic_merge_iterative;
use bitonic_network::Direction;

/// Sort the bitonic sequence `data` in place, in direction `dir`.
///
/// Allocates a scratch buffer; use [`sort_bitonic_with_scratch`] in hot
/// loops. The result is unspecified if `data` is not bitonic (use
/// [`bitonic_network::is_bitonic`] to validate in debug paths).
///
/// ```
/// use local_sorts::{sort_bitonic, Direction};
/// let mut v = vec![4, 7, 9, 6, 2, 1, 0, 3]; // bitonic (cyclic shift)
/// sort_bitonic(&mut v, Direction::Ascending);
/// assert_eq!(v, vec![0, 1, 2, 3, 4, 6, 7, 9]);
/// ```
pub fn sort_bitonic<T: Ord + Copy>(data: &mut [T], dir: Direction) {
    let mut scratch = Vec::new();
    sort_bitonic_with_scratch(data, &mut scratch, dir);
}

/// Sort the bitonic sequence `data` in place using a caller-provided
/// scratch buffer (cleared and refilled; capacity is reused), picking the
/// merge kernel from the dispatch table and counting it in the
/// thread-local kernel tally.
pub fn sort_bitonic_with_scratch<T: Ord + Copy>(
    data: &mut [T],
    scratch: &mut Vec<T>,
    dir: Direction,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let kernel = dispatch::select_merge_kernel::<T>(n);
    match kernel {
        Kernel::NetworkMerge => bitonic_merge_iterative(data, dir),
        _ => sort_circular_with_scratch(data, scratch, dir),
    }
    dispatch::bump(kernel);
}

/// The rotate-copy circular merge, unconditionally (no dispatch, no
/// tally): linearize the circle into `scratch` with the minimum first,
/// then converge two pointers over the mountain, writing straight back
/// into `data` (forward for ascending, backward for descending).
pub fn sort_circular_with_scratch<T: Ord + Copy>(
    data: &mut [T],
    scratch: &mut Vec<T>,
    dir: Direction,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let start = bitonic_min_index(data);
    scratch.clear();
    scratch.reserve(n);
    scratch.extend_from_slice(&data[start..]);
    scratch.extend_from_slice(&data[..start]);
    match dir {
        Direction::Ascending => merge_mountain(scratch, data.iter_mut()),
        Direction::Descending => merge_mountain(scratch, data.iter_mut().rev()),
    }
}

/// Converging branch-free merge of a mountain (minimum at slot 0): emit
/// `src.len()` keys in ascending order into `out`.
///
/// Loop invariant: `emitted = i + (src.len() - 1 - j)`, so `i == j` exactly
/// when the last key is emitted; at that point `a == b` and the front is
/// taken, so `j` never underflows. Each iteration is one comparison and
/// three conditional selects — no data-dependent branch.
fn merge_mountain<'a, T: Ord + Copy + 'a>(src: &[T], out: impl Iterator<Item = &'a mut T>) {
    let mut i = 0usize;
    let mut j = src.len() - 1;
    for slot in out {
        let a = src[i];
        let b = src[j];
        let take_front = a <= b;
        *slot = if take_front { a } else { b };
        i += usize::from(take_front);
        j -= usize::from(!take_front);
    }
}

/// Sort the bitonic sequence `src` into `out` (appended), ascending.
///
/// This is the allocation-free core used by the fused sort-and-pack path
/// of Section 4.3. It must not disturb `out`'s existing prefix, so it
/// keeps the circular walk — but with the `%` reductions replaced by
/// conditional wrap-arounds (selects) and the `i == j` exit test hoisted
/// out of the loop: the pointers meet exactly at emission `n`, so the
/// first `n − 1` iterations need no meeting test at all.
pub fn sort_bitonic_into<T: Ord + Copy>(src: &[T], out: &mut Vec<T>) {
    let n = src.len();
    if n == 0 {
        return;
    }
    let before = out.len();
    out.reserve(n);
    let start = bitonic_min_index(src);
    let mut i = start;
    let mut j = if start == 0 { n - 1 } else { start - 1 };
    for _ in 0..n - 1 {
        let a = src[i];
        let b = src[j];
        let take_i = a <= b;
        out.push(if take_i { a } else { b });
        // Conditional wrap instead of `%`: i advances (mod n) when the
        // forward run is taken, j retreats (mod n) otherwise.
        let ti = usize::from(take_i);
        i += ti;
        i = if i == n { 0 } else { i };
        j += n - 1 + ti;
        j = if j >= n { j - n } else { j };
    }
    out.push(src[i]);
    debug_assert_eq!(i, j, "pointers must meet at the maximum");
    debug_assert_eq!(out.len() - before, n, "merge must emit exactly n elements");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{generate, is_sorted, rotate_left};
    use bitonic_network::{bitonic_merge, is_bitonic};
    use proptest::prelude::*;

    fn check_both_directions(input: &[u64]) {
        assert!(is_bitonic(input), "precondition violated: {input:?}");
        for dir in [Direction::Ascending, Direction::Descending] {
            let mut v = input.to_vec();
            sort_bitonic(&mut v, dir);
            assert!(
                is_sorted(&v, dir),
                "not sorted {dir:?}: {v:?} from {input:?}"
            );
            let mut a = v.clone();
            let mut b = input.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "output is not a permutation of the input");

            // The circular path must agree regardless of what dispatch picked.
            let mut c = input.to_vec();
            let mut scratch = Vec::new();
            sort_circular_with_scratch(&mut c, &mut scratch, dir);
            assert_eq!(c, v, "circular and dispatched kernels disagree");
        }
    }

    #[test]
    fn rotations_of_mountains() {
        for len in [1usize, 2, 3, 8, 17, 64] {
            let m = generate::distinct_mountain(len, len / 2);
            for shift in 0..len {
                let mut r = m.clone();
                rotate_left(&mut r, shift);
                check_both_directions(&r);
            }
        }
    }

    #[test]
    fn duplicate_heavy_inputs() {
        check_both_directions(&[1, 1, 2, 1]);
        check_both_directions(&[5, 5, 5, 5]);
        check_both_directions(&[3, 3, 7, 7, 7, 3]);
        check_both_directions(&[0, 9, 0]);
    }

    #[test]
    fn agrees_with_network_bitonic_merge() {
        // The O(n) merge sort must produce exactly what the comparator
        // butterfly produces (both are stable-free sorts of the same keys).
        for shift in [0usize, 5, 31, 63] {
            let input = generate::rotated((0..64).collect(), 40, shift);
            let mut fast = input.clone();
            sort_bitonic(&mut fast, Direction::Ascending);
            let mut reference = input;
            bitonic_merge(&mut reference, Direction::Ascending);
            assert_eq!(fast, reference);
        }
    }

    #[test]
    fn sort_into_appends() {
        let mut out = vec![99u64];
        sort_bitonic_into(&[3, 7, 5, 1], &mut out);
        assert_eq!(out, vec![99, 1, 3, 5, 7]);
    }

    #[test]
    fn sort_into_every_rotation() {
        for len in [1usize, 2, 5, 16, 33] {
            let m = generate::distinct_mountain(len, len / 3);
            for shift in 0..len {
                let mut r = m.clone();
                rotate_left(&mut r, shift);
                let mut out = Vec::new();
                sort_bitonic_into(&r, &mut out);
                assert!(is_sorted(&out, Direction::Ascending), "{r:?} -> {out:?}");
                let mut expect = r.clone();
                expect.sort_unstable();
                assert_eq!(out, expect);
            }
        }
    }

    #[test]
    fn scratch_capacity_reused() {
        let mut scratch: Vec<u64> = Vec::new();
        let mut v = generate::distinct_mountain(128, 50);
        sort_bitonic_with_scratch(&mut v, &mut scratch, Direction::Ascending);
        let cap = scratch.capacity();
        let mut v2 = generate::distinct_mountain(128, 90);
        sort_bitonic_with_scratch(&mut v2, &mut scratch, Direction::Descending);
        assert_eq!(scratch.capacity(), cap, "scratch should not reallocate");
    }

    proptest! {
        #[test]
        fn arbitrary_bitonic_sequences(
            values in proptest::collection::vec(any::<u64>(), 1..200),
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let len = values.len();
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated(values, peak, shift);
            check_both_directions(&m);
        }

        #[test]
        fn low_entropy_bitonic_sequences(
            values in proptest::collection::vec(0u64..4, 1..100),
            peak_frac in 0.0f64..1.0,
            shift_frac in 0.0f64..1.0,
        ) {
            let len = values.len();
            let peak = ((len as f64) * peak_frac) as usize;
            let shift = ((len as f64) * shift_frac) as usize;
            let m = generate::rotated(values, peak, shift);
            check_both_directions(&m);
        }
    }
}
