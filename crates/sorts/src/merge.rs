//! Two-way merging of sorted runs.
//!
//! The remap phases of the smart algorithm deliver data as sorted runs
//! (Lemma 6 / Section 4.3); merging them is `O(n)` and replaces the
//! compare-exchange simulation. Runs may arrive in either direction, so the
//! merge accepts a direction tag per input run and a direction for the
//! output.

use bitonic_network::Direction;

/// A sorted run with its direction, borrowed from a larger buffer.
#[derive(Debug, Clone, Copy)]
pub struct Run<'a, T> {
    /// The keys; sorted according to `dir`.
    pub data: &'a [T],
    /// Which way `data` is sorted.
    pub dir: Direction,
}

impl<'a, T> Run<'a, T> {
    /// An ascending run.
    #[must_use]
    pub fn asc(data: &'a [T]) -> Self {
        Run {
            data,
            dir: Direction::Ascending,
        }
    }

    /// A descending run.
    #[must_use]
    pub fn desc(data: &'a [T]) -> Self {
        Run {
            data,
            dir: Direction::Descending,
        }
    }

    /// Iterate the run in ascending order regardless of its storage order.
    fn iter_asc(&self) -> RunIter<'a, T> {
        RunIter {
            data: self.data,
            dir: self.dir,
            next: 0,
        }
    }
}

struct RunIter<'a, T> {
    data: &'a [T],
    dir: Direction,
    next: usize,
}

impl<'a, T> Iterator for RunIter<'a, T> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        if self.next >= self.data.len() {
            return None;
        }
        let idx = match self.dir {
            Direction::Ascending => self.next,
            Direction::Descending => self.data.len() - 1 - self.next,
        };
        self.next += 1;
        Some(&self.data[idx])
    }
}

/// Merge two sorted runs into `out` (cleared first), sorted in `out_dir`.
pub fn merge_two_into<T: Ord + Copy>(
    a: Run<'_, T>,
    b: Run<'_, T>,
    out_dir: Direction,
    out: &mut Vec<T>,
) {
    out.clear();
    out.reserve(a.data.len() + b.data.len());
    let mut ia = a.iter_asc().peekable();
    let mut ib = b.iter_asc().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(&x), Some(&y)) => {
                if x <= y {
                    out.push(*x);
                    ia.next();
                } else {
                    out.push(*y);
                    ib.next();
                }
            }
            (Some(&x), None) => {
                out.push(*x);
                ia.next();
            }
            (None, Some(&y)) => {
                out.push(*y);
                ib.next();
            }
            (None, None) => break,
        }
    }
    if out_dir == Direction::Descending {
        out.reverse();
    }
}

/// Merge two sorted runs, returning a fresh vector.
#[must_use]
pub fn merge_two<T: Ord + Copy>(a: Run<'_, T>, b: Run<'_, T>, out_dir: Direction) -> Vec<T> {
    let mut out = Vec::new();
    merge_two_into(a, b, out_dir, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{is_sorted_asc, is_sorted_desc};
    use proptest::prelude::*;

    #[test]
    fn merges_opposed_runs() {
        let out = merge_two(
            Run::asc(&[1, 4, 6]),
            Run::desc(&[9, 5, 2]),
            Direction::Ascending,
        );
        assert_eq!(out, vec![1, 2, 4, 5, 6, 9]);
    }

    #[test]
    fn descending_output() {
        let out = merge_two(
            Run::asc(&[1, 4, 6]),
            Run::asc(&[2, 5]),
            Direction::Descending,
        );
        assert_eq!(out, vec![6, 5, 4, 2, 1]);
    }

    #[test]
    fn empty_runs() {
        let empty: [u32; 0] = [];
        let out = merge_two(Run::asc(&empty), Run::desc(&[3, 1]), Direction::Ascending);
        assert_eq!(out, vec![1, 3]);
        let out = merge_two(Run::asc(&empty), Run::asc(&empty), Direction::Ascending);
        assert!(out.is_empty());
    }

    #[test]
    fn merge_is_stable_on_ties() {
        let out = merge_two(
            Run::asc(&[2, 2, 2]),
            Run::asc(&[2, 2]),
            Direction::Ascending,
        );
        assert_eq!(out, vec![2, 2, 2, 2, 2]);
    }

    proptest! {
        #[test]
        fn merge_equals_sort(
            mut a in proptest::collection::vec(any::<u32>(), 0..100),
            mut b in proptest::collection::vec(any::<u32>(), 0..100),
            a_desc: bool,
            b_desc: bool,
            out_desc: bool,
        ) {
            a.sort_unstable();
            b.sort_unstable();
            if a_desc { a.reverse(); }
            if b_desc { b.reverse(); }
            let ra = if a_desc { Run::desc(&a) } else { Run::asc(&a) };
            let rb = if b_desc { Run::desc(&b) } else { Run::asc(&b) };
            let dir = if out_desc { Direction::Descending } else { Direction::Ascending };
            let out = merge_two(ra, rb, dir);
            prop_assert_eq!(out.len(), a.len() + b.len());
            if out_desc {
                prop_assert!(is_sorted_desc(&out));
            } else {
                prop_assert!(is_sorted_asc(&out));
            }
        }
    }
}
