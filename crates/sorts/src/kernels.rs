//! Branch-free iterative compare-exchange kernels.
//!
//! The recursive formulation of the bitonic network (and the recursive
//! `osort`-style oblivious sorts it inspired) spends its time on call
//! overhead and data-dependent branches. These kernels run the same
//! comparator network as an **iterative stage/step loop** — two nested
//! counters instead of a call tree — and perform every compare-exchange
//! with a conditional *select* (`if swap { b } else { a }`), which the
//! compiler lowers to `cmov`/min/max instructions on integer keys. No
//! data-dependent branch is taken anywhere in a kernel, so
//!
//! * the branch predictor never sees the keys (pure throughput on random
//!   data, where a predicted compare-exchange mispredicts ~50% of the
//!   time), and
//! * the sequence of compared addresses is a pure function of the input
//!   *length* — the oblivious-execution precondition (property-tested in
//!   `tests/kernels.rs`).
//!
//! Direction is folded into the block parity test (`(base & k) == 0`),
//! which depends only on indices, so descending sorts cost exactly the
//! same comparator sequence as ascending ones.

use bitonic_network::Direction;

/// One ascending compare-exchange: afterwards `data[i] <= data[j]`.
///
/// Written as two conditional selects rather than a branch-plus-swap so
/// integer instantiations compile to branchless min/max.
#[inline(always)]
fn ce_asc<T: Ord + Copy>(data: &mut [T], i: usize, j: usize) {
    let a = data[i];
    let b = data[j];
    let swap = b < a;
    data[i] = if swap { b } else { a };
    data[j] = if swap { a } else { b };
}

/// One descending compare-exchange: afterwards `data[i] >= data[j]`.
#[inline(always)]
fn ce_desc<T: Ord + Copy>(data: &mut [T], i: usize, j: usize) {
    let a = data[i];
    let b = data[j];
    let swap = a < b;
    data[i] = if swap { b } else { a };
    data[j] = if swap { a } else { b };
}

/// Run the `lg k` comparator levels of a width-`k` merge stage over every
/// `k`-block of `data`, blocks alternating direction starting with `dir`.
///
/// `data.len()` and `k` must be powers of two with `k <= data.len()`.
fn merge_stage<T: Ord + Copy>(data: &mut [T], k: usize, dir: Direction) {
    let n = data.len();
    let asc = dir == Direction::Ascending;
    let mut j = k >> 1;
    while j > 0 {
        let mut base = 0;
        while base < n {
            // The stage's direction bit is index bit lg k: constant across
            // a 2j-block (2j <= k), so it hoists out of the inner loop and
            // the global direction folds into the same test.
            if ((base & k) == 0) == asc {
                for i in base..base + j {
                    ce_asc(data, i, i + j);
                }
            } else {
                for i in base..base + j {
                    ce_desc(data, i, i + j);
                }
            }
            base += j << 1;
        }
        j >>= 1;
    }
}

/// Sort `data` in direction `dir` with the full iterative bitonic sorting
/// network: stages `k = 2, 4, …, n`, each running its `lg k` comparator
/// levels. In place, no allocation, no data-dependent branches;
/// `O(n lg² n)` compare-exchanges (exactly [`sort_ce_count`]`(n)` of
/// them).
///
/// # Panics
/// Panics if `data.len()` is not a power of two (use
/// [`bitonic_sort_iterative_any`] for arbitrary lengths).
pub fn bitonic_sort_iterative<T: Ord + Copy>(data: &mut [T], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "iterative bitonic sort needs a power-of-two length, got {n}"
    );
    let mut k = 2;
    while k <= n {
        merge_stage(data, k, dir);
        k <<= 1;
    }
}

/// Sort the bitonic sequence `data` (any cyclic shift) in direction `dir`
/// with the iterative merge network alone: the single `k = n` stage, `lg n`
/// comparator levels, `O(n lg n)` compare-exchanges, in place with no
/// allocation and no data-dependent branches.
///
/// This is the branch-free alternative to the `O(n)` circular merge sort
/// of `bitonic_merge`: asymptotically slower, but with no minimum search,
/// no scratch traffic, and no branches — faster on small arrays (the
/// dispatch table in [`crate::dispatch`] picks the crossover).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn bitonic_merge_iterative<T: Ord + Copy>(data: &mut [T], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "iterative bitonic merge needs a power-of-two length, got {n}"
    );
    merge_stage(data, n, dir);
}

/// Sort `data` of **any** length with the iterative network, padding
/// through `scratch` to the next power of two when necessary.
///
/// Padding uses the array's own extreme element (maximum for ascending,
/// minimum for descending), so the padded suffix sorts to the far end and
/// the first `data.len()` slots of the sorted scratch are exactly the
/// input multiset. Power-of-two inputs skip the copy and sort in place.
/// The comparator sequence (including the extreme scan) remains a pure
/// function of `data.len()` and `dir`.
pub fn bitonic_sort_iterative_any<T: Ord + Copy>(
    data: &mut [T],
    scratch: &mut Vec<T>,
    dir: Direction,
) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        bitonic_sort_iterative(data, dir);
        return;
    }
    let m = n.next_power_of_two();
    let pad = match dir {
        Direction::Ascending => *data.iter().max().expect("n > 1"),
        Direction::Descending => *data.iter().min().expect("n > 1"),
    };
    scratch.clear();
    scratch.reserve(m);
    scratch.extend_from_slice(data);
    scratch.resize(m, pad);
    bitonic_sort_iterative(scratch, dir);
    data.copy_from_slice(&scratch[..n]);
}

/// Exact number of compare-exchanges [`bitonic_sort_iterative`] performs
/// on a power-of-two length `n`: `(n/2) · lg n · (lg n + 1) / 2`.
#[must_use]
pub fn sort_ce_count(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    let lg = u64::from(n.trailing_zeros());
    (n as u64 / 2) * lg * (lg + 1) / 2
}

/// Exact number of compare-exchanges [`bitonic_merge_iterative`] performs
/// on a power-of-two length `n`: `(n/2) · lg n`.
#[must_use]
pub fn merge_ce_count(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    (n as u64 / 2) * u64::from(n.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{generate, is_sorted};
    use proptest::prelude::*;

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 16
            })
            .collect()
    }

    #[test]
    fn sorts_random_power_of_two_inputs() {
        for lg in 0..=10u32 {
            let n = 1usize << lg;
            for dir in [Direction::Ascending, Direction::Descending] {
                let mut v = keys(n, u64::from(lg) + 1);
                let mut expect = v.clone();
                expect.sort_unstable();
                if dir == Direction::Descending {
                    expect.reverse();
                }
                bitonic_sort_iterative(&mut v, dir);
                assert_eq!(v, expect, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn merge_sorts_rotated_bitonic_inputs() {
        for lg in 1..=9u32 {
            let n = 1usize << lg;
            let m = generate::distinct_mountain(n, n / 3);
            for shift in [0, 1, n / 2, n - 1] {
                let mut input = m.clone();
                bitonic_network::sequence::rotate_left(&mut input, shift);
                for dir in [Direction::Ascending, Direction::Descending] {
                    let mut v = input.clone();
                    bitonic_merge_iterative(&mut v, dir);
                    assert!(is_sorted(&v, dir), "n={n} shift={shift} {dir:?}: {v:?}");
                }
            }
        }
    }

    #[test]
    fn any_length_pads_correctly() {
        for n in [0usize, 1, 2, 3, 5, 17, 100, 255, 257] {
            for dir in [Direction::Ascending, Direction::Descending] {
                let mut v = keys(n, n as u64 + 7);
                let mut expect = v.clone();
                expect.sort_unstable();
                if dir == Direction::Descending {
                    expect.reverse();
                }
                let mut scratch = Vec::new();
                bitonic_sort_iterative_any(&mut v, &mut scratch, dir);
                assert_eq!(v, expect, "n={n} {dir:?}");
            }
        }
    }

    #[test]
    fn all_equal_and_saturated() {
        let mut v = vec![u64::MAX; 64];
        bitonic_sort_iterative(&mut v, Direction::Ascending);
        assert!(v.iter().all(|&x| x == u64::MAX));
        let mut v = vec![7u64; 33];
        let mut scratch = Vec::new();
        bitonic_sort_iterative_any(&mut v, &mut scratch, Direction::Descending);
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn ce_count_formulas() {
        assert_eq!(sort_ce_count(1), 0);
        assert_eq!(sort_ce_count(2), 1);
        assert_eq!(sort_ce_count(4), 6);
        assert_eq!(sort_ce_count(8), 24);
        assert_eq!(merge_ce_count(8), 12);
        assert_eq!(merge_ce_count(1), 0);
    }

    proptest! {
        #[test]
        fn matches_std_sort(
            mut v in proptest::collection::vec(any::<u32>(), 0..300),
            descending in any::<bool>(),
        ) {
            let dir = if descending { Direction::Descending } else { Direction::Ascending };
            let mut expect = v.clone();
            expect.sort_unstable();
            if descending { expect.reverse(); }
            let mut scratch = Vec::new();
            bitonic_sort_iterative_any(&mut v, &mut scratch, dir);
            prop_assert_eq!(v, expect);
        }
    }
}
