//! LSD radix sort — the general-purpose local sort of the thesis.
//!
//! "For the first `lg n` stages since the keys are in a specified range we
//! used radix-sort which also takes `O(n)` time" (Section 4.4). This is a
//! classic least-significant-digit counting sort with 8-bit digits and a
//! double buffer, with a per-pass skip when all keys share the same digit.

use crate::RadixKey;

/// Sort `data` ascending, stably, in `O(passes · n)` time.
///
/// Allocates one scratch buffer of `data.len()` elements; use
/// [`radix_sort_with_scratch`] to amortize that allocation across calls.
pub fn radix_sort<K: RadixKey>(data: &mut [K]) {
    let mut scratch = data.to_vec();
    radix_sort_with_scratch(data, &mut scratch);
}

/// Sort `data` ascending using `scratch` as the ping-pong buffer.
///
/// `scratch` is resized to `data.len()` if needed; its prior contents are
/// irrelevant.
pub fn radix_sort_with_scratch<K: RadixKey>(data: &mut [K], scratch: &mut Vec<K>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(data);

    const RADIX: usize = 256;
    let mut counts = [0usize; RADIX];

    // Ping-pong between `data` and `scratch`; track which holds the current
    // ordering so we can copy back at the end if necessary.
    let mut src_is_data = true;
    for pass in 0..K::PASSES {
        let (src, dst): (&mut [K], &mut [K]) = if src_is_data {
            (data, &mut scratch[..])
        } else {
            (&mut scratch[..], data)
        };

        counts.fill(0);
        for &k in src.iter() {
            counts[k.digit(pass)] += 1;
        }
        // All keys share this digit: the pass is the identity, skip it.
        if counts.contains(&n) {
            continue;
        }
        // Exclusive prefix sums give the first output slot of each bucket.
        let mut sum = 0usize;
        for c in counts.iter_mut() {
            let here = *c;
            *c = sum;
            sum += here;
        }
        for &k in src.iter() {
            let d = k.digit(pass);
            dst[counts[d]] = k;
            counts[d] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorts_small_vectors() {
        let mut v: Vec<u32> = vec![170, 45, 75, 90, 2, 802, 2, 66];
        radix_sort(&mut v);
        assert_eq!(v, vec![2, 2, 45, 66, 75, 90, 170, 802]);
    }

    #[test]
    fn sorts_u64_full_range() {
        let mut v: Vec<u64> = vec![u64::MAX, 0, 1, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
        radix_sort(&mut v);
        assert_eq!(
            v,
            vec![0, 1, (1 << 63) - 1, 1 << 63, u64::MAX - 1, u64::MAX]
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mut v: Vec<u32> = vec![];
        radix_sort(&mut v);
        assert!(v.is_empty());
        let mut v = vec![7u32];
        radix_sort(&mut v);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn all_equal_uses_skip_path() {
        let mut v = vec![42u32; 1000];
        radix_sort(&mut v);
        assert!(v.iter().all(|&x| x == 42));
    }

    #[test]
    fn already_sorted_input() {
        let mut v: Vec<u32> = (0..1024).collect();
        let expect = v.clone();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn reverse_sorted_input() {
        let mut v: Vec<u32> = (0..1024).rev().collect();
        radix_sort(&mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scratch_reuse_across_calls() {
        let mut scratch = Vec::new();
        for round in 0..4u32 {
            let mut v: Vec<u32> = (0..257).map(|i| (i * 7919 + round) % 1031).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort_with_scratch(&mut v, &mut scratch);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn thesis_key_range_31_bits() {
        // Keys are drawn from [0, 2^31) in the thesis experiments; the top
        // pass must then be a skipped identity pass for many inputs.
        let mut v: Vec<u32> = (0..4096u32)
            .map(|i| i.wrapping_mul(2654435761) & 0x7FFF_FFFF)
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort(&mut v);
        assert_eq!(v, expect);
    }

    proptest! {
        #[test]
        fn matches_std_sort_u32(mut v in proptest::collection::vec(any::<u32>(), 0..2000)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort(&mut v);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn matches_std_sort_u64(mut v in proptest::collection::vec(any::<u64>(), 0..500)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort(&mut v);
            prop_assert_eq!(v, expect);
        }

        #[test]
        fn low_entropy_inputs(mut v in proptest::collection::vec(0u32..4, 0..300)) {
            let mut expect = v.clone();
            expect.sort_unstable();
            radix_sort(&mut v);
            prop_assert_eq!(v, expect);
        }
    }
}
