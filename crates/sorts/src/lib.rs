//! Local computation routines of Chapter 4 (*Optimizing Computation*).
//!
//! On a coarse-grained machine each processor holds `n = N/P` keys, and the
//! thesis replaces the naive simulation of compare-exchange steps with much
//! faster local routines that exploit the special format of the data at
//! each column of the network:
//!
//! * [`radix`] — LSD radix sort, used for the first `lg n` stages and as the
//!   general-purpose local sort (Section 4.4);
//! * [`bitonic_min`] — Algorithm 2, finding the minimum of a bitonic
//!   sequence in `O(log n)` time;
//! * [`bitonic_merge`] — the `O(n)` *bitonic merge sort* of Section 4.2
//!   (find the minimum, then merge the two circular monotonic runs);
//! * [`pway_merge`] — p-way merging of the alternating sorted runs produced
//!   by the packing of long messages (Section 4.3).
//!
//! All routines support both sort directions because merge blocks of the
//! bitonic network alternate between increasing and decreasing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic_merge;
pub mod bitonic_min;
pub mod dispatch;
pub mod kernels;
pub mod merge;
pub mod pway_merge;
pub mod radix;

pub use bitonic_merge::{sort_bitonic, sort_bitonic_with_scratch};
pub use bitonic_min::bitonic_min_index;
pub use bitonic_network::Direction;
pub use dispatch::{ForceKernel, Kernel, KernelTable};
pub use radix::radix_sort;

/// An unsigned key type sortable by the LSD radix sort.
///
/// The thesis sorts uniformly distributed 31-bit keys ("random,
/// uniformly-distributed 32-bit keys … in the range 0 through 2³¹ − 1",
/// Section 5.3); we additionally support 64-bit keys.
pub trait RadixKey: Copy + Ord + Send + Sync + 'static {
    /// Number of radix passes of [`Self::DIGIT_BITS`] bits each.
    const PASSES: u32;
    /// Width of one radix digit in bits.
    const DIGIT_BITS: u32 = 8;
    /// Extract digit `pass` (0 = least significant).
    fn digit(self, pass: u32) -> usize;
}

impl RadixKey for u32 {
    const PASSES: u32 = 4;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self >> (pass * Self::DIGIT_BITS)) & 0xFF) as usize
    }
}

impl RadixKey for u64 {
    const PASSES: u32 = 8;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self >> (pass * Self::DIGIT_BITS)) & 0xFF) as usize
    }
}

impl RadixKey for u16 {
    const PASSES: u32 = 2;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        usize::from((self >> (pass * Self::DIGIT_BITS)) & 0xFF)
    }
}

// Wide keys (ROADMAP item 3): 16 byte-wide passes. The dispatch table
// gives u128 its own width class, where the pass count pushes the radix
// crossover far enough out that the bitonic network wins a wide band.
impl RadixKey for u128 {
    const PASSES: u32 = 16;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self >> (pass * Self::DIGIT_BITS)) & 0xFF) as usize
    }
}

/// A 192-bit unsigned word: three `u64` limbs compared lexicographically
/// (`hi`, then `mid`, then `lo`).
///
/// The record-sorting layer needs one machine word wide enough to carry
/// `[tag:32][key:128][rid:32]` — a u128 key plus the batch tag and the
/// record id that threads the payload permutation through the sort. No
/// primitive holds 192 bits, so this struct does; the derived `Ord` is
/// limb-lexicographic, which is exactly unsigned 192-bit integer order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct W192 {
    /// Bits 191..128.
    pub hi: u64,
    /// Bits 127..64.
    pub mid: u64,
    /// Bits 63..0.
    pub lo: u64,
}

impl W192 {
    /// The all-ones word — sorts after every other `W192`.
    pub const MAX: W192 = W192 {
        hi: u64::MAX,
        mid: u64::MAX,
        lo: u64::MAX,
    };
}

impl RadixKey for W192 {
    const PASSES: u32 = 24;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        let limb = match pass / 8 {
            0 => self.lo,
            1 => self.mid,
            _ => self.hi,
        };
        ((limb >> ((pass % 8) * Self::DIGIT_BITS)) & 0xFF) as usize
    }
}

// Signed keys: flipping the sign bit maps i32/i64 order-preservingly onto
// u32/u64, so the same byte-wise digits sort them correctly.
impl RadixKey for i32 {
    const PASSES: u32 = 4;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        ((self as u32 ^ 0x8000_0000) >> (pass * Self::DIGIT_BITS)) as usize & 0xFF
    }
}

impl RadixKey for i64 {
    const PASSES: u32 = 8;
    #[inline]
    fn digit(self, pass: u32) -> usize {
        (((self as u64 ^ 0x8000_0000_0000_0000) >> (pass * Self::DIGIT_BITS)) & 0xFF) as usize
    }
}

/// Sort `data` in `dir` using the fastest applicable local routine for
/// its size class and key width, per the kernel dispatch table
/// ([`dispatch`]): the branch-free iterative bitonic network below the
/// calibrated crossover, the LSD radix sort above it (descending radix
/// output is produced by an ascending sort plus a reversal, staying
/// `O(n)`).
///
/// Allocates a scratch buffer; hot loops should thread a pooled buffer
/// through [`local_sort_with_scratch`] instead.
pub fn local_sort<K: RadixKey>(data: &mut [K], dir: Direction) {
    let mut scratch = Vec::new();
    local_sort_with_scratch(data, &mut scratch, dir);
}

/// [`local_sort`] with a caller-provided scratch buffer (cleared and
/// refilled; capacity is reused across calls). The chosen kernel is
/// counted in the thread-local tally ([`dispatch::take_tally`]).
pub fn local_sort_with_scratch<K: RadixKey>(data: &mut [K], scratch: &mut Vec<K>, dir: Direction) {
    let kernel = dispatch::select_sort_kernel::<K>(data.len());
    match kernel {
        Kernel::BitonicNetwork => kernels::bitonic_sort_iterative_any(data, scratch, dir),
        _ => {
            radix::radix_sort_with_scratch(data, scratch);
            if dir == Direction::Descending {
                data.reverse();
            }
        }
    }
    dispatch::bump(kernel);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_of_u32() {
        let k: u32 = 0xAABBCCDD;
        assert_eq!(k.digit(0), 0xDD);
        assert_eq!(k.digit(1), 0xCC);
        assert_eq!(k.digit(2), 0xBB);
        assert_eq!(k.digit(3), 0xAA);
    }

    #[test]
    fn digits_of_u64() {
        let k: u64 = 0x0102030405060708;
        assert_eq!(k.digit(0), 0x08);
        assert_eq!(k.digit(7), 0x01);
    }

    #[test]
    fn digits_of_u128() {
        let k: u128 = 0xAB << 120 | 0xCD << 64 | 0xEF << 56 | 0x12;
        assert_eq!(k.digit(0), 0x12);
        assert_eq!(k.digit(7), 0xEF);
        assert_eq!(k.digit(8), 0xCD);
        assert_eq!(k.digit(15), 0xAB);
        // Interior passes carry nothing for this key.
        assert_eq!(k.digit(1), 0);
        assert_eq!(k.digit(14), 0);
        assert_eq!(u128::MAX.digit(15), 0xFF);
        assert_eq!(0u128.digit(0), 0);
    }

    #[test]
    fn u128_keys_sort_across_digit_boundaries() {
        // Keys that differ only above bit 64, only below, and at the
        // 64-bit boundary — the passes that a u64-shaped impl would lose.
        let mut v: Vec<u128> = vec![
            u128::MAX,
            0,
            1 << 64,
            (1 << 64) - 1,
            1 << 127,
            (1 << 127) - 1,
            42,
        ];
        let mut expect = v.clone();
        expect.sort_unstable();
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, expect);
        local_sort(&mut v, Direction::Descending);
        expect.reverse();
        assert_eq!(v, expect);
    }

    #[test]
    fn w192_digits_cover_all_three_limbs() {
        let w = W192 {
            hi: 0xAB00_0000_0000_00CD,
            mid: 0x0000_00EF_0000_0000,
            lo: 0x1200_0000_0000_0034,
        };
        assert_eq!(w.digit(0), 0x34);
        assert_eq!(w.digit(7), 0x12);
        assert_eq!(w.digit(12), 0xEF);
        assert_eq!(w.digit(16), 0xCD);
        assert_eq!(w.digit(23), 0xAB);
        assert_eq!(W192::MAX.digit(23), 0xFF);
    }

    #[test]
    fn w192_sorts_like_a_192_bit_integer() {
        let mk = |hi, mid, lo| W192 { hi, mid, lo };
        let mut v = vec![
            W192::MAX,
            mk(0, 0, 0),
            mk(0, u64::MAX, u64::MAX),
            mk(1, 0, 0),
            mk(0, 1, u64::MAX),
            mk(0, 2, 0),
            mk(u64::MAX, 0, 0),
        ];
        let mut expect = v.clone();
        expect.sort_unstable();
        // Small n: the bitonic network kernel path.
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, expect);
        // Large n: the radix path, exercising every one of the 24 passes.
        let mut big: Vec<W192> = (0..4096u64)
            .map(|i| {
                let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                mk(x & 0xFF, x.rotate_left(17), x.rotate_left(39))
            })
            .collect();
        let mut expect = big.clone();
        expect.sort_unstable();
        local_sort(&mut big, Direction::Ascending);
        assert_eq!(big, expect);
        local_sort(&mut big, Direction::Descending);
        expect.reverse();
        assert_eq!(big, expect);
    }

    #[test]
    fn local_sort_with_scratch_reuses_capacity() {
        let mut scratch = Vec::new();
        for round in 0..3u64 {
            // Above the bitonic crossover so the radix path exercises the
            // scratch buffer.
            let mut v: Vec<u64> = (0..5000u64)
                .map(|i| (i * 2654435761 + round) % 9973)
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            local_sort_with_scratch(&mut v, &mut scratch, Direction::Ascending);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn signed_keys_sort_across_zero() {
        let mut v: Vec<i32> = vec![5, -1, i32::MIN, 0, i32::MAX, -7];
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, vec![i32::MIN, -7, -1, 0, 5, i32::MAX]);
        let mut v: Vec<i64> = vec![1, -1, 0, i64::MIN, i64::MAX];
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, vec![i64::MIN, -1, 0, 1, i64::MAX]);
    }

    #[test]
    fn u16_keys_sort() {
        let mut v: Vec<u16> = vec![500, 3, u16::MAX, 256, 255];
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, vec![3, 255, 256, 500, u16::MAX]);
    }

    #[test]
    fn local_sort_both_directions() {
        let mut v: Vec<u32> = vec![5, 1, 9, 1, 7];
        local_sort(&mut v, Direction::Ascending);
        assert_eq!(v, vec![1, 1, 5, 7, 9]);
        local_sort(&mut v, Direction::Descending);
        assert_eq!(v, vec![9, 7, 5, 1, 1]);
    }
}
