//! p-way merging of sorted runs (Section 4.3).
//!
//! After a long-message remap, the local data is a concatenation of sorted
//! runs — one per sending processor, the first half of them increasing and
//! the second half decreasing ("we will have `2^{k−1}` increasing sequences
//! and `2^{k−1}` decreasing sequences"). The thesis eliminates the unpack
//! phase by merging those runs directly with a fast p-way merge.
//!
//! The implementation uses a binary heap of run cursors (a tournament among
//! run heads), giving `O(n log p)` comparisons for `n` total elements in
//! `p` runs.

use crate::merge::Run;
use bitonic_network::Direction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merge `runs` into `out` (cleared first), sorted in `out_dir`.
///
/// Each input run carries its own direction; runs may be empty.
pub fn pway_merge_into<T: Ord + Copy>(runs: &[Run<'_, T>], out_dir: Direction, out: &mut Vec<T>) {
    out.clear();
    let total: usize = runs.iter().map(|r| r.data.len()).sum();
    out.reserve(total);

    // Heap entries: (key, run index, position-within-run counted in
    // ascending order). Run index breaks ties deterministically.
    let mut heap: BinaryHeap<Reverse<(T, usize, usize)>> = BinaryHeap::with_capacity(runs.len());
    let key_at = |run: &Run<'_, T>, pos: usize| -> T {
        match run.dir {
            Direction::Ascending => run.data[pos],
            Direction::Descending => run.data[run.data.len() - 1 - pos],
        }
    };
    for (ri, run) in runs.iter().enumerate() {
        if !run.data.is_empty() {
            heap.push(Reverse((key_at(run, 0), ri, 0)));
        }
    }
    while let Some(Reverse((key, ri, pos))) = heap.pop() {
        out.push(key);
        let next = pos + 1;
        if next < runs[ri].data.len() {
            heap.push(Reverse((key_at(&runs[ri], next), ri, next)));
        }
    }
    if out_dir == Direction::Descending {
        out.reverse();
    }
}

/// Merge equally sized chunks of `data` — `runs` contiguous runs of length
/// `data.len() / runs` — where the first half of the runs is sorted
/// ascending and the second half descending (the post-remap layout of
/// Section 4.3). Returns the merged, `out_dir`-sorted vector.
#[must_use]
pub fn merge_half_asc_half_desc<T: Ord + Copy>(
    data: &[T],
    runs: usize,
    out_dir: Direction,
) -> Vec<T> {
    assert!(
        runs >= 1 && data.len().is_multiple_of(runs),
        "data must split evenly into runs"
    );
    let run_len = data.len() / runs;
    let run_views: Vec<Run<'_, T>> = data
        .chunks(run_len)
        .enumerate()
        .map(|(i, chunk)| {
            if i < runs / 2 || runs == 1 {
                Run::asc(chunk)
            } else {
                Run::desc(chunk)
            }
        })
        .collect();
    let mut out = Vec::new();
    pway_merge_into(&run_views, out_dir, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::sequence::{is_sorted, is_sorted_asc};
    use proptest::prelude::*;

    #[test]
    fn merges_four_mixed_runs() {
        let a = [1u32, 5, 9];
        let b = [2u32, 6];
        let c = [8u32, 4, 0];
        let d: [u32; 0] = [];
        let mut out = Vec::new();
        pway_merge_into(
            &[Run::asc(&a), Run::asc(&b), Run::desc(&c), Run::asc(&d)],
            Direction::Ascending,
            &mut out,
        );
        assert_eq!(out, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn single_run_pass_through() {
        let a = [1u32, 2, 3];
        let mut out = Vec::new();
        pway_merge_into(&[Run::asc(&a)], Direction::Ascending, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn no_runs_yields_empty() {
        let mut out: Vec<u32> = vec![7];
        pway_merge_into::<u32>(&[], Direction::Ascending, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn half_asc_half_desc_shape() {
        // 4 runs of 4: first two ascending, last two descending.
        let data = [0u32, 2, 4, 6, 1, 3, 5, 7, 15, 13, 11, 9, 14, 12, 10, 8];
        let out = merge_half_asc_half_desc(&data, 4, Direction::Ascending);
        assert_eq!(out, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn descending_output_direction() {
        let data = [0u32, 1, 3, 2];
        let out = merge_half_asc_half_desc(&data, 2, Direction::Descending);
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    proptest! {
        #[test]
        fn merge_equals_flat_sort(
            chunks in proptest::collection::vec(
                proptest::collection::vec(any::<u32>(), 0..40), 0..8),
            dirs in proptest::collection::vec(any::<bool>(), 0..8),
            out_desc: bool,
        ) {
            let mut sorted_chunks = Vec::new();
            for (i, mut c) in chunks.into_iter().enumerate() {
                c.sort_unstable();
                let desc = dirs.get(i).copied().unwrap_or(false);
                if desc { c.reverse(); }
                sorted_chunks.push((c, desc));
            }
            let runs: Vec<Run<'_, u32>> = sorted_chunks
                .iter()
                .map(|(c, desc)| if *desc { Run::desc(c) } else { Run::asc(c) })
                .collect();
            let dir = if out_desc { Direction::Descending } else { Direction::Ascending };
            let mut out = Vec::new();
            pway_merge_into(&runs, dir, &mut out);
            let mut expect: Vec<u32> =
                sorted_chunks.iter().flat_map(|(c, _)| c.iter().copied()).collect();
            expect.sort_unstable();
            prop_assert!(is_sorted(&out, dir));
            let mut got = out;
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn power_of_two_runs_merge(
            exp in 0u32..5,
            seed in any::<u64>(),
        ) {
            let runs = 1usize << exp;
            let run_len = 8usize;
            let mut x = seed | 1;
            let mut data = Vec::with_capacity(runs * run_len);
            for r in 0..runs {
                let mut chunk: Vec<u32> = (0..run_len).map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (x >> 33) as u32
                }).collect();
                chunk.sort_unstable();
                if r >= runs / 2 && runs > 1 { chunk.reverse(); }
                data.extend(chunk);
            }
            let out = merge_half_asc_half_desc(&data, runs, Direction::Ascending);
            prop_assert!(is_sorted_asc(&out));
            prop_assert_eq!(out.len(), data.len());
        }
    }
}
