//! Per-size-class kernel selection for the local phase.
//!
//! Chapter 4 of the thesis picks the local routine analytically (radix for
//! full sorts, the `O(n)` circular merge for bitonic inputs). On real
//! hardware the constants — branch mispredictions, pass counts, scratch
//! traffic — decide the winner per *size class* and *key width*, not the
//! asymptotics (cf. *Integer sorting on multicores and GPUs*). This module
//! keeps a small threshold table, analogous to the calibrated LogP machine
//! constants in `logp::predict`:
//!
//! * full sorts of `n` keys use the branch-free iterative bitonic network
//!   ([`crate::kernels`]) while `lg ⌈n⌉₂` is at or below the width class's
//!   `sort_bitonic_max_lg`, and the LSD radix sort above it;
//! * bitonic merges use the branchless comparator network while the length
//!   is a power of two at or below `merge_network_max_lg`, and the
//!   rotate-copy circular merge above it.
//!
//! The table starts from constants measured on the reference host
//! ([`KernelTable::default_host`]) and can be re-measured at process start
//! with [`ensure_calibrated`] (the serving pool does this once per
//! process). Selections are counted in a thread-local tally so the SPMD
//! drivers can attribute kernel use to phases without changing any sort
//! signature.

use crate::RadixKey;
use core::cell::Cell;
use core::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::time::Instant;

/// A local-phase kernel, as recorded in stats, traces, and `BENCH_6.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// LSD radix sort (`crate::radix`) — the seed full-sort path.
    Radix,
    /// Iterative branch-free bitonic sorting network (`crate::kernels`).
    BitonicNetwork,
    /// Rotate-copy circular merge of a bitonic input (`crate::bitonic_merge`).
    CircularMerge,
    /// Single branch-free merge stage of the comparator network.
    NetworkMerge,
}

impl Kernel {
    /// All kernels, in [`Kernel::index`] order.
    pub const ALL: [Kernel; 4] = [
        Kernel::Radix,
        Kernel::BitonicNetwork,
        Kernel::CircularMerge,
        Kernel::NetworkMerge,
    ];

    /// Stable short name used in stats lines, trace events, and bench JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Radix => "radix",
            Kernel::BitonicNetwork => "bitonic_net",
            Kernel::CircularMerge => "circular_merge",
            Kernel::NetworkMerge => "network_merge",
        }
    }

    /// Dense index into tally arrays (matches [`Kernel::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Kernel::Radix => 0,
            Kernel::BitonicNetwork => 1,
            Kernel::CircularMerge => 2,
            Kernel::NetworkMerge => 3,
        }
    }
}

/// Number of key-width classes (≤16-bit, 32-bit, 64-bit, ≥128-bit).
pub const WIDTH_CLASSES: usize = 4;

/// Map a key type to its width class by size: `0` for ≤2 bytes, `1` for
/// 4 bytes, `2` for 8 bytes, `3` for anything wider.
#[must_use]
pub fn width_class<T>() -> usize {
    match core::mem::size_of::<T>() {
        0..=2 => 0,
        3..=4 => 1,
        5..=8 => 2,
        _ => 3,
    }
}

/// Size class of a slice length: `lg` of the next power of two.
#[must_use]
pub fn size_class(n: usize) -> u32 {
    n.next_power_of_two().trailing_zeros()
}

/// Crossover thresholds per width class, in size-class (`lg n`) units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTable {
    /// Largest `lg ⌈n⌉₂` at which a full sort uses the bitonic network.
    pub sort_bitonic_max_lg: [u32; WIDTH_CLASSES],
    /// Largest `lg n` (power-of-two `n` only) at which a bitonic merge
    /// uses the comparator network instead of the circular merge.
    pub merge_network_max_lg: [u32; WIDTH_CLASSES],
}

impl KernelTable {
    /// Constants measured on the reference container
    /// (`cargo run --release -p bitonic-bench --bin experiments -- kernels`),
    /// rounded down to the threshold the calibration reproduced on every
    /// run so dispatch never regresses a cell. Radix does fewer passes on
    /// narrow keys, so its crossover drops with the width: a u16 sort is
    /// two counting passes and beats the network from 32 keys up, while a
    /// u128 sort pays sixteen passes and loses to it through 256 keys.
    #[must_use]
    pub const fn default_host() -> Self {
        KernelTable {
            sort_bitonic_max_lg: [3, 4, 5, 8],
            merge_network_max_lg: [2, 2, 2, 4],
        }
    }
}

impl Default for KernelTable {
    fn default() -> Self {
        Self::default_host()
    }
}

// The installed table, stored as atomics so the per-sort read is two
// relaxed loads instead of a lock acquisition.
static SORT_MAX_LG: [AtomicU32; WIDTH_CLASSES] = {
    const T: KernelTable = KernelTable::default_host();
    [
        AtomicU32::new(T.sort_bitonic_max_lg[0]),
        AtomicU32::new(T.sort_bitonic_max_lg[1]),
        AtomicU32::new(T.sort_bitonic_max_lg[2]),
        AtomicU32::new(T.sort_bitonic_max_lg[3]),
    ]
};
static MERGE_MAX_LG: [AtomicU32; WIDTH_CLASSES] = {
    const T: KernelTable = KernelTable::default_host();
    [
        AtomicU32::new(T.merge_network_max_lg[0]),
        AtomicU32::new(T.merge_network_max_lg[1]),
        AtomicU32::new(T.merge_network_max_lg[2]),
        AtomicU32::new(T.merge_network_max_lg[3]),
    ]
};

const FORCE_AUTO: u8 = 0;
const FORCE_RADIX: u8 = 1;
const FORCE_BITONIC: u8 = 2;
static FORCE: AtomicU8 = AtomicU8::new(FORCE_AUTO);
static CALIBRATED: AtomicBool = AtomicBool::new(false);

/// A forced kernel family, overriding the threshold table (CLI
/// `--local-kernel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForceKernel {
    /// Use the threshold table (the default).
    #[default]
    Auto,
    /// Seed behavior: radix full sorts, circular merges.
    Radix,
    /// Branch-free networks wherever the precondition (power-of-two
    /// length for merges) allows.
    Bitonic,
}

/// Install a process-wide kernel force (or [`ForceKernel::Auto`] to
/// return control to the table).
pub fn set_force(force: ForceKernel) {
    let v = match force {
        ForceKernel::Auto => FORCE_AUTO,
        ForceKernel::Radix => FORCE_RADIX,
        ForceKernel::Bitonic => FORCE_BITONIC,
    };
    FORCE.store(v, Ordering::Relaxed);
}

/// Install `table` as the process-wide dispatch table.
pub fn install(table: &KernelTable) {
    for w in 0..WIDTH_CLASSES {
        SORT_MAX_LG[w].store(table.sort_bitonic_max_lg[w], Ordering::Relaxed);
        MERGE_MAX_LG[w].store(table.merge_network_max_lg[w], Ordering::Relaxed);
    }
}

/// The currently installed dispatch table.
#[must_use]
pub fn current() -> KernelTable {
    let mut t = KernelTable::default_host();
    for w in 0..WIDTH_CLASSES {
        t.sort_bitonic_max_lg[w] = SORT_MAX_LG[w].load(Ordering::Relaxed);
        t.merge_network_max_lg[w] = MERGE_MAX_LG[w].load(Ordering::Relaxed);
    }
    t
}

/// Pick the kernel for a *full sort* of `n` keys of type `K`.
#[must_use]
pub fn select_sort_kernel<K: RadixKey>(n: usize) -> Kernel {
    match FORCE.load(Ordering::Relaxed) {
        FORCE_RADIX => return Kernel::Radix,
        FORCE_BITONIC => return Kernel::BitonicNetwork,
        _ => {}
    }
    let max_lg = SORT_MAX_LG[width_class::<K>()].load(Ordering::Relaxed);
    if size_class(n) <= max_lg {
        Kernel::BitonicNetwork
    } else {
        Kernel::Radix
    }
}

/// Pick the kernel for sorting a *bitonic* input of `n` keys of width
/// `size_of::<T>()`. The comparator network needs a power-of-two length;
/// everything else falls to the circular merge.
#[must_use]
pub fn select_merge_kernel<T>(n: usize) -> Kernel {
    if !n.is_power_of_two() {
        return Kernel::CircularMerge;
    }
    match FORCE.load(Ordering::Relaxed) {
        FORCE_RADIX => return Kernel::CircularMerge,
        FORCE_BITONIC => return Kernel::NetworkMerge,
        _ => {}
    }
    let max_lg = MERGE_MAX_LG[width_class::<T>()].load(Ordering::Relaxed);
    if size_class(n) <= max_lg {
        Kernel::NetworkMerge
    } else {
        Kernel::CircularMerge
    }
}

thread_local! {
    static TALLY: Cell<[u64; 4]> = const { Cell::new([0; 4]) };
}

/// Count one use of `kernel` in this thread's tally.
pub fn bump(kernel: Kernel) {
    TALLY.with(|t| {
        let mut v = t.get();
        v[kernel.index()] += 1;
        t.set(v);
    });
}

/// Take (and reset) this thread's kernel tally as `(name, count)` pairs,
/// omitting zero counts.
#[must_use]
pub fn take_tally() -> Vec<(&'static str, u64)> {
    let counts = TALLY.with(|t| t.replace([0; 4]));
    Kernel::ALL
        .iter()
        .filter(|k| counts[k.index()] > 0)
        .map(|&k| (k.name(), counts[k.index()]))
        .collect()
}

/// Reset this thread's kernel tally (e.g. at the start of an SPMD
/// program, so counts from a previous program on a pooled machine thread
/// are not attributed to this one).
pub fn clear_tally() {
    TALLY.with(|t| t.set([0; 4]));
}

// ---------------------------------------------------------------------------
// Calibration

/// Keys the calibrator can synthesize. Private: only the four canonical
/// unsigned widths are measured; signed keys share their class by size.
trait CalKey: RadixKey {
    fn from_u64(x: u64) -> Self;
}
impl CalKey for u16 {
    fn from_u64(x: u64) -> Self {
        x as u16
    }
}
impl CalKey for u32 {
    fn from_u64(x: u64) -> Self {
        x as u32
    }
}
impl CalKey for u64 {
    fn from_u64(x: u64) -> Self {
        x
    }
}
impl CalKey for u128 {
    fn from_u64(x: u64) -> Self {
        (u128::from(x) << 64) | u128::from(x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_keys<K: CalKey>(n: usize, seed: u64) -> Vec<K> {
    let mut s = seed;
    (0..n).map(|_| K::from_u64(splitmix(&mut s))).collect()
}

/// A rotated mountain: bitonic, exercising both merge kernels fairly.
fn bitonic_keys<K: CalKey>(n: usize, seed: u64) -> Vec<K> {
    let mut v = random_keys::<K>(n, seed);
    let peak = n / 2;
    v[..peak].sort_unstable();
    v[peak..].sort_unstable_by(|a, b| b.cmp(a));
    v.rotate_left(n / 3);
    v
}

/// Nanoseconds per run of `f`, re-seeding `data` from `input` each rep.
fn time_kernel<K: Copy>(
    input: &[K],
    data: &mut Vec<K>,
    scratch: &mut Vec<K>,
    reps: u32,
    mut f: impl FnMut(&mut [K], &mut Vec<K>),
) -> u64 {
    // One untimed warm-up rep to fault in buffers and warm the icache.
    data.clear();
    data.extend_from_slice(input);
    f(data, scratch);
    let t0 = Instant::now();
    for _ in 0..reps {
        data.clear();
        data.extend_from_slice(input);
        f(data, scratch);
    }
    (t0.elapsed().as_nanos() / u128::from(reps.max(1))) as u64
}

fn calibration_reps(lg: u32) -> u32 {
    // Aim for roughly constant measured work per size: more reps at
    // small n where per-call noise dominates.
    match lg {
        0..=6 => 600,
        7..=9 => 160,
        10..=11 => 48,
        _ => 16,
    }
}

const CAL_MAX_LG: u32 = 12;
/// Interleaved measurement rounds per size; the minimum of each kernel's
/// rounds decides, so transient host noise cannot flip a comparison that
/// has one clean round.
const CAL_ROUNDS: u32 = 3;

/// Whether the network's time beats the seed's with an 8% margin. The
/// margin, plus the contiguous-prefix rule in the scans below (the first
/// decisive loss ends the scan), keeps the threshold conservative: a
/// single noisy network win past the true crossover must not extend the
/// table into sizes where dispatch would then lose to the seed.
fn network_wins(network: u64, seed: u64) -> bool {
    network.saturating_mul(100) <= seed.saturating_mul(92)
}

fn sort_crossover<K: CalKey>() -> u32 {
    let mut best = 0u32;
    let (mut data, mut scratch) = (Vec::new(), Vec::new());
    for lg in 2..=CAL_MAX_LG {
        let n = 1usize << lg;
        let input = random_keys::<K>(n, u64::from(lg) * 11 + 5);
        let reps = calibration_reps(lg);
        let (mut radix, mut bitonic) = (u64::MAX, u64::MAX);
        for _ in 0..CAL_ROUNDS {
            radix = radix.min(time_kernel(
                &input,
                &mut data,
                &mut scratch,
                reps,
                |d, s| {
                    crate::radix::radix_sort_with_scratch(d, s);
                },
            ));
            bitonic = bitonic.min(time_kernel(
                &input,
                &mut data,
                &mut scratch,
                reps,
                |d, _| {
                    crate::kernels::bitonic_sort_iterative(d, crate::Direction::Ascending);
                },
            ));
        }
        if network_wins(bitonic, radix) {
            best = lg;
        } else {
            break;
        }
    }
    best
}

fn merge_crossover<K: CalKey>() -> u32 {
    let mut best = 0u32;
    let (mut data, mut scratch) = (Vec::new(), Vec::new());
    for lg in 2..=CAL_MAX_LG {
        let n = 1usize << lg;
        let input = bitonic_keys::<K>(n, u64::from(lg) * 17 + 3);
        let reps = calibration_reps(lg);
        let (mut circular, mut network) = (u64::MAX, u64::MAX);
        for _ in 0..CAL_ROUNDS {
            circular = circular.min(time_kernel(
                &input,
                &mut data,
                &mut scratch,
                reps,
                |d, s| {
                    crate::bitonic_merge::sort_circular_with_scratch(
                        d,
                        s,
                        crate::Direction::Ascending,
                    );
                },
            ));
            network = network.min(time_kernel(
                &input,
                &mut data,
                &mut scratch,
                reps,
                |d, _| {
                    crate::kernels::bitonic_merge_iterative(d, crate::Direction::Ascending);
                },
            ));
        }
        if network_wins(network, circular) {
            best = lg;
        } else {
            break;
        }
    }
    best
}

/// Measure both crossovers for every width class on this host.
///
/// Costs a few tens of milliseconds; call once per process (or use
/// [`ensure_calibrated`], which does exactly that).
#[must_use]
pub fn calibrate() -> KernelTable {
    KernelTable {
        sort_bitonic_max_lg: [
            sort_crossover::<u16>(),
            sort_crossover::<u32>(),
            sort_crossover::<u64>(),
            sort_crossover::<u128>(),
        ],
        merge_network_max_lg: [
            merge_crossover::<u16>(),
            merge_crossover::<u32>(),
            merge_crossover::<u64>(),
            merge_crossover::<u128>(),
        ],
    }
}

/// Measure and [`install`] the dispatch table, once per process.
/// Subsequent calls are free. Returns `true` on the call that calibrated.
pub fn ensure_calibrated() -> bool {
    if CALIBRATED.swap(true, Ordering::SeqCst) {
        return false;
    }
    install(&calibrate());
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_classes_by_size() {
        assert_eq!(width_class::<u16>(), 0);
        assert_eq!(width_class::<u32>(), 1);
        assert_eq!(width_class::<i32>(), 1);
        assert_eq!(width_class::<u64>(), 2);
        assert_eq!(width_class::<u128>(), 3);
    }

    #[test]
    fn size_class_rounds_up() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(3), 2);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(1025), 11);
    }

    #[test]
    fn selection_respects_table() {
        let t = current();
        let max = t.sort_bitonic_max_lg[width_class::<u64>()];
        let small = 1usize << max;
        assert_eq!(select_sort_kernel::<u64>(small), Kernel::BitonicNetwork);
        let large = 1usize << (max + 1);
        assert_eq!(select_sort_kernel::<u64>(large), Kernel::Radix);
    }

    #[test]
    fn merge_selection_requires_power_of_two() {
        assert_eq!(select_merge_kernel::<u64>(100), Kernel::CircularMerge);
        let max = current().merge_network_max_lg[width_class::<u64>()];
        assert_eq!(
            select_merge_kernel::<u64>(1usize << max),
            Kernel::NetworkMerge
        );
        assert_eq!(
            select_merge_kernel::<u64>(1usize << (max + 3)),
            Kernel::CircularMerge
        );
    }

    #[test]
    fn tally_counts_and_resets() {
        clear_tally();
        bump(Kernel::Radix);
        bump(Kernel::Radix);
        bump(Kernel::NetworkMerge);
        let t = take_tally();
        assert_eq!(t, vec![("radix", 2), ("network_merge", 1)]);
        assert!(take_tally().is_empty(), "take must reset");
    }

    #[test]
    fn calibrated_table_is_plausible() {
        let t = calibrate();
        for w in 0..WIDTH_CLASSES {
            assert!(t.sort_bitonic_max_lg[w] <= CAL_MAX_LG);
            assert!(t.merge_network_max_lg[w] <= CAL_MAX_LG);
        }
    }
}
