//! `bitonic-sort` — sort key files with the thesis's parallel algorithms.
//!
//! ```text
//! bitonic-sort --random 1000000 --stats -o sorted.bin
//! bitonic-sort -a sample -p 16 --text -i keys.txt -o -
//! generate | bitonic-sort -a smart-fused > sorted.bin
//! printf '9 3 7\ndesc 1 5\n' | bitonic-sort serve --stats
//! ```

use std::io::{Read, Write};
use std::process::ExitCode;

/// The `serve` subcommand: batch request lines through the sort service.
fn serve(args: &[String]) -> ExitCode {
    let opts = match bitonic_cli::parse_serve_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let mut buf = Vec::new();
    let read_result = match opts.input.as_deref() {
        None | Some("-") => std::io::stdin().lock().read_to_end(&mut buf),
        Some(path) => std::fs::File::open(path).and_then(|mut f| f.read_to_end(&mut buf)),
    };
    if let Err(e) = read_result {
        eprintln!("reading input: {e}");
        return ExitCode::from(1);
    }
    match bitonic_cli::run_serve(&opts, &buf) {
        Ok(out) => {
            if let Some(report) = out.report {
                eprint!("{report}");
            }
            let write_result = match opts.output.as_deref() {
                None | Some("-") => std::io::stdout().lock().write_all(&out.bytes),
                Some(path) => std::fs::write(path, &out.bytes),
            };
            if let Err(e) = write_result {
                eprintln!("writing output: {e}");
                return ExitCode::from(1);
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve") {
        return serve(&args[1..]);
    }
    let opts = match bitonic_cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // Read input only when needed.
    let raw = if opts.random.is_some() {
        None
    } else {
        let mut buf = Vec::new();
        let result = match opts.input.as_deref() {
            None | Some("-") => std::io::stdin().lock().read_to_end(&mut buf),
            Some(path) => std::fs::File::open(path).and_then(|mut f| f.read_to_end(&mut buf)),
        };
        if let Err(e) = result {
            eprintln!("reading input: {e}");
            return ExitCode::from(1);
        }
        Some(buf)
    };

    match bitonic_cli::run(&opts, raw) {
        Ok(out) => {
            if let Some(report) = out.report {
                eprint!("{report}");
            }
            if let (Some(path), Some(json)) = (opts.trace.as_deref(), out.trace_json) {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("writing trace: {e}");
                    return ExitCode::from(1);
                }
            }
            let write_result = match opts.output.as_deref() {
                None | Some("-") => std::io::stdout().lock().write_all(&out.bytes),
                Some(path) => std::fs::write(path, &out.bytes),
            };
            if let Err(e) = write_result {
                eprintln!("writing output: {e}");
                return ExitCode::from(1);
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(1)
        }
    }
}
