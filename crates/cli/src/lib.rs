//! Library backing the `bitonic-sort` command-line tool.
//!
//! The binary is a thin wrapper over [`run`]; everything interesting —
//! argument parsing, sentinel padding for non-power-of-two inputs, the
//! dispatch over algorithms, the statistics report — lives here where it
//! can be unit-tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baselines::{run_baseline_chaos, Baseline};
use bitonic_core::algorithms::{run_parallel_sort_chaos, Algorithm};
use bitonic_core::local::LocalStrategy;
use local_sorts::ForceKernel;
use spmd::runtime::critical_path_stats;
use spmd::{traces_of, CommStats, FaultConfig, MessageMode, RankFailure, RankTrace, TraceConfig};

/// Which sorting engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// A bitonic variant from `bitonic-core`.
    Bitonic(Algorithm),
    /// A comparison sort from `baselines`.
    Baseline(Baseline),
}

impl Engine {
    /// Parse a user-facing engine name.
    pub fn parse(name: &str) -> Result<Engine, String> {
        Ok(match name {
            "smart" => Engine::Bitonic(Algorithm::Smart),
            "smart-fused" => Engine::Bitonic(Algorithm::SmartFused),
            "cyclic-blocked" => Engine::Bitonic(Algorithm::CyclicBlocked),
            "blocked-merge" => Engine::Bitonic(Algorithm::BlockedMerge),
            "sample" => Engine::Baseline(Baseline::Sample),
            "radix" => Engine::Baseline(Baseline::Radix),
            "column" => Engine::Baseline(Baseline::Column),
            other => {
                return Err(format!(
                    "unknown algorithm '{other}' (try: smart, smart-fused, cyclic-blocked, \
                     blocked-merge, sample, radix, column)"
                ))
            }
        })
    }
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Sorting engine (default: smart).
    pub engine: Engine,
    /// Virtual processors (default 8; any power of two).
    pub procs: usize,
    /// Short or long messages (default long).
    pub mode: MessageMode,
    /// Print communication statistics to stderr.
    pub stats: bool,
    /// Local-phase kernel policy: `auto` (calibrated dispatch, default),
    /// `radix`, or `bitonic`.
    pub local_kernel: ForceKernel,
    /// Input path (`-` or absent = stdin); binary little-endian u32 unless
    /// `text`.
    pub input: Option<String>,
    /// Output path (`-` or absent = stdout).
    pub output: Option<String>,
    /// Line-oriented decimal text instead of binary LE u32.
    pub text: bool,
    /// Generate this many random keys instead of reading input.
    pub random: Option<usize>,
    /// Record per-rank spans and write a Chrome trace JSON here (viewable
    /// in Perfetto / `chrome://tracing`).
    pub trace: Option<String>,
    /// Seed for deterministic fault injection; `Some` arms the chaos
    /// layer (combine with the rate/stall flags below).
    pub chaos_seed: Option<u64>,
    /// Per-message drop probability under chaos.
    pub drop_rate: f64,
    /// Per-message duplication probability under chaos.
    pub dup_rate: f64,
    /// Per-message reorder probability under chaos.
    pub reorder_rate: f64,
    /// Maximum injected per-message latency, microseconds.
    pub jitter_us: u64,
    /// Rank afflicted with a per-collective stall.
    pub stall_rank: Option<usize>,
    /// Stall length per collective, microseconds.
    pub stall_us: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            engine: Engine::Bitonic(Algorithm::Smart),
            procs: 8,
            mode: MessageMode::Long,
            stats: false,
            local_kernel: ForceKernel::Auto,
            input: None,
            output: None,
            text: false,
            random: None,
            trace: None,
            chaos_seed: None,
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            jitter_us: 0,
            stall_rank: None,
            stall_us: 0,
        }
    }
}

impl Options {
    /// The fault configuration these options describe.
    ///
    /// Without `--chaos-seed` this is [`FaultConfig::off`] regardless of
    /// the other chaos flags — the seed is the master switch. With it,
    /// unspecified rates default to the moderate [`FaultConfig::chaos`]
    /// preset values only when *no* class flag was given at all;
    /// otherwise exactly the requested classes are active.
    #[must_use]
    pub fn fault_config(&self) -> FaultConfig {
        let Some(seed) = self.chaos_seed else {
            return FaultConfig::off();
        };
        let any_class = self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.reorder_rate > 0.0
            || self.jitter_us > 0
            || self.stall_rank.is_some();
        if !any_class {
            return FaultConfig::chaos(seed);
        }
        FaultConfig {
            seed,
            drop_rate: self.drop_rate,
            dup_rate: self.dup_rate,
            reorder_rate: self.reorder_rate,
            jitter_us: self.jitter_us,
            stall_rank: self.stall_rank,
            stall_us: if self.stall_rank.is_some() && self.stall_us == 0 {
                // --stall-rank alone still means "stall that rank".
                200
            } else {
                self.stall_us
            },
            watchdog: Some(std::time::Duration::from_secs(30)),
            ..FaultConfig::off()
        }
    }
}

/// Parse CLI arguments (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "-a" | "--algorithm" => opts.engine = Engine::parse(&value_for(arg)?)?,
            "-p" | "--procs" => {
                opts.procs = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --procs: {e}"))?;
                if !opts.procs.is_power_of_two() {
                    return Err("--procs must be a power of two".into());
                }
            }
            "--short-messages" => opts.mode = MessageMode::Short,
            "--stats" => opts.stats = true,
            "--local-kernel" => {
                opts.local_kernel = match value_for(arg)?.as_str() {
                    "auto" => ForceKernel::Auto,
                    "radix" => ForceKernel::Radix,
                    "bitonic" => ForceKernel::Bitonic,
                    other => {
                        return Err(format!(
                            "bad --local-kernel '{other}' (try: auto, radix, bitonic)"
                        ))
                    }
                }
            }
            "--text" => opts.text = true,
            "-i" | "--input" => opts.input = Some(value_for(arg)?),
            "-o" | "--output" => opts.output = Some(value_for(arg)?),
            "--random" => {
                opts.random = Some(
                    value_for(arg)?
                        .parse()
                        .map_err(|e| format!("bad --random: {e}"))?,
                )
            }
            "--trace" => opts.trace = Some(value_for(arg)?),
            "--chaos-seed" => {
                opts.chaos_seed = Some(
                    value_for(arg)?
                        .parse()
                        .map_err(|e| format!("bad --chaos-seed: {e}"))?,
                )
            }
            "--drop-rate" => {
                opts.drop_rate = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --drop-rate: {e}"))?;
                if !(0.0..1.0).contains(&opts.drop_rate) {
                    return Err("--drop-rate must be in [0, 1)".into());
                }
            }
            "--dup-rate" => {
                opts.dup_rate = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --dup-rate: {e}"))?;
                if !(0.0..1.0).contains(&opts.dup_rate) {
                    return Err("--dup-rate must be in [0, 1)".into());
                }
            }
            "--reorder-rate" => {
                opts.reorder_rate = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --reorder-rate: {e}"))?;
                if !(0.0..1.0).contains(&opts.reorder_rate) {
                    return Err("--reorder-rate must be in [0, 1)".into());
                }
            }
            "--jitter-us" => {
                opts.jitter_us = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --jitter-us: {e}"))?
            }
            "--stall-rank" => {
                opts.stall_rank = Some(
                    value_for(arg)?
                        .parse()
                        .map_err(|e| format!("bad --stall-rank: {e}"))?,
                )
            }
            "--stall-us" => {
                opts.stall_us = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --stall-us: {e}"))?
            }
            "-h" | "--help" => return Err(usage()),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(opts)
}

/// The usage string.
#[must_use]
pub fn usage() -> String {
    "usage: bitonic-sort [-a ALGO] [-p PROCS] [--short-messages] [--stats] [--text]\n\
     \u{20}                   [-i FILE|-] [-o FILE|-] [--random N] [--trace FILE]\n\
     \u{20}                   [--local-kernel auto|radix|bitonic]\n\
     \u{20}                   [--chaos-seed N [--drop-rate P] [--dup-rate P] [--reorder-rate P]\n\
     \u{20}                    [--jitter-us U] [--stall-rank R] [--stall-us U]]\n\
     ALGO: smart | smart-fused | cyclic-blocked | blocked-merge | sample | radix | column\n\
     Input is binary little-endian u32 (or decimal lines with --text).\n\
     --local-kernel forces the local-phase kernel family (default auto: the\n\
     calibrated per-size-class dispatch table picks radix vs branch-free networks).\n\
     --trace writes a Chrome trace JSON (open in Perfetto / chrome://tracing).\n\
     --chaos-seed arms deterministic fault injection: the mesh drops/duplicates/\n\
     reorders/delays messages per the given rates (all derived from the seed; the\n\
     sort must still come out correct). Without class flags a moderate all-classes\n\
     preset is used.\n\
     `bitonic-sort serve` batches request lines through a warm sort service\n\
     (see `bitonic-sort serve --help`)."
        .to_string()
}

/// Pad `keys` with `u32::MAX` sentinels up to the next power-of-two
/// multiple of `procs`, returning the padded vector and the original
/// length. The sorted prefix of the original length is exactly the sorted
/// input (sentinels are maximal).
#[must_use]
pub fn pad_keys(mut keys: Vec<u32>, procs: usize) -> (Vec<u32>, usize) {
    let len = keys.len();
    let per = len.div_ceil(procs).next_power_of_two().max(2);
    keys.resize(per * procs, u32::MAX);
    (keys, len)
}

/// Sort `keys` with the chosen engine, returning the sorted keys and the
/// critical-path communication statistics.
///
/// # Panics
/// Panics if the chaos watchdog declares the machine wedged — use
/// [`sort_keys_traced`] to handle that as an error.
#[must_use]
pub fn sort_keys(keys: Vec<u32>, opts: &Options) -> (Vec<u32>, CommStats) {
    let (out, stats, _) =
        sort_keys_traced(keys, opts, TraceConfig::off()).expect("machine declared wedged");
    (out, stats)
}

/// [`sort_keys`] plus the per-rank span traces recorded under `trace`
/// (empty traces when it is [`TraceConfig::off`]). Runs under the fault
/// plan described by the options' chaos flags ([`Options::fault_config`];
/// off unless `--chaos-seed` was given).
///
/// # Errors
/// A [`RankFailure`] when the chaos watchdog declared the machine wedged.
pub fn sort_keys_traced(
    keys: Vec<u32>,
    opts: &Options,
    trace: TraceConfig,
) -> Result<(Vec<u32>, CommStats, Vec<RankTrace>), RankFailure> {
    local_sorts::dispatch::set_force(opts.local_kernel);
    let fault = opts.fault_config();
    let (padded, len) = pad_keys(keys, opts.procs);
    let (mut out, stats, traces) = match opts.engine {
        Engine::Bitonic(algo) => {
            let run = run_parallel_sort_chaos(
                &padded,
                opts.procs,
                opts.mode,
                algo,
                LocalStrategy::Merges,
                trace,
                fault,
            )?;
            (
                run.output,
                critical_path_stats(&run.ranks),
                traces_of(&run.ranks),
            )
        }
        Engine::Baseline(which) => {
            let run = run_baseline_chaos(&padded, opts.procs, opts.mode, which, trace, fault)?;
            (
                run.output,
                critical_path_stats(&run.ranks),
                traces_of(&run.ranks),
            )
        }
    };
    out.truncate(len);
    Ok((out, stats, traces))
}

/// Render the `--stats` report.
#[must_use]
pub fn stats_report(stats: &CommStats, keys: usize) -> String {
    use spmd::Phase;
    let mut s = String::new();
    s.push_str(&format!(
        "keys: {keys}\ncommunication steps (R): {}\nelements sent/proc (V): {}\nmessages sent/proc (M): {}\n",
        stats.remap_count(),
        stats.elements_sent,
        stats.messages_sent
    ));
    for (label, phase) in [
        ("compute", Phase::Compute),
        ("pack", Phase::Pack),
        ("transfer", Phase::Transfer),
        ("unpack", Phase::Unpack),
        ("barrier", Phase::Barrier),
    ] {
        s.push_str(&format!(
            "{label:>9}: {:.3} ms\n",
            stats.time(phase).as_secs_f64() * 1e3
        ));
    }
    if stats.plan_hits + stats.plan_misses > 0 {
        s.push_str(&format!(
            "plan cache: {} hits, {} misses ({:.1}% hit rate)\n",
            stats.plan_hits,
            stats.plan_misses,
            stats.plan_hits as f64 * 100.0 / (stats.plan_hits + stats.plan_misses) as f64
        ));
    }
    if !stats.local_kernels.is_empty() {
        let kernels: Vec<String> = stats
            .local_kernels
            .iter()
            .map(|(name, count)| format!("{count} {name}"))
            .collect();
        s.push_str(&format!("local kernels: {}\n", kernels.join(", ")));
    }
    let f = &stats.faults;
    if f.total_injected() > 0 || f.retries > 0 || f.nacks_sent > 0 || f.dups_suppressed > 0 {
        s.push_str(&format!(
            "faults injected: {} drops, {} dups, {} reorders, {} jittered, {} stalls\n\
             recovery: {} retries, {} nacks, {} duplicates suppressed\n",
            f.drops_injected,
            f.dups_injected,
            f.reorders_injected,
            f.jitter_events,
            f.stalls_injected,
            f.retries,
            f.nacks_sent,
            f.dups_suppressed,
        ));
    }
    s
}

/// Decode keys from bytes (binary LE u32 or decimal lines).
pub fn decode(bytes: &[u8], text: bool) -> Result<Vec<u32>, String> {
    if text {
        String::from_utf8_lossy(bytes)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                l.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad key '{l}': {e}"))
            })
            .collect()
    } else {
        if !bytes.len().is_multiple_of(4) {
            return Err(format!(
                "binary input length {} is not a multiple of 4",
                bytes.len()
            ));
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Encode keys to bytes (binary LE u32 or decimal lines).
#[must_use]
pub fn encode(keys: &[u32], text: bool) -> Vec<u8> {
    if text {
        let mut s = String::with_capacity(keys.len() * 8);
        for k in keys {
            s.push_str(&k.to_string());
            s.push('\n');
        }
        s.into_bytes()
    } else {
        keys.iter().flat_map(|k| k.to_le_bytes()).collect()
    }
}

/// What one end-to-end [`run`] produced.
#[derive(Debug)]
pub struct RunOutput {
    /// The encoded sorted keys.
    pub bytes: Vec<u8>,
    /// The `--stats` report, when requested.
    pub report: Option<String>,
    /// The Chrome trace JSON, when `--trace` was given.
    pub trace_json: Option<String>,
}

/// End-to-end pipeline used by `main`: produce the input keys, sort,
/// return the encoded output plus any requested reports.
pub fn run(opts: &Options, raw_input: Option<Vec<u8>>) -> Result<RunOutput, String> {
    let keys = match (opts.random, raw_input) {
        (Some(n), _) => {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(0xB170_41C5);
            (0..n).map(|_| rng.gen_range(0..1u32 << 31)).collect()
        }
        (None, Some(bytes)) => decode(&bytes, opts.text)?,
        (None, None) => return Err("no input: pass --input, pipe stdin, or use --random N".into()),
    };
    if keys.is_empty() {
        return Ok(RunOutput {
            bytes: Vec::new(),
            report: opts.stats.then(|| "keys: 0\n".to_string()),
            trace_json: None,
        });
    }
    let count = keys.len();
    let config = if opts.trace.is_some() {
        TraceConfig::on()
    } else {
        TraceConfig::off()
    };
    let (sorted, stats, traces) =
        sort_keys_traced(keys, opts, config).map_err(|f| format!("machine wedged: {f}"))?;
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let mut report = opts.stats.then(|| stats_report(&stats, count));
    if let (Some(r), true) = (report.as_mut(), opts.trace.is_some()) {
        // Ring-overflow accounting: spans silently displaced under the
        // drop-oldest policy would otherwise skew any timing read off the
        // trace. Zero is worth printing — it certifies the trace complete.
        let dropped: u64 = traces.iter().map(|t| t.dropped).sum();
        r.push_str(&format!("trace events dropped: {dropped}\n"));
    }
    let trace_json = opts
        .trace
        .is_some()
        .then(|| obs::chrome_trace_json(&traces));
    Ok(RunOutput {
        bytes: encode(&sorted, opts.text),
        report,
        trace_json,
    })
}

/// Options for the `bitonic-sort serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Ranks per warm machine (default 4; any power of two).
    pub procs: usize,
    /// Size-class shards (default 1 = a single pool). With more than
    /// one, requests route by size through a [`sort_service::Router`]
    /// over [`sort_service::ShardedConfig::banded`] pools.
    pub shards: usize,
    /// Accept requests larger than every band via cross-shard bulk
    /// sorts (split/scatter/merge) instead of refusing them as too
    /// large. Implies the sharded front even at `--shards 1`.
    pub bulk: bool,
    /// Print the service statistics report to stderr.
    pub stats: bool,
    /// Print a live metrics snapshot to stderr every this many seconds
    /// (plus one final snapshot when the input drains).
    pub metrics_every: Option<u64>,
    /// Input path (`-` or absent = stdin), one request per line.
    pub input: Option<String>,
    /// Output path (`-` or absent = stdout), one sorted line per request.
    pub output: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            procs: 4,
            shards: 1,
            bulk: false,
            stats: false,
            metrics_every: None,
            input: None,
            output: None,
        }
    }
}

/// The `serve` usage string.
#[must_use]
pub fn serve_usage() -> String {
    "usage: bitonic-sort serve [-p PROCS] [--shards N] [--bulk] [--stats]\n\
     \u{20}                         [--metrics-every SECS] [-i FILE|-] [-o FILE|-]\n\
     Each input line is one sort request: an optional 'asc' or 'desc' token,\n\
     optional 'deadline=MICROS', 'width=1|2|4|8|16' (default 4) and\n\
     'payload=HEX' tokens, then decimal keys — the same grammar the TCP wire\n\
     frontend's text parser accepts. A width above 4 or a payload makes the\n\
     line a record request: the payload is carried opaquely (stride = bytes /\n\
     key count) and echoed back in key order as 'payload=HEX'. All requests are\n\
     submitted to one warm-pool sort service, which coalesces them into\n\
     tagged batches; each output line is the matching request's keys in its\n\
     requested order.\n\
     --shards N > 1 splits the service into N size-class shards, each with\n\
     its own warm pool; requests route by size and idle shards steal aged\n\
     work from busy neighbors.\n\
     --bulk accepts requests larger than every band: splitter-selection\n\
     sampling cuts the keys into per-shard sub-requests, each shard sorts\n\
     its partition in band, and a k-way merge reassembles the reply.\n\
     --metrics-every SECS prints a per-class snapshot of the live metrics\n\
     registry (queue depth, latency quantiles, shed rate, LogP drift) to\n\
     stderr every SECS seconds, plus once when the input drains."
        .to_string()
}

/// Parse `serve` subcommand arguments (excluding `argv[0]` and `serve`).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "-p" | "--procs" => {
                opts.procs = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --procs: {e}"))?;
                if !opts.procs.is_power_of_two() {
                    return Err("--procs must be a power of two".into());
                }
            }
            "--shards" => {
                opts.shards = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--bulk" => opts.bulk = true,
            "--stats" => opts.stats = true,
            "--metrics-every" => {
                let secs: u64 = value_for(arg)?
                    .parse()
                    .map_err(|e| format!("bad --metrics-every: {e}"))?;
                if secs == 0 {
                    return Err("--metrics-every must be at least 1 second".into());
                }
                opts.metrics_every = Some(secs);
            }
            "-i" | "--input" => opts.input = Some(value_for(arg)?),
            "-o" | "--output" => opts.output = Some(value_for(arg)?),
            "-h" | "--help" => return Err(serve_usage()),
            other => return Err(format!("unknown flag '{other}'\n{}", serve_usage())),
        }
    }
    Ok(opts)
}

/// Parse one request line: an optional `asc`/`desc` token, optional
/// `deadline=<µs>`, `width=<1|2|4|8|16>` and `payload=<hex>` tokens,
/// then keys. Delegates to the wire codec's text parser so the stdin
/// and TCP frontends share one validation path — every stdin request
/// round-trips through the exact `SORT_1` frame checks a socket peer's
/// request would face.
fn parse_request(line: &str) -> Result<sort_service::RequestFrame, String> {
    sort_service::net::parse_text_request(line)
}

/// Render bytes as lowercase hex (the `payload=` output token).
fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Render one record reply line: decimal keys in their sorted order,
/// then a `payload=<hex>` token when the request carried one.
fn record_reply_line(reply: &sort_service::RecordReply) -> String {
    use sort_service::RecordKeys;
    let keys: Vec<String> = match &reply.keys {
        RecordKeys::U32(k) => k.iter().map(u32::to_string).collect(),
        RecordKeys::U64(k) => k.iter().map(u64::to_string).collect(),
        RecordKeys::U128(k) => k.iter().map(u128::to_string).collect(),
    };
    let mut line = keys.join(" ");
    if reply.stride > 0 {
        line.push_str(" payload=");
        line.push_str(&to_hex(&reply.payload));
    }
    line
}

/// Render the `serve --stats` report.
#[must_use]
pub fn serve_stats_report(stats: &sort_service::ServiceStats) -> String {
    format!(
        "requests: {} submitted, {} admitted, {} shed, {} completed\n\
         batches: {} ({:.2} requests/batch, largest {} requests)\n\
         plan cache: {} hits, {} misses ({:.1}% hit rate)\n\
         failures: {} expired, {} failed, {} machines rebuilt\n",
        stats.submitted,
        stats.admitted,
        stats.shed,
        stats.completed,
        stats.batches,
        stats.requests_per_batch(),
        stats.largest_batch,
        stats.pool.plan_hits,
        stats.pool.plan_misses,
        stats.pool.plan_hit_rate() * 100.0,
        stats.expired,
        stats.failed,
        stats.pool.machines_rebuilt,
    )
}

/// Render the `serve --shards N --stats` report: one line per shard.
#[must_use]
pub fn sharded_stats_report(stats: &sort_service::ShardedStats) -> String {
    let mut out = format!(
        "shards: {}, {} requests completed, {} shed ({} unroutable), {} steals\n",
        stats.shards.len(),
        stats.completed(),
        stats.shed(),
        stats.unroutable,
        stats.steals(),
    );
    for s in &stats.shards {
        out.push_str(&format!(
            "  {}: {} submitted, {} completed, {} batches, {} stolen away, \
             {} machines ({} hits / {} misses, {:.1}% plan hit rate)\n",
            s.class,
            s.submitted,
            s.completed,
            s.batches,
            s.stolen_requests,
            s.pool.machines,
            s.pool.plan_hits,
            s.pool.plan_misses,
            s.pool.plan_hit_rate() * 100.0,
        ));
    }
    if stats.bulk_submitted > 0 {
        out.push_str(&format!(
            "bulk: {} submitted, {} completed, {} failed\n",
            stats.bulk_submitted, stats.bulk_completed, stats.bulk_failed,
        ));
    }
    out
}

/// End-to-end `serve` pipeline: parse request lines, run them through a
/// warm-pool sort service — sharded by size class when `--shards` asks
/// for more than one — and render one sorted line per request.
///
/// # Errors
/// A malformed request line, a shed request, or a failed batch.
pub fn run_serve(opts: &ServeOptions, raw_input: &[u8]) -> Result<RunOutput, String> {
    use sort_service::{
        RecordTicket, RequestFrame, ServiceConfig, ShardedConfig, ShardedService, SortService,
        Ticket,
    };
    let requests: Vec<RequestFrame> = String::from_utf8_lossy(raw_input)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_request)
        .collect::<Result<_, _>>()?;

    enum Front {
        Single(SortService),
        Sharded(ShardedService),
    }
    let front = if opts.shards > 1 || opts.bulk {
        let cfg = if opts.bulk {
            ShardedConfig::banded_bulk(opts.procs, opts.shards)
        } else {
            ShardedConfig::banded(opts.procs, opts.shards)
        };
        Front::Sharded(ShardedService::start(cfg))
    } else {
        Front::Single(SortService::start(ServiceConfig::new(opts.procs)))
    };
    let metrics = match &front {
        Front::Single(s) => s.metrics(),
        Front::Sharded(s) => s.metrics(),
    };
    // --metrics-every: a ticker thread printing live registry snapshots to
    // stderr. Parked rather than slept so shutdown doesn't wait out the
    // final period.
    let ticker = opts.metrics_every.zip(metrics.clone()).map(|(secs, m)| {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let flag = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let period = std::time::Duration::from_secs(secs);
            loop {
                std::thread::park_timeout(period);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                eprint!("{}", m.brief());
            }
        });
        (stop, handle)
    });
    enum AnyTicket {
        Plain(Ticket),
        Record(RecordTicket),
    }
    let tickets: Vec<AnyTicket> = requests
        .into_iter()
        .map(|frame| {
            if frame.is_record() {
                let request = frame
                    .into_record_request()
                    .map_err(|e| format!("invalid request: {e}"))?;
                match &front {
                    Front::Single(s) => s.submit_record(request),
                    Front::Sharded(s) => s.submit_record(request),
                }
                .map(AnyTicket::Record)
            } else {
                let request = frame
                    .into_request()
                    .map_err(|e| format!("invalid request: {e}"))?;
                match &front {
                    Front::Single(s) => s.submit(request),
                    Front::Sharded(s) => s.submit(request),
                }
                .map(AnyTicket::Plain)
            }
            .map_err(|r| format!("request shed: {r}"))
        })
        .collect::<Result<_, _>>()?;

    let mut out = String::new();
    for ticket in tickets {
        match ticket {
            AnyTicket::Plain(t) => {
                let sorted = t.wait().map_err(|e| format!("request failed: {e}"))?;
                let line: Vec<String> = sorted.iter().map(u32::to_string).collect();
                out.push_str(&line.join(" "));
            }
            AnyTicket::Record(t) => {
                let reply = t.wait().map_err(|e| format!("request failed: {e}"))?;
                out.push_str(&record_reply_line(&reply));
            }
        }
        out.push('\n');
    }
    if let Some((stop, handle)) = ticker {
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.thread().unpark();
        let _ = handle.join();
    }
    let report = match front {
        Front::Single(s) => {
            let stats = s.shutdown().stats;
            opts.stats.then(|| serve_stats_report(&stats))
        }
        Front::Sharded(s) => {
            let stats = s.shutdown().stats;
            opts.stats.then(|| sharded_stats_report(&stats))
        }
    };
    // One final snapshot, after shutdown has joined the dispatcher, so
    // short runs (shorter than a period) still show their true totals.
    if opts.metrics_every.is_some() {
        if let Some(m) = &metrics {
            eprint!("{}", m.brief());
        }
    }
    Ok(RunOutput {
        bytes: out.into_bytes(),
        report,
        trace_json: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_typical_invocations() {
        let o = parse_args(&args("-a sample -p 4 --stats --text -i in.txt -o out.txt")).unwrap();
        assert_eq!(o.engine, Engine::Baseline(Baseline::Sample));
        assert_eq!(o.procs, 4);
        assert!(o.stats && o.text);
        assert_eq!(o.input.as_deref(), Some("in.txt"));
        let o = parse_args(&args("--random 1000")).unwrap();
        assert_eq!(o.random, Some(1000));
        assert_eq!(
            o.engine,
            Engine::Bitonic(Algorithm::Smart),
            "default engine"
        );
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&args("--bogus")).is_err());
        assert!(parse_args(&args("-p 7")).is_err(), "non power of two");
        assert!(parse_args(&args("-a quicksort")).is_err());
        assert!(parse_args(&args("-i")).is_err(), "missing value");
    }

    #[test]
    fn padding_is_minimal_and_truncation_safe() {
        let (padded, len) = pad_keys(vec![5, 3, 1], 4);
        assert_eq!(len, 3);
        assert_eq!(padded.len(), 8, "ceil(3/4)=1 -> 2 per proc minimum");
        assert!(padded[3..].iter().all(|&k| k == u32::MAX));
        let (padded, _) = pad_keys((0..100).collect(), 8);
        assert_eq!(padded.len(), 16 * 8);
    }

    #[test]
    fn binary_and_text_round_trip() {
        let keys = vec![0u32, 1, 42, u32::MAX];
        assert_eq!(decode(&encode(&keys, false), false).unwrap(), keys);
        assert_eq!(decode(&encode(&keys, true), true).unwrap(), keys);
        assert!(decode(&[1, 2, 3], false).is_err(), "ragged binary");
        assert!(decode(b"12\nnope\n", true).is_err());
    }

    #[test]
    fn end_to_end_sorts_text() {
        let opts = parse_args(&args("--text -p 4 -a smart")).unwrap();
        let out = run(&opts, Some(b"9\n3\n7\n1\n1\n".to_vec())).unwrap();
        assert_eq!(String::from_utf8(out.bytes).unwrap(), "1\n1\n3\n7\n9\n");
        assert!(out.report.is_none());
        assert!(out.trace_json.is_none());
    }

    #[test]
    fn trace_flag_produces_chrome_json() {
        let opts = parse_args(&args("-p 4 --random 256 --trace t.json")).unwrap();
        assert_eq!(opts.trace.as_deref(), Some("t.json"));
        let out = run(&opts, None).unwrap();
        let json = out.trace_json.expect("--trace requests a trace");
        assert!(json.contains("\"traceEvents\""));
        for rank in 0..4 {
            assert!(json.contains(&format!("\"name\":\"rank {rank}\"")));
        }
        for phase in ["compute", "pack", "transfer", "unpack", "barrier"] {
            assert!(json.contains(&format!("\"name\":\"{phase}\"")), "{phase}");
        }
    }

    #[test]
    fn end_to_end_every_engine() {
        for engine in [
            "smart",
            "smart-fused",
            "cyclic-blocked",
            "blocked-merge",
            "sample",
            "radix",
            "column",
        ] {
            let opts =
                parse_args(&args(&format!("-a {engine} -p 4 --random 1000 --stats"))).unwrap();
            let out = run(&opts, None).unwrap();
            let keys = decode(&out.bytes, false).unwrap();
            assert_eq!(keys.len(), 1000, "{engine}");
            assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{engine}");
            assert!(
                out.report.unwrap().contains("communication steps"),
                "{engine}"
            );
        }
    }

    #[test]
    fn chaos_flags_parse_and_arm_the_fault_layer() {
        let o = parse_args(&args(
            "--chaos-seed 42 --drop-rate 0.05 --jitter-us 20 --stall-rank 2 --stall-us 100",
        ))
        .unwrap();
        let f = o.fault_config();
        assert_eq!(f.seed, 42);
        assert!((f.drop_rate - 0.05).abs() < 1e-12);
        assert_eq!(f.dup_rate, 0.0, "unrequested classes stay off");
        assert_eq!(f.jitter_us, 20);
        assert_eq!(f.stall_rank, Some(2));
        assert_eq!(f.stall_us, 100);
        assert!(f.enabled());

        // Seed alone: the moderate all-classes preset.
        let o = parse_args(&args("--chaos-seed 7")).unwrap();
        assert_eq!(o.fault_config(), spmd::FaultConfig::chaos(7));

        // No seed: chaos flags are inert.
        let o = parse_args(&args("--drop-rate 0.5")).unwrap();
        assert!(!o.fault_config().enabled());

        assert!(parse_args(&args("--drop-rate 1.0")).is_err(), "rate bound");
        assert!(parse_args(&args("--chaos-seed nope")).is_err());
    }

    #[test]
    fn chaos_run_still_sorts_and_reports_faults() {
        let opts = parse_args(&args(
            "-p 4 --random 512 --stats --chaos-seed 11 --drop-rate 0.1 --jitter-us 10",
        ))
        .unwrap();
        let out = run(&opts, None).unwrap();
        let keys = decode(&out.bytes, false).unwrap();
        assert_eq!(keys.len(), 512);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "sorted under chaos");
        let report = out.report.unwrap();
        assert!(
            report.contains("faults injected"),
            "fault counters surface in --stats:\n{report}"
        );
    }

    #[test]
    fn keys_containing_sentinel_values_survive() {
        let opts = parse_args(&args("-p 4")).unwrap();
        let keys = vec![u32::MAX, 0, u32::MAX, 5];
        let (sorted, _) = sort_keys(keys, &opts);
        assert_eq!(sorted, vec![0, 5, u32::MAX, u32::MAX]);
    }

    #[test]
    fn stats_report_shows_the_plan_cache_line() {
        let opts = parse_args(&args("-p 4 --random 512 --stats")).unwrap();
        let out = run(&opts, None).unwrap();
        let report = out.report.unwrap();
        assert!(
            report.contains("plan cache:"),
            "smart sorts route through the tracked plan cache:\n{report}"
        );
    }

    #[test]
    fn local_kernel_flag_parses_and_rejects() {
        assert_eq!(
            parse_args(&args("--local-kernel auto"))
                .unwrap()
                .local_kernel,
            ForceKernel::Auto
        );
        assert_eq!(
            parse_args(&args("--local-kernel radix"))
                .unwrap()
                .local_kernel,
            ForceKernel::Radix
        );
        assert_eq!(
            parse_args(&args("--local-kernel bitonic"))
                .unwrap()
                .local_kernel,
            ForceKernel::Bitonic
        );
        assert!(parse_args(&args("--local-kernel quick")).is_err());
        assert!(parse_args(&args("--local-kernel")).is_err());
    }

    #[test]
    fn stats_report_names_the_local_kernels() {
        let opts = parse_args(&args("-p 4 --random 512 --stats")).unwrap();
        let out = run(&opts, None).unwrap();
        let report = out.report.unwrap();
        assert!(
            report.contains("local kernels:"),
            "kernel tally surfaces in --stats:\n{report}"
        );
        // Forcing the seed family shows up by name in the report.
        let opts = parse_args(&args("-p 4 --random 512 --stats --local-kernel radix")).unwrap();
        let out = run(&opts, None).unwrap();
        let report = out.report.unwrap();
        assert!(report.contains("radix"), "{report}");
        local_sorts::dispatch::set_force(ForceKernel::Auto);
    }

    #[test]
    fn serve_args_parse_and_reject() {
        let o = parse_serve_args(&args("-p 2 --stats -i in.txt")).unwrap();
        assert_eq!(o.procs, 2);
        assert_eq!(o.shards, 1, "single pool unless asked");
        assert!(o.stats);
        assert_eq!(o.metrics_every, None);
        assert_eq!(o.input.as_deref(), Some("in.txt"));
        let o = parse_serve_args(&args("--shards 2 --metrics-every 5")).unwrap();
        assert_eq!(o.shards, 2);
        assert_eq!(o.metrics_every, Some(5));
        assert!(!o.bulk, "bulk is opt-in");
        let o = parse_serve_args(&args("--shards 2 --bulk")).unwrap();
        assert!(o.bulk);
        assert!(
            parse_serve_args(&args("--metrics-every 0")).is_err(),
            "zero period"
        );
        assert!(parse_serve_args(&args("--metrics-every nope")).is_err());
        assert!(parse_serve_args(&args("-p 3")).is_err(), "non power of two");
        assert!(
            parse_serve_args(&args("--shards 0")).is_err(),
            "zero shards"
        );
        assert!(parse_serve_args(&args("--bogus")).is_err());
        assert!(parse_serve_args(&args("--help")).is_err(), "usage via Err");
    }

    #[test]
    fn serve_round_trips_mixed_request_lines() {
        let opts = ServeOptions {
            procs: 2,
            stats: true,
            ..Default::default()
        };
        let input = b"9 3 7 1\ndesc 4 8 6\n\nasc 5\n2 2 2\n";
        let out = run_serve(&opts, input).unwrap();
        assert_eq!(
            String::from_utf8(out.bytes).unwrap(),
            "1 3 7 9\n8 6 4\n5\n2 2 2\n"
        );
        let report = out.report.unwrap();
        assert!(report.contains("4 admitted"), "{report}");
        assert!(report.contains("plan cache:"), "{report}");
    }

    #[test]
    fn sharded_serve_answers_every_line_and_reports_per_shard() {
        let opts = ServeOptions {
            procs: 2,
            shards: 2,
            stats: true,
            ..Default::default()
        };
        let input = b"9 3 7 1\ndesc 4 8 6\nasc 5\n2 2 2\n";
        let out = run_serve(&opts, input).unwrap();
        assert_eq!(
            String::from_utf8(out.bytes).unwrap(),
            "1 3 7 9\n8 6 4\n5\n2 2 2\n"
        );
        let report = out.report.unwrap();
        assert!(report.contains("shards: 2"), "{report}");
        assert!(report.contains("small:"), "{report}");
        assert!(report.contains("bulk:"), "{report}");
        assert!(report.contains("% plan hit rate"), "{report}");
    }

    #[test]
    fn bulk_serve_answers_an_over_band_request() {
        let opts = ServeOptions {
            procs: 2,
            shards: 2,
            bulk: true,
            stats: true,
            ..Default::default()
        };
        // One request beyond the widest band (16384 keys at the default
        // shape), plus a small one to show normal routing still works.
        let n = 20_000u32;
        let keys: Vec<String> = (0..n)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(7).to_string())
            .collect();
        let input = format!("{}\n5 1 3\n", keys.join(" "));
        let out = run_serve(&opts, input.as_bytes()).unwrap();
        let text = String::from_utf8(out.bytes).unwrap();
        let mut lines = text.lines();
        let big: Vec<u32> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let mut expect: Vec<u32> = (0..n)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(7))
            .collect();
        expect.sort_unstable();
        assert_eq!(big, expect, "bulk reply is oracle-identical");
        assert_eq!(lines.next().unwrap(), "1 3 5");
        let report = out.report.unwrap();
        assert!(
            report.contains("bulk: 1 submitted, 1 completed"),
            "{report}"
        );
    }

    #[test]
    fn serve_rejects_malformed_lines() {
        let opts = ServeOptions::default();
        assert!(run_serve(&opts, b"1 2 nope\n").is_err());
        // Direction tokens must lead the line — same rule as before the
        // parser was unified with the wire codec's.
        assert!(run_serve(&opts, b"1 asc 2\n").is_err());
        assert!(run_serve(&opts, b"deadline=abc 1 2\n").is_err());
    }

    /// Record lines — wide keys and/or payload tokens — ride the record
    /// path and come back with their payload permuted into key order.
    #[test]
    fn serve_answers_record_lines_with_payload_in_key_order() {
        let opts = ServeOptions {
            procs: 2,
            ..Default::default()
        };
        let input = b"width=8 payload=61626364 2 1\n\
                      desc width=16 340282366920938463463374607431768211455 7\n\
                      payload=aabb 9 3\n";
        let out = run_serve(&opts, input).unwrap();
        assert_eq!(
            String::from_utf8(out.bytes).unwrap(),
            "1 2 payload=63646162\n\
             340282366920938463463374607431768211455 7\n\
             3 9 payload=bbaa\n"
        );
        assert!(run_serve(&opts, b"payload=abc 1 2\n").is_err(), "odd hex");
        assert!(
            run_serve(&opts, b"width=2 5 1\n").is_err(),
            "width 2 decodes but the service refuses it"
        );
    }

    /// The stdin frontend shares the wire codec's parser: the deadline
    /// token works, and ordinary lines sort exactly as they always have.
    #[test]
    fn serve_accepts_wire_grammar_deadlines() {
        let opts = ServeOptions {
            procs: 2,
            ..Default::default()
        };
        let input = b"desc deadline=10000000 4 8 6\ndeadline=10000000 3 1 2\n";
        let out = run_serve(&opts, input).unwrap();
        assert_eq!(String::from_utf8(out.bytes).unwrap(), "8 6 4\n1 2 3\n");
    }

    #[test]
    fn serve_with_metrics_ticker_still_answers_everything() {
        let opts = ServeOptions {
            procs: 2,
            metrics_every: Some(60),
            ..Default::default()
        };
        let out = run_serve(&opts, b"3 1 2\ndesc 5 9\n").unwrap();
        assert_eq!(String::from_utf8(out.bytes).unwrap(), "1 2 3\n9 5\n");
    }

    #[test]
    fn stats_with_trace_reports_ring_overflow() {
        let opts = parse_args(&args("-p 4 --random 256 --stats --trace t.json")).unwrap();
        let out = run(&opts, None).unwrap();
        let report = out.report.unwrap();
        assert!(
            report.contains("trace events dropped: 0"),
            "a healthy ring certifies the trace complete:\n{report}"
        );
        // Without --trace there is no ring to account for.
        let opts = parse_args(&args("-p 4 --random 256 --stats")).unwrap();
        let report = run(&opts, None).unwrap().report.unwrap();
        assert!(!report.contains("trace events dropped"));
    }

    proptest! {
        #[test]
        fn sorts_arbitrary_lengths(keys in proptest::collection::vec(any::<u32>(), 0..500)) {
            let opts = Options { procs: 4, ..Default::default() };
            let mut expect = keys.clone();
            expect.sort_unstable();
            if keys.is_empty() { return Ok(()); }
            let (sorted, _) = sort_keys(keys, &opts);
            prop_assert_eq!(sorted, expect);
        }
    }
}
