//! The comparison sorts of Section 5.5: parallel sample sort and parallel
//! radix sort, on the same SPMD substrate as the bitonic algorithms.
//!
//! Both studies the thesis builds on (\[BLM+91\], \[CDMS94\]) compare bitonic
//! sort against these two; the thesis compares against the long-message
//! implementations of \[AISS95\]. The versions here follow the same
//! structure: a single splitter-driven all-to-all for sample sort, one
//! counting + redistribution round per digit for radix sort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column_sort;
pub mod radix_sort;
pub mod sample_sort;

pub use column_sort::parallel_column_sort;
pub use radix_sort::parallel_radix_sort;
pub use sample_sort::parallel_sample_sort;

use local_sorts::RadixKey;
use spmd::{run_spmd_chaos, FaultConfig, MessageMode, RankFailure, RankResult, TraceConfig};
use std::time::{Duration, Instant};

/// Which baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Splitter-based sample sort (one data exchange).
    Sample,
    /// LSD radix sort (one data exchange per digit pass).
    Radix,
    /// Leighton's column sort (Chapter 6 related work; needs N >~ P^3).
    Column,
}

/// Result of a baseline run: outputs may be unbalanced for sample sort, so
/// the gathered output is returned flat.
#[derive(Debug)]
pub struct BaselineRun<K> {
    /// Globally sorted keys (concatenation of the per-rank outputs).
    pub output: Vec<K>,
    /// Per-rank statistics.
    pub ranks: Vec<RankResult<()>>,
    /// Wall-clock of the machine run.
    pub elapsed: Duration,
}

/// Scatter `keys` block-wise, run the chosen baseline, gather the output.
pub fn run_baseline<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    which: Baseline,
) -> BaselineRun<K> {
    run_baseline_traced(keys, p, mode, which, TraceConfig::off())
}

/// [`run_baseline`] with per-rank tracing: each rank's span timeline comes
/// back in its [`RankResult::trace`].
pub fn run_baseline_traced<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    which: Baseline,
    trace: TraceConfig,
) -> BaselineRun<K> {
    run_baseline_chaos(keys, p, mode, which, trace, FaultConfig::off())
        .expect("a fault-free machine cannot fail")
}

/// [`run_baseline_traced`] on a faulty machine (see
/// `spmd::run_spmd_chaos`): the mesh misbehaves per `fault` and the
/// baseline must still sort. With [`FaultConfig::off`] this is exactly
/// `run_baseline_traced`.
///
/// # Errors
/// A [`RankFailure`] if any rank's watchdog fired.
pub fn run_baseline_chaos<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    which: Baseline,
    trace: TraceConfig,
    fault: FaultConfig,
) -> Result<BaselineRun<K>, RankFailure> {
    assert!(
        p >= 1 && keys.len().is_multiple_of(p),
        "keys must divide evenly over ranks"
    );
    let n = keys.len() / p;
    let t0 = Instant::now();
    let results = run_spmd_chaos::<K, Vec<K>, _>(p, mode, trace, fault, |comm| {
        let me = comm.rank();
        let local = keys[me * n..(me + 1) * n].to_vec();
        match which {
            Baseline::Sample => parallel_sample_sort(comm, local),
            Baseline::Radix => parallel_radix_sort(comm, local),
            Baseline::Column => parallel_column_sort(comm, local),
        }
    })?;
    let elapsed = t0.elapsed();
    let mut output = Vec::with_capacity(keys.len());
    let mut ranks = Vec::with_capacity(p);
    for r in results {
        output.extend(r.output);
        ranks.push(RankResult {
            rank: r.rank,
            output: (),
            stats: r.stats,
            trace: r.trace,
        });
    }
    Ok(BaselineRun {
        output,
        ranks,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) & 0x7FFF_FFFF) as u32
            })
            .collect()
    }

    #[test]
    fn both_baselines_sort() {
        for which in [Baseline::Sample, Baseline::Radix] {
            for (total, p) in [(1usize << 10, 4usize), (1 << 9, 8), (256, 1), (128, 2)] {
                let input = keys(total, 7);
                let mut expect = input.clone();
                expect.sort_unstable();
                let run = run_baseline(&input, p, MessageMode::Long, which);
                assert_eq!(run.output, expect, "{which:?} N={total} P={p}");
            }
        }
    }

    #[test]
    fn low_entropy_input_skews_sample_sort() {
        // Section 5.5: "a low entropy input set may lead to unbalanced
        // communication and contention. Bitonic sort on the other hand is
        // oblivious to the input distribution."
        let mut input = vec![5u32; 1024];
        input[0] = 1; // a single outlier
        let run = run_baseline(&input, 4, MessageMode::Long, Baseline::Sample);
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(run.output, expect);
        // All duplicates land in one bucket: some rank sent (nearly)
        // everything, some almost nothing.
        let sent: Vec<u64> = run.ranks.iter().map(|r| r.stats.elements_sent).collect();
        let spread = sent.iter().max().unwrap() - sent.iter().min().unwrap();
        assert!(
            spread >= 200,
            "expected skewed communication, sent = {sent:?}"
        );
    }
}
