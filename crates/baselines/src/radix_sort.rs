//! Parallel LSD radix sort.
//!
//! One round per 8-bit digit: count local digit frequencies, all-to-all
//! the 256-entry count vectors so every rank knows the global digit
//! histogram and every other rank's contribution, then redistribute keys
//! so the machine is globally stable-sorted by the digit. Because both
//! sides can compute every element's global position from the shared
//! counts, keys travel without address headers: the sender emits digits in
//! ascending order and the receiver places each (source, digit) run at its
//! computed slot range.
//!
//! Passes whose digit is constant across the whole machine (e.g. the top
//! byte of the thesis's 31-bit keys is never ≥ 128) are detected from the
//! global histogram and skipped by all ranks symmetrically.

use local_sorts::RadixKey;
use spmd::{Comm, Phase};

const RADIX: usize = 256;

/// Sort the machine's keys by parallel radix sort. `local` is this rank's
/// blocked slice; every rank must hold the same number of keys, and the
/// output is again balanced and blocked.
pub fn parallel_radix_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    if p == 1 {
        comm.timed(Phase::Compute, |_| local_sorts::radix_sort(&mut local));
        return local;
    }
    let total = (n * p) as u64;

    for pass in 0..K::PASSES {
        // Local digit histogram.
        let counts: Vec<u64> = comm.timed(Phase::Compute, |_| {
            let mut c = vec![0u64; RADIX];
            for &k in &local {
                c[k.digit(pass)] += 1;
            }
            c
        });

        // Share histograms: every rank learns count[r][d] for all r, d.
        let per_rank = comm.exchange_meta(vec![counts; p]);

        // F(d) = #keys with digit < d (global); C(r, d) = #keys with digit
        // d on ranks < r.
        let mut totals = vec![0u64; RADIX];
        for row in &per_rank {
            for (d, &c) in row.iter().enumerate() {
                totals[d] += c;
            }
        }
        if totals.contains(&total) {
            // Constant digit: the stable redistribution is the identity.
            continue;
        }
        let mut f = vec![0u64; RADIX + 1];
        for d in 0..RADIX {
            f[d + 1] = f[d] + totals[d];
        }
        // c_before[r][d] lazily as prefix over ranks.
        let mut c_before = vec![vec![0u64; RADIX]; p];
        for r in 1..p {
            for d in 0..RADIX {
                c_before[r][d] = c_before[r - 1][d] + per_rank[r - 1][d];
            }
        }

        // Pack: walk digits in ascending order (stability); each element's
        // global slot is F(d) + C(me, d) + its index among my digit-d keys.
        let outgoing: Vec<Vec<K>> = comm.timed(Phase::Pack, |_| {
            let mut by_digit: Vec<Vec<K>> = (0..RADIX).map(|_| Vec::new()).collect();
            for &k in &local {
                by_digit[k.digit(pass)].push(k);
            }
            let mut out: Vec<Vec<K>> = (0..p).map(|_| Vec::new()).collect();
            for (d, keys) in by_digit.into_iter().enumerate() {
                let base = f[d] + c_before[me][d];
                for (i, k) in keys.into_iter().enumerate() {
                    let slot = base + i as u64;
                    out[(slot / n as u64) as usize].push(k);
                }
            }
            out
        });

        let arrivals = comm.exchange(outgoing);

        // Unpack: from source r, digit-d keys arrive as one contiguous run
        // occupying the intersection of [F(d)+C(r,d), F(d)+C(r,d)+count)
        // with my slot range.
        local = comm.timed(Phase::Unpack, |_| {
            let my_lo = (me * n) as u64;
            let my_hi = my_lo + n as u64;
            let mut out = vec![local[0]; n];
            let mut filled = 0usize;
            for (r, arrived) in arrivals.iter().enumerate() {
                let mut cursor = 0usize;
                for d in 0..RADIX {
                    let start = f[d] + c_before[r][d];
                    let end = start + per_rank[r][d];
                    let lo = start.max(my_lo);
                    let hi = end.min(my_hi);
                    if lo >= hi {
                        continue;
                    }
                    let run_len = (hi - lo) as usize;
                    let dst = (lo - my_lo) as usize;
                    out[dst..dst + run_len].copy_from_slice(&arrived[cursor..cursor + run_len]);
                    cursor += run_len;
                    filled += run_len;
                }
                debug_assert_eq!(cursor, arrived.len(), "run reconstruction must consume all");
            }
            assert_eq!(filled, n, "every slot must be filled exactly once");
            out
        });
    }
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::{run_spmd, MessageMode};

    fn run_radix(keys: Vec<u32>, p: usize) -> Vec<u32> {
        let n = keys.len() / p;
        let results = run_spmd::<u32, _, _>(p, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_radix_sort(comm, keys[me * n..(me + 1) * n].to_vec())
        });
        results.into_iter().flat_map(|r| r.output).collect()
    }

    #[test]
    fn sorts_uniform_keys_balanced() {
        let keys: Vec<u32> = (0..1024u32)
            .map(|i| i.wrapping_mul(2654435761) & 0x7FFF_FFFF)
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 8), expect);
    }

    #[test]
    fn sorts_with_heavy_duplicates() {
        let keys: Vec<u32> = (0..512u32).map(|i| i % 3).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 4), expect);
    }

    #[test]
    fn top_byte_pass_is_skipped_for_31_bit_keys() {
        // Keys below 2^24: the top byte is constant, so its data exchange
        // is skipped by every rank symmetrically.
        let keys: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(77_777) & 0xFF_FFFF)
            .collect();
        let n = keys.len() / 4;
        let keys2 = keys.clone();
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_radix_sort(comm, keys2[me * n..(me + 1) * n].to_vec())
        });
        // 4 meta exchanges + 3 data exchanges = 7 communication steps.
        for r in &results {
            assert_eq!(r.stats.remap_count(), 7, "rank {}", r.rank);
        }
        let flat: Vec<u32> = results.into_iter().flat_map(|r| r.output).collect();
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }

    #[test]
    fn single_extreme_values() {
        let mut keys = vec![0u32; 256];
        keys[17] = u32::MAX;
        keys[200] = 1;
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 2), expect);
    }
}
