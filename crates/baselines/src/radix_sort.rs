//! Parallel LSD radix sort.
//!
//! One round per 8-bit digit: count local digit frequencies, all-to-all
//! the 256-entry count vectors so every rank knows the global digit
//! histogram and every other rank's contribution, then redistribute keys
//! so the machine is globally stable-sorted by the digit. Because both
//! sides can compute every element's global position from the shared
//! counts, keys travel without address headers: the sender emits digits in
//! ascending order and the receiver places each (source, digit) run at its
//! computed slot range.
//!
//! Passes whose digit is constant across the whole machine (e.g. the top
//! byte of the thesis's 31-bit keys is never ≥ 128) are detected from the
//! global histogram and skipped by all ranks symmetrically.

use local_sorts::RadixKey;
use spmd::{Comm, Phase};

const RADIX: usize = 256;

/// Sort the machine's keys by parallel radix sort. `local` is this rank's
/// blocked slice; every rank must hold the same number of keys, and the
/// output is again balanced and blocked.
pub fn parallel_radix_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    if p == 1 {
        comm.timed(Phase::Compute, |_| local_sorts::radix_sort(&mut local));
        comm.note_kernel("radix", 1);
        return local;
    }
    let total = (n * p) as u64;

    // Flat buffers reused across every pass: the digit-sorted send buffer,
    // the flat receive buffer, the double-buffered output, and the count
    // tables. Steady-state passes allocate only the shared histograms.
    let mut send: Vec<K> = Vec::new();
    let mut recv: Vec<K> = Vec::new();
    let mut out: Vec<K> = Vec::new();
    let mut digit_cursor = vec![0usize; RADIX];
    let mut send_counts = vec![0usize; p];
    let mut recv_counts = vec![0usize; p];

    for pass in 0..K::PASSES {
        comm.trace.set_step(pass + 1);
        // Local digit histogram.
        let counts: Vec<u64> = comm.timed(Phase::Compute, |_| {
            let mut c = vec![0u64; RADIX];
            for &k in &local {
                c[k.digit(pass)] += 1;
            }
            c
        });

        // Share histograms: every rank learns count[r][d] for all r, d.
        let per_rank = comm.exchange_meta(vec![counts; p]);

        // F(d) = #keys with digit < d (global); C(r, d) = #keys with digit
        // d on ranks < r.
        let mut totals = vec![0u64; RADIX];
        for row in &per_rank {
            for (d, &c) in row.iter().enumerate() {
                totals[d] += c;
            }
        }
        if totals.contains(&total) {
            // Constant digit: the stable redistribution is the identity.
            continue;
        }
        let mut f = vec![0u64; RADIX + 1];
        for d in 0..RADIX {
            f[d + 1] = f[d] + totals[d];
        }
        // c_before[r][d] lazily as prefix over ranks.
        let mut c_before = vec![vec![0u64; RADIX]; p];
        for r in 1..p {
            for d in 0..RADIX {
                c_before[r][d] = c_before[r - 1][d] + per_rank[r - 1][d];
            }
        }

        // Pack: a stable counting sort by digit. Each element's global
        // slot is F(d) + C(me, d) + its index among my digit-d keys, which
        // increases monotonically along the (digit, stable index) walk —
        // so the digit-sorted array is *already* the flat send buffer,
        // destination segments concatenated in rank order. The segment
        // sizes come from intersecting each digit run's global slot range
        // with the destination rank ranges.
        comm.timed(Phase::Pack, |_| {
            let mut acc = 0usize;
            for (cursor, &c) in digit_cursor.iter_mut().zip(per_rank[me].iter()) {
                *cursor = acc;
                acc += c as usize;
            }
            send.clear();
            send.resize(n, local[0]);
            for &k in &local {
                let d = k.digit(pass);
                send[digit_cursor[d]] = k;
                digit_cursor[d] += 1;
            }
            send_counts.iter_mut().for_each(|c| *c = 0);
            for (d, &cnt) in per_rank[me].iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                let a = f[d] + c_before[me][d];
                let b = a + cnt;
                let mut dst = (a / n as u64) as usize;
                loop {
                    let lo = a.max((dst * n) as u64);
                    let hi = b.min(((dst + 1) * n) as u64);
                    send_counts[dst] += (hi - lo) as usize;
                    if b <= ((dst + 1) * n) as u64 {
                        break;
                    }
                    dst += 1;
                }
            }
            // Receive sizes are computable the same way from the shared
            // histograms — the planned all-to-all needs no size discovery.
            let my_lo = (me * n) as u64;
            let my_hi = my_lo + n as u64;
            for (r, count) in recv_counts.iter_mut().enumerate() {
                let mut sum = 0usize;
                for d in 0..RADIX {
                    let start = f[d] + c_before[r][d];
                    let end = start + per_rank[r][d];
                    let lo = start.max(my_lo);
                    let hi = end.min(my_hi);
                    if lo < hi {
                        sum += (hi - lo) as usize;
                    }
                }
                *count = sum;
            }
        });

        comm.alltoallv(&send, &send_counts, &mut recv, &recv_counts);

        // Unpack: from source r, digit-d keys arrive as one contiguous run
        // occupying the intersection of [F(d)+C(r,d), F(d)+C(r,d)+count)
        // with my slot range.
        comm.timed(Phase::Unpack, |_| {
            let my_lo = (me * n) as u64;
            let my_hi = my_lo + n as u64;
            out.clear();
            out.resize(n, local[0]);
            let mut filled = 0usize;
            let mut segment = 0usize;
            for r in 0..p {
                let arrived = &recv[segment..segment + recv_counts[r]];
                segment += recv_counts[r];
                let mut cursor = 0usize;
                for d in 0..RADIX {
                    let start = f[d] + c_before[r][d];
                    let end = start + per_rank[r][d];
                    let lo = start.max(my_lo);
                    let hi = end.min(my_hi);
                    if lo >= hi {
                        continue;
                    }
                    let run_len = (hi - lo) as usize;
                    let dst = (lo - my_lo) as usize;
                    out[dst..dst + run_len].copy_from_slice(&arrived[cursor..cursor + run_len]);
                    cursor += run_len;
                    filled += run_len;
                }
                debug_assert_eq!(cursor, arrived.len(), "run reconstruction must consume all");
            }
            assert_eq!(filled, n, "every slot must be filled exactly once");
        });
        std::mem::swap(&mut local, &mut out);
    }
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::{run_spmd, MessageMode};

    fn run_radix(keys: Vec<u32>, p: usize) -> Vec<u32> {
        let n = keys.len() / p;
        let results = run_spmd::<u32, _, _>(p, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_radix_sort(comm, keys[me * n..(me + 1) * n].to_vec())
        });
        results.into_iter().flat_map(|r| r.output).collect()
    }

    #[test]
    fn sorts_uniform_keys_balanced() {
        let keys: Vec<u32> = (0..1024u32)
            .map(|i| i.wrapping_mul(2654435761) & 0x7FFF_FFFF)
            .collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 8), expect);
    }

    #[test]
    fn sorts_with_heavy_duplicates() {
        let keys: Vec<u32> = (0..512u32).map(|i| i % 3).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 4), expect);
    }

    #[test]
    fn top_byte_pass_is_skipped_for_31_bit_keys() {
        // Keys below 2^24: the top byte is constant, so its data exchange
        // is skipped by every rank symmetrically.
        let keys: Vec<u32> = (0..512u32)
            .map(|i| i.wrapping_mul(77_777) & 0xFF_FFFF)
            .collect();
        let n = keys.len() / 4;
        let keys2 = keys.clone();
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_radix_sort(comm, keys2[me * n..(me + 1) * n].to_vec())
        });
        // 4 meta exchanges + 3 data exchanges = 7 communication steps.
        for r in &results {
            assert_eq!(r.stats.remap_count(), 7, "rank {}", r.rank);
        }
        let flat: Vec<u32> = results.into_iter().flat_map(|r| r.output).collect();
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }

    #[test]
    fn single_extreme_values() {
        let mut keys = vec![0u32; 256];
        keys[17] = u32::MAX;
        keys[200] = 1;
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_radix(keys, 2), expect);
    }
}
