//! Parallel sample sort (one-round splitter-based sort).
//!
//! Structure of the \[AISS95\]-style long-message implementation: sort
//! locally, agree on `P − 1` splitters by regular sampling, partition the
//! sorted array into per-destination buckets, one all-to-all of the
//! buckets, then a p-way merge of the received sorted runs. A single data
//! exchange makes it the communication-lightest of the sorts compared in
//! Section 5.5 — but bucket sizes, and hence balance, depend on the input
//! distribution.

use bitonic_network::Direction;
use local_sorts::merge::Run;
use local_sorts::pway_merge::pway_merge_into;
use local_sorts::{local_sort_with_scratch, RadixKey};
use spmd::{Comm, Phase};

/// Sort the machine's keys by sample sort.
///
/// `local` is this rank's blocked slice of the input. The output is
/// globally sorted across ranks in rank order, but — unlike the bitonic
/// sorts — per-rank sizes vary with the key distribution.
pub fn parallel_sample_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let n = local.len();
    comm.reset_kernel_tally();
    let mut sort_scratch: Vec<K> = Vec::new();
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(&mut local, &mut sort_scratch, Direction::Ascending)
    });
    comm.drain_kernel_tally();
    if p == 1 {
        return local;
    }

    // Regular sampling: p − 1 evenly spaced local samples, broadcast to
    // everyone, so every rank derives identical splitters locally.
    comm.trace.set_step(1); // splitter selection
    let samples: Vec<K> = (1..p).map(|i| local[i * n / p]).collect();
    let incoming = comm.exchange(vec![samples; p]);
    let splitters: Vec<K> = comm.timed(Phase::Compute, |_| {
        let mut all: Vec<K> = incoming.into_iter().flatten().collect();
        all.sort_unstable();
        (1..p).map(|i| all[i * all.len() / p]).collect()
    });

    // Partition the sorted local run at the splitters (bucket b gets keys
    // in (splitters[b-1], splitters[b]]). The sorted array already holds
    // the buckets contiguously in destination-rank order, so it *is* the
    // flat send buffer — the pack phase only computes the counts.
    comm.trace.set_step(2); // bucket redistribution
    let mut send_counts: Vec<usize> = Vec::with_capacity(p);
    comm.timed(Phase::Pack, |_| {
        let mut start = 0usize;
        for s in &splitters {
            let end = start + local[start..].partition_point(|k| k <= s);
            send_counts.push(end - start);
            start = end;
        }
        send_counts.push(n - start);
    });

    // Bucket sizes depend on the keys each peer holds, so receive counts
    // are discovered from the wire.
    let mut recv = Vec::new();
    let mut recv_counts = Vec::new();
    comm.alltoallv_uncounted(&local, &send_counts, &mut recv, &mut recv_counts);
    comm.timed(Phase::Compute, |_| {
        let mut offset = 0usize;
        let runs: Vec<Run<'_, K>> = recv_counts
            .iter()
            .map(|&c| {
                let run = Run::asc(&recv[offset..offset + c]);
                offset += c;
                run
            })
            .collect();
        let mut out = Vec::new();
        pway_merge_into(&runs, Direction::Ascending, &mut out);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::{run_spmd, MessageMode};

    #[test]
    fn sorts_uniform_keys() {
        let total = 1usize << 11;
        let keys: Vec<u32> = (0..total as u32)
            .map(|i| i.wrapping_mul(2654435761) & 0x7FFF_FFFF)
            .collect();
        let keys2 = keys.clone();
        let results = run_spmd::<u32, _, _>(8, MessageMode::Long, move |comm| {
            let me = comm.rank();
            let n = keys2.len() / 8;
            parallel_sample_sort(comm, keys2[me * n..(me + 1) * n].to_vec())
        });
        let flat: Vec<u32> = results.into_iter().flat_map(|r| r.output).collect();
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(flat, expect);
    }

    #[test]
    fn regular_sampling_bounds_imbalance() {
        // With uniform input, regular sampling keeps bucket sizes near n.
        let total = 1usize << 12;
        let p = 8;
        let keys: Vec<u32> = (0..total as u32)
            .map(|i| i.wrapping_mul(0x9E3779B9))
            .collect();
        let keys2 = keys.clone();
        let results = run_spmd::<u32, _, _>(p, MessageMode::Long, move |comm| {
            let me = comm.rank();
            let n = keys2.len() / p;
            parallel_sample_sort(comm, keys2[me * n..(me + 1) * n].to_vec()).len()
        });
        let n = total / p;
        for r in &results {
            assert!(
                r.output <= 2 * n,
                "regular sampling guarantees <= 2n per rank, rank {} got {}",
                r.rank,
                r.output
            );
        }
        assert_eq!(results.iter().map(|r| r.output).sum::<usize>(), total);
    }

    #[test]
    fn exchange_count_is_two() {
        // One sample broadcast + one data exchange.
        let keys: Vec<u32> = (0..256u32).collect();
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_sample_sort(comm, keys[me * 64..(me + 1) * 64].to_vec());
        });
        for r in &results {
            assert_eq!(r.stats.remap_count(), 2);
        }
    }
}
