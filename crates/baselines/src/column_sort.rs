//! Leighton's column sort — the related-work algorithm of Chapter 6.
//!
//! "Like bitonic sort, column sort alternates between local sort and key
//! distribution phases, but only four phases of each are required. Two of
//! the communication phases are similar to cyclic-to-blocked and
//! blocked-to-cyclic remaps … Like the cyclic-blocked bitonic sort, column
//! sort requires that `N >= P^3`."
//!
//! The matrix has `s = P` columns (one per processor) and `r = n` rows.
//! With power-of-two dimensions the transpose/untranspose distributions of
//! steps 2 and 4 are *bit rotations* of the relative address — the same
//! [`bitonic_core::BitLayout`] machinery as every other remap in this
//! workspace. The final boundary fix-up (steps 6–8, the half-column shift)
//! is realized as one even/odd round of pairwise merge–splits between
//! adjacent columns, which dominates the shifted sort whenever Leighton's
//! `r >= 2(s−1)^2` condition holds.

use bitonic_core::layout::blocked;
use bitonic_core::{BitLayout, SortContext};
use bitonic_network::Direction;
use local_sorts::merge::{merge_two_into, Run};
use local_sorts::{local_sort_with_scratch, RadixKey};
use spmd::{Comm, Phase};

/// The step-2 "transpose and reshape" distribution as a layout: read the
/// `r × s` matrix in column-major order and write back in row-major order.
/// The element at column-major rank `g` moves to relative address
/// `((g mod s) << lg r) | (g div s)` — a rotation of the address bits by
/// `lg s` (the same rotation as the thesis's blocked→cyclic remap).
#[must_use]
pub fn transpose_layout(lg_total: u32, lg_r: u32) -> BitLayout {
    let lg_s = lg_total - lg_r;
    let src = (0..lg_total).map(|k| (k + lg_s) % lg_total).collect();
    BitLayout::new(src, lg_r)
}

/// The step-4 inverse distribution (read row-major, write column-major):
/// the rotation by `lg r` the other way — the cyclic→blocked direction.
#[must_use]
pub fn untranspose_layout(lg_total: u32, lg_r: u32) -> BitLayout {
    let src = (0..lg_total).map(|k| (k + lg_r) % lg_total).collect();
    BitLayout::new(src, lg_r)
}

/// Merge this rank's sorted column with `partner`'s and keep the lower or
/// upper half (lower rank keeps the minima) — the distributed
/// merge–split primitive completing steps 6–8.
fn merge_split<K: RadixKey>(
    comm: &mut Comm<K>,
    local: &mut Vec<K>,
    partner: usize,
    received: &mut Vec<K>,
    merged: &mut Vec<K>,
) {
    let n = local.len();
    comm.sendrecv_into(partner, local, received);
    comm.timed(Phase::Compute, |c| {
        merge_two_into(
            Run::asc(local),
            Run::asc(received),
            Direction::Ascending,
            merged,
        );
        let keep_low = c.rank() < partner;
        local.clear();
        if keep_low {
            local.extend_from_slice(&merged[..n]);
        } else {
            local.extend_from_slice(&merged[n..]);
        }
    });
}

/// Sort the machine's keys by column sort. `local` is this rank's column;
/// the output is the globally sorted sequence in blocked (column-major)
/// order, balanced across ranks.
///
/// # Panics
/// Panics unless `n` is a power of two with `n >= 2(P−1)^2` (Leighton's
/// `r >= 2(s−1)^2` requirement, implying `N ≳ P^3`).
pub fn parallel_column_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "rows per column must be a power of two"
    );
    comm.reset_kernel_tally();
    let mut sort_scratch: Vec<K> = Vec::new();
    if p == 1 {
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(&mut local, &mut sort_scratch, Direction::Ascending)
        });
        comm.drain_kernel_tally();
        return local;
    }
    assert!(
        n >= 2 * (p - 1) * (p - 1),
        "column sort needs r >= 2(s-1)^2 (n = {n}, P = {p})"
    );
    let lg_n = bitonic_network::lg(n);
    let lg_p = bitonic_network::lg(p);
    let lg_total = lg_n + lg_p;
    let identity = blocked(lg_total, lg_n);
    // One context serves both transposes: flat plans, cached by layout
    // pair, applied through reused pack/transfer/unpack buffers.
    let mut ctx = SortContext::new();
    // Scratch for the merge–split round (reused across both boundaries).
    let mut received: Vec<K> = Vec::with_capacity(n);
    let mut merged: Vec<K> = Vec::with_capacity(2 * n);

    // Step 1: sort columns.
    comm.trace.set_step(1);
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(&mut local, &mut sort_scratch, Direction::Ascending)
    });
    comm.drain_kernel_tally();
    // Step 2: transpose (distribute each column round-robin over all).
    comm.trace.set_step(2);
    ctx.remap(
        comm,
        &identity,
        &transpose_layout(lg_total, lg_n),
        &mut local,
    );
    // Step 3: sort columns.
    comm.trace.set_step(3);
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(&mut local, &mut sort_scratch, Direction::Ascending)
    });
    comm.drain_kernel_tally();
    // Step 4: untranspose.
    comm.trace.set_step(4);
    ctx.remap(
        comm,
        &identity,
        &untranspose_layout(lg_total, lg_n),
        &mut local,
    );
    // Step 5: sort columns.
    comm.trace.set_step(5);
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(&mut local, &mut sort_scratch, Direction::Ascending)
    });
    comm.drain_kernel_tally();
    // Steps 6–8 (shift, sort, unshift) as an even/odd merge–split round:
    // even boundary first (columns 2k | 2k+1), then odd (2k+1 | 2k+2).
    comm.trace.set_step(6);
    let even_partner = me ^ 1;
    if even_partner < p {
        merge_split(comm, &mut local, even_partner, &mut received, &mut merged);
    }
    let odd_partner = if me.is_multiple_of(2) {
        me.wrapping_sub(1)
    } else {
        me + 1
    };
    if odd_partner < p {
        merge_split(comm, &mut local, odd_partner, &mut received, &mut merged);
    }
    comm.barrier();
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use spmd::{run_spmd, MessageMode};

    fn run_column(keys: Vec<u32>, p: usize) -> Vec<u32> {
        let n = keys.len() / p;
        let results = run_spmd::<u32, _, _>(p, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_column_sort(comm, keys[me * n..(me + 1) * n].to_vec())
        });
        results.into_iter().flat_map(|r| r.output).collect()
    }

    fn check(keys: Vec<u32>, p: usize) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(run_column(keys, p), expect, "P={p}");
    }

    #[test]
    fn sorts_across_machine_sizes() {
        for (n, p) in [(32usize, 4usize), (128, 8), (512, 16), (64, 2), (256, 1)] {
            let keys: Vec<u32> = (0..(n * p) as u32)
                .map(|i| i.wrapping_mul(2654435761))
                .collect();
            check(keys, p);
        }
    }

    #[test]
    fn sorts_adversarial_inputs() {
        for p in [4usize, 8] {
            let n = 2 * (p - 1) * (p - 1);
            let n = n.next_power_of_two();
            let total = n * p;
            check((0..total as u32).rev().collect(), p); // reverse sorted
            check(vec![7; total], p); // constant
            check((0..total as u32).map(|i| i % 3).collect(), p); // few values
                                                                  // Block-reversed: already column-sorted but globally scrambled.
            let v: Vec<u32> = (0..total as u32).collect();
            let scrambled: Vec<u32> = v.chunks(n).rev().flat_map(|c| c.iter().copied()).collect();
            check(scrambled, p);
        }
    }

    #[test]
    fn transpose_layouts_are_inverse_rotations() {
        let t = transpose_layout(8, 5);
        let u = untranspose_layout(8, 5);
        for rel in 0..256usize {
            // Applying transpose then untranspose as movements returns home:
            // σ(a) = t.rel_of(a); σ'(σ(a)) with σ' = u.rel_of must be a.
            assert_eq!(u.rel_of(t.rel_of(rel)), rel);
        }
    }

    #[test]
    fn communication_step_count_is_four() {
        // Two remaps + two merge-split exchanges (interior ranks).
        let keys: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(97)).collect();
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_column_sort(comm, keys[me * 256..(me + 1) * 256].to_vec());
        });
        for r in &results {
            let steps = r.stats.remap_count();
            assert!(
                (3..=4).contains(&steps),
                "rank {}: {} steps (boundary ranks skip one merge-split)",
                r.rank,
                steps
            );
        }
    }

    #[test]
    #[should_panic(expected = "r >= 2(s-1)^2")]
    fn rejects_undersized_columns() {
        let keys: Vec<u32> = (0..64).collect();
        let _ = run_column(keys, 8); // n = 8 < 2·49
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn sorts_random_inputs(seed in any::<u64>(), lg_p in 1u32..4) {
            let p = 1usize << lg_p;
            let n = (2 * (p - 1) * (p - 1)).next_power_of_two().max(8);
            let mut x = seed | 1;
            let keys: Vec<u32> = (0..n * p).map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u32
            }).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            prop_assert_eq!(run_column(keys, p), expect);
        }
    }
}
