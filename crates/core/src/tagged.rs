//! Tagged multi-request sorting: many small sorts as one big one.
//!
//! The serving layer coalesces client requests into a single SPMD run by
//! exploiting exactly the property the thesis exploits — bitonic sort's
//! cost per key falls as `n/P` grows. Each request's `u32` keys are
//! lifted into `u64` words whose high half is the request's *tag* (its
//! index in the batch) and whose low half is the key, bit-negated for
//! descending requests. Sorting the combined words ascending therefore
//! produces the batch's requests as contiguous segments in tag order,
//! each segment internally in its requested order — one machine run,
//! stable tag-partitioned output, no per-key headers.
//!
//! Padding uses [`PAD`] (`u64::MAX`): tag `u32::MAX` is reserved — the
//! word `(u32::MAX << 32) | u32::MAX` would *equal* the sentinel — so
//! usable tags stop at [`MAX_TAG`] and a batch holds at most
//! [`MAX_REQUESTS`] requests (strictly fewer than `2^32`). Within that
//! bound every encodable word, even tag [`MAX_TAG`] carrying key
//! `u32::MAX`, compares strictly below [`PAD`]; sentinels sink to the
//! end and [`TaggedBatch::split`] never sees them. [`tag_for`] is the
//! pure boundary check, [`TaggedBatch::push`] the enforcing caller.

use bitonic_network::Direction;
use local_sorts::W192;

/// The padding sentinel: sorts after every encoded word.
pub const PAD: u64 = u64::MAX;

/// Largest usable request tag. Tag `u32::MAX` is reserved: combined
/// with a key that munges to `u32::MAX` it would encode to exactly
/// [`PAD`], and padding sentinels must sort *strictly* after every real
/// word.
pub const MAX_TAG: u32 = u32::MAX - 1;

/// Most requests one batch can hold: tags `0..=MAX_TAG`.
pub const MAX_REQUESTS: usize = MAX_TAG as usize + 1;

/// The tag for the `index`-th request of a batch, or `None` once the
/// batch is full (`index >= MAX_REQUESTS`). Pure, so the boundary is
/// testable without materializing four billion requests.
#[must_use]
pub fn tag_for(index: usize) -> Option<u32> {
    if index >= MAX_REQUESTS {
        return None;
    }
    Some(index as u32)
}

/// Lift one key of request `tag` into its batch word.
///
/// Descending requests negate the key so that the ascending batch sort
/// leaves their segment in descending key order.
///
/// # Panics
/// Panics if `tag` exceeds [`MAX_TAG`]: the reserved tag `u32::MAX`
/// could collide with [`PAD`].
#[must_use]
pub fn encode_key(tag: u32, key: u32, dir: Direction) -> u64 {
    assert!(tag <= MAX_TAG, "tag {tag} is reserved for the PAD sentinel");
    let munged = match dir {
        Direction::Ascending => key,
        Direction::Descending => !key,
    };
    (u64::from(tag) << 32) | u64::from(munged)
}

/// Recover the key from a batch word (inverse of [`encode_key`]).
#[must_use]
pub fn decode_key(word: u64, dir: Direction) -> u32 {
    let low = (word & 0xFFFF_FFFF) as u32;
    match dir {
        Direction::Ascending => low,
        Direction::Descending => !low,
    }
}

/// The tag half of a batch word.
#[must_use]
pub fn tag_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// A coalesced batch of sort requests and the metadata to take it apart
/// again.
#[derive(Debug, Default, Clone)]
pub struct TaggedBatch {
    words: Vec<u64>,
    /// Per request, in tag order: key count and requested order.
    requests: Vec<(usize, Direction)>,
}

impl TaggedBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        TaggedBatch::default()
    }

    /// Append a request, returning its tag.
    ///
    /// # Panics
    /// Panics if the batch already holds [`MAX_REQUESTS`] requests —
    /// the next tag would be the reserved `u32::MAX` (see [`tag_for`]).
    pub fn push(&mut self, keys: &[u32], dir: Direction) -> u32 {
        let tag = tag_for(self.requests.len())
            .expect("too many requests in one batch: the next tag is reserved for PAD");
        self.words
            .extend(keys.iter().map(|&k| encode_key(tag, k, dir)));
        self.requests.push((keys.len(), dir));
        tag
    }

    /// Number of requests coalesced so far.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests.len()
    }

    /// Total keys across all requests (excluding padding).
    #[must_use]
    pub fn total_keys(&self) -> usize {
        self.words.len()
    }

    /// Whether no requests have been coalesced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The batch's words padded with [`PAD`] to a machine-runnable shape:
    /// `per_rank * procs` total, `per_rank` a power of two (at least 2,
    /// so every schedule has a local phase). Returns the padded words and
    /// `per_rank`.
    #[must_use]
    pub fn padded_words(&self, procs: usize) -> (Vec<u64>, usize) {
        let per_rank = self.words.len().div_ceil(procs).next_power_of_two().max(2);
        let mut words = self.words.clone();
        words.resize(per_rank * procs, PAD);
        (words, per_rank)
    }

    /// Split the globally sorted batch back into per-request key vectors,
    /// in tag order. `sorted` may carry trailing [`PAD`] sentinels; they
    /// are ignored.
    ///
    /// # Panics
    /// Panics (debug assertions) if a word lands under the wrong tag —
    /// i.e. if `sorted` is not a sort of this batch's words.
    #[must_use]
    pub fn split(&self, sorted: &[u64]) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.requests.len());
        let mut cursor = 0usize;
        for (tag, &(len, dir)) in self.requests.iter().enumerate() {
            let segment = &sorted[cursor..cursor + len];
            debug_assert!(
                segment.iter().all(|&w| tag_of(w) as usize == tag),
                "segment words must carry their request's tag"
            );
            out.push(segment.iter().map(|&w| decode_key(w, dir)).collect());
            cursor += len;
        }
        out
    }
}

/// What each request's reply should be: its keys sorted in its requested
/// order, computed locally. The oracle the batch path is tested against.
#[must_use]
pub fn sorted_independently(keys: &[u32], dir: Direction) -> Vec<u32> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    if dir == Direction::Descending {
        out.reverse();
    }
    out
}

// ---------------------------------------------------------------------------
// Records: (key, record-id) words for u32/u64/u128 keys.
// ---------------------------------------------------------------------------

/// A machine word carrying one *record*: a batch tag, a key, and the
/// record's index within its request (`rid`).
///
/// The rid rides in the word's least significant bits, below the key, so
/// an ascending sort of the words yields each request's records in
/// *stable* key order — equal keys keep their input order (the oracle is
/// a stable `sort_by_key`) — and the rid sequence read off the sorted
/// segment **is** the payload permutation: reply payload row `i` is
/// request payload row `perm[i]`. Two word shapes cover the three wire
/// key widths:
///
/// * `u128` — `[tag:32][key:64][rid:32]`, serving u32 (zero-extended)
///   and u64 keys;
/// * [`W192`] — `[tag:32][key:128][rid:32]`, serving u128 keys.
///
/// Both munge descending keys by bitwise negation exactly like
/// [`encode_key`]; the rid is never munged, so ties stay input-ordered
/// under either direction. The all-ones `PAD` carries the reserved tag
/// `u32::MAX`, so every word with a usable tag (`<= MAX_TAG`) sorts
/// strictly below it regardless of key and rid.
pub trait RecordWord: Copy + Ord + Send + Sync + 'static {
    /// The widest key this word carries (narrower keys zero-extend).
    type Key: Copy + Ord + Send + Sync + 'static;
    /// The padding sentinel: sorts strictly after every encoded word.
    const PAD: Self;
    /// Lift `(tag, key, rid)` into a word (key munged for `dir`).
    ///
    /// # Panics
    /// Panics if `tag` exceeds [`MAX_TAG`] (reserved for `PAD`).
    fn encode(tag: u32, key: Self::Key, rid: u32, dir: Direction) -> Self;
    /// The tag field.
    fn tag(self) -> u32;
    /// The record-id field.
    fn rid(self) -> u32;
    /// Recover the key (inverse of [`RecordWord::encode`] for `dir`).
    fn key(self, dir: Direction) -> Self::Key;
}

impl RecordWord for u128 {
    type Key = u64;
    const PAD: u128 = u128::MAX;

    #[inline]
    fn encode(tag: u32, key: u64, rid: u32, dir: Direction) -> u128 {
        assert!(tag <= MAX_TAG, "tag {tag} is reserved for the PAD sentinel");
        let munged = match dir {
            Direction::Ascending => key,
            Direction::Descending => !key,
        };
        (u128::from(tag) << 96) | (u128::from(munged) << 32) | u128::from(rid)
    }

    #[inline]
    fn tag(self) -> u32 {
        (self >> 96) as u32
    }

    #[inline]
    fn rid(self) -> u32 {
        self as u32
    }

    #[inline]
    fn key(self, dir: Direction) -> u64 {
        let munged = (self >> 32) as u64;
        match dir {
            Direction::Ascending => munged,
            Direction::Descending => !munged,
        }
    }
}

impl RecordWord for W192 {
    type Key = u128;
    const PAD: W192 = W192::MAX;

    #[inline]
    fn encode(tag: u32, key: u128, rid: u32, dir: Direction) -> W192 {
        assert!(tag <= MAX_TAG, "tag {tag} is reserved for the PAD sentinel");
        let munged = match dir {
            Direction::Ascending => key,
            Direction::Descending => !key,
        };
        W192 {
            hi: (u64::from(tag) << 32) | (munged >> 96) as u64,
            mid: (munged >> 32) as u64,
            lo: ((munged as u32 as u64) << 32) | u64::from(rid),
        }
    }

    #[inline]
    fn tag(self) -> u32 {
        (self.hi >> 32) as u32
    }

    #[inline]
    fn rid(self) -> u32 {
        self.lo as u32
    }

    #[inline]
    fn key(self, dir: Direction) -> u128 {
        let munged = (u128::from(self.hi & 0xFFFF_FFFF) << 96)
            | (u128::from(self.mid) << 32)
            | u128::from(self.lo >> 32);
        match dir {
            Direction::Ascending => munged,
            Direction::Descending => !munged,
        }
    }
}

/// One request's slice of a sorted record batch: the keys in the
/// requested (stable) order, and the permutation that reorders the
/// request's payload rows to match (`reply row i` ← `request row
/// perm[i]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSegment<K> {
    /// The request's keys, sorted stably in its requested direction.
    pub keys: Vec<K>,
    /// The payload permutation in sorted order.
    pub perm: Vec<u32>,
}

/// [`TaggedBatch`] for records: coalesces requests of `(key, rid)`
/// words and splits the sorted run back into per-request
/// [`RecordSegment`]s. Generic over the word shape — `RecordBatch<u128>`
/// serves u32/u64 keys, `RecordBatch<W192>` serves u128 keys.
#[derive(Debug, Clone)]
pub struct RecordBatch<W: RecordWord> {
    words: Vec<W>,
    /// Per request, in tag order: key count and requested order.
    requests: Vec<(usize, Direction)>,
}

impl<W: RecordWord> Default for RecordBatch<W> {
    fn default() -> Self {
        RecordBatch {
            words: Vec::new(),
            requests: Vec::new(),
        }
    }
}

impl<W: RecordWord> RecordBatch<W> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        RecordBatch::default()
    }

    /// Append a request, returning its tag. Record ids are the key
    /// positions `0..keys.len()` — the identity permutation at encode
    /// time.
    ///
    /// # Panics
    /// Panics if the batch already holds [`MAX_REQUESTS`] requests, or
    /// if one request holds more than `u32::MAX` keys (the rid field).
    pub fn push(&mut self, keys: &[W::Key], dir: Direction) -> u32 {
        let tag = tag_for(self.requests.len())
            .expect("too many requests in one batch: the next tag is reserved for PAD");
        assert!(
            u32::try_from(keys.len()).is_ok(),
            "a record request's rid field is 32 bits"
        );
        self.words.extend(
            keys.iter()
                .enumerate()
                .map(|(rid, &k)| W::encode(tag, k, rid as u32, dir)),
        );
        self.requests.push((keys.len(), dir));
        tag
    }

    /// Number of requests coalesced so far.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests.len()
    }

    /// Total keys across all requests (excluding padding).
    #[must_use]
    pub fn total_keys(&self) -> usize {
        self.words.len()
    }

    /// Whether no requests have been coalesced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The batch's words padded with `W::PAD` to a machine-runnable
    /// shape, exactly as [`TaggedBatch::padded_words`].
    #[must_use]
    pub fn padded_words(&self, procs: usize) -> (Vec<W>, usize) {
        let per_rank = self.words.len().div_ceil(procs).next_power_of_two().max(2);
        let mut words = self.words.clone();
        words.resize(per_rank * procs, W::PAD);
        (words, per_rank)
    }

    /// Split the globally sorted batch back into per-request segments in
    /// tag order, each carrying its stable-sorted keys and the payload
    /// permutation. Trailing `W::PAD` sentinels are ignored.
    ///
    /// # Panics
    /// Panics (debug assertions) if a word lands under the wrong tag.
    #[must_use]
    pub fn split(&self, sorted: &[W]) -> Vec<RecordSegment<W::Key>> {
        let mut out = Vec::with_capacity(self.requests.len());
        let mut cursor = 0usize;
        for (tag, &(len, dir)) in self.requests.iter().enumerate() {
            let segment = &sorted[cursor..cursor + len];
            debug_assert!(
                segment.iter().all(|&w| w.tag() as usize == tag),
                "segment words must carry their request's tag"
            );
            out.push(RecordSegment {
                keys: segment.iter().map(|&w| w.key(dir)).collect(),
                perm: segment.iter().map(|&w| w.rid()).collect(),
            });
            cursor += len;
        }
        out
    }
}

/// The record oracle: `keys` sorted *stably* in `dir` plus the payload
/// permutation a correct record sort must produce — equal keys keep
/// their input order.
#[must_use]
pub fn records_sorted_independently<K: Ord + Copy>(keys: &[K], dir: Direction) -> RecordSegment<K> {
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    match dir {
        Direction::Ascending => order.sort_by_key(|&i| keys[i as usize]),
        Direction::Descending => {
            order.sort_by_key(|&i| std::cmp::Reverse(keys[i as usize]));
        }
    }
    RecordSegment {
        keys: order.iter().map(|&i| keys[i as usize]).collect(),
        perm: order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run_parallel_sort, Algorithm};
    use crate::local::LocalStrategy;
    use spmd::MessageMode;

    #[test]
    fn encode_decode_round_trips() {
        for dir in [Direction::Ascending, Direction::Descending] {
            for key in [0u32, 1, 7, u32::MAX - 1, u32::MAX] {
                let w = encode_key(42, key, dir);
                assert_eq!(tag_of(w), 42);
                assert_eq!(decode_key(w, dir), key);
            }
        }
    }

    #[test]
    fn descending_requests_sort_descending_under_ascending_words() {
        // Within one tag, ascending word order must equal the requested
        // key order.
        let keys = [5u32, 1, 9, 1, 0];
        let mut words: Vec<u64> = keys
            .iter()
            .map(|&k| encode_key(3, k, Direction::Descending))
            .collect();
        words.sort_unstable();
        let decoded: Vec<u32> = words
            .iter()
            .map(|&w| decode_key(w, Direction::Descending))
            .collect();
        assert_eq!(decoded, vec![9, 5, 1, 1, 0]);
    }

    #[test]
    fn every_word_sorts_below_pad() {
        let w = encode_key(u32::MAX - 2, u32::MAX, Direction::Ascending);
        assert!(w < PAD);
        let w = encode_key(u32::MAX - 2, 0, Direction::Descending);
        assert!(w < PAD);
    }

    #[test]
    fn the_very_last_usable_tag_still_sorts_below_pad() {
        // The worst encodable word: the largest usable tag carrying the
        // key that munges to all-ones. One short of the sentinel's tag.
        let asc = encode_key(MAX_TAG, u32::MAX, Direction::Ascending);
        let desc = encode_key(MAX_TAG, 0, Direction::Descending);
        assert!(asc < PAD, "MAX_TAG + max key must stay below PAD");
        assert!(desc < PAD, "MAX_TAG + negated zero must stay below PAD");
        assert_eq!(tag_of(asc), MAX_TAG);
        assert_eq!(decode_key(asc, Direction::Ascending), u32::MAX);
    }

    #[test]
    fn tag_allocation_stops_exactly_at_the_reserved_tag() {
        // Fewer than 2^32 requests fit: the last admitted index maps to
        // MAX_TAG, the next (which would need tag u32::MAX and could
        // collide with PAD) is refused.
        assert_eq!(tag_for(0), Some(0));
        assert_eq!(tag_for(MAX_REQUESTS - 1), Some(MAX_TAG));
        assert_eq!(tag_for(MAX_REQUESTS), None);
        assert_eq!(tag_for(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "reserved for the PAD sentinel")]
    fn encoding_with_the_reserved_tag_is_rejected() {
        let _ = encode_key(u32::MAX, 0, Direction::Ascending);
    }

    #[test]
    fn record_words_round_trip_both_shapes() {
        for dir in [Direction::Ascending, Direction::Descending] {
            for key in [0u64, 1, 7, u64::from(u32::MAX), u64::MAX] {
                let w = <u128 as RecordWord>::encode(42, key, 9, dir);
                assert_eq!(RecordWord::tag(w), 42);
                assert_eq!(RecordWord::rid(w), 9);
                assert_eq!(RecordWord::key(w, dir), key);
                assert!(w < <u128 as RecordWord>::PAD);
            }
            for key in [0u128, 1, u128::from(u64::MAX), u128::MAX] {
                let w = <W192 as RecordWord>::encode(MAX_TAG, key, u32::MAX, dir);
                assert_eq!(RecordWord::tag(w), MAX_TAG);
                assert_eq!(RecordWord::rid(w), u32::MAX);
                assert_eq!(RecordWord::key(w, dir), key);
                assert!(w < <W192 as RecordWord>::PAD);
            }
        }
    }

    #[test]
    fn sorted_record_words_are_stable_and_carry_the_permutation() {
        // Duplicate-heavy keys: stability is the whole point.
        let keys: Vec<u64> = vec![5, 1, 5, 5, 0, 1, 5, u64::MAX, 0];
        for dir in [Direction::Ascending, Direction::Descending] {
            let mut batch = RecordBatch::<u128>::new();
            batch.push(&keys, dir);
            let mut words = batch.padded_words(2).0;
            words.sort_unstable();
            let seg = &batch.split(&words)[0];
            let oracle = records_sorted_independently(&keys, dir);
            assert_eq!(seg, &oracle, "{dir:?}");
        }
    }

    #[test]
    fn record_batch_through_the_machine_matches_the_stable_oracle() {
        let reqs: Vec<(Vec<u128>, Direction)> = vec![
            (vec![9, 3, 3, 3, 7], Direction::Ascending),
            (vec![], Direction::Ascending),
            (vec![u128::MAX, 2, 2, 1], Direction::Descending),
            (vec![1 << 100, 1 << 40, 1 << 100, 5], Direction::Ascending),
            (vec![8], Direction::Descending),
        ];
        let mut batch = RecordBatch::<W192>::new();
        for (keys, dir) in &reqs {
            batch.push(keys, *dir);
        }
        let (words, per_rank) = batch.padded_words(4);
        assert_eq!(words.len(), per_rank * 4);
        let run = run_parallel_sort(
            &words,
            4,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let segments = batch.split(&run.output);
        assert_eq!(segments.len(), reqs.len());
        for ((keys, dir), seg) in reqs.iter().zip(&segments) {
            assert_eq!(seg, &records_sorted_independently(keys, *dir));
        }
    }

    #[test]
    fn batch_through_the_machine_matches_independent_sorts() {
        let reqs: Vec<(Vec<u32>, Direction)> = vec![
            (vec![9, 3, 3, 7], Direction::Ascending),
            (vec![], Direction::Ascending),
            (vec![2, 1], Direction::Descending),
            (vec![u32::MAX, 0, 5], Direction::Ascending),
            (vec![8], Direction::Descending),
        ];
        let mut batch = TaggedBatch::new();
        for (keys, dir) in &reqs {
            batch.push(keys, *dir);
        }
        let (words, per_rank) = batch.padded_words(4);
        assert_eq!(words.len(), per_rank * 4);
        let run = run_parallel_sort(
            &words,
            4,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let replies = batch.split(&run.output);
        assert_eq!(replies.len(), reqs.len());
        for ((keys, dir), reply) in reqs.iter().zip(&replies) {
            assert_eq!(reply, &sorted_independently(keys, *dir));
        }
    }
}
