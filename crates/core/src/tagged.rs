//! Tagged multi-request sorting: many small sorts as one big one.
//!
//! The serving layer coalesces client requests into a single SPMD run by
//! exploiting exactly the property the thesis exploits — bitonic sort's
//! cost per key falls as `n/P` grows. Each request's `u32` keys are
//! lifted into `u64` words whose high half is the request's *tag* (its
//! index in the batch) and whose low half is the key, bit-negated for
//! descending requests. Sorting the combined words ascending therefore
//! produces the batch's requests as contiguous segments in tag order,
//! each segment internally in its requested order — one machine run,
//! stable tag-partitioned output, no per-key headers.
//!
//! Padding uses [`PAD`] (`u64::MAX`): tag `u32::MAX` is reserved — the
//! word `(u32::MAX << 32) | u32::MAX` would *equal* the sentinel — so
//! usable tags stop at [`MAX_TAG`] and a batch holds at most
//! [`MAX_REQUESTS`] requests (strictly fewer than `2^32`). Within that
//! bound every encodable word, even tag [`MAX_TAG`] carrying key
//! `u32::MAX`, compares strictly below [`PAD`]; sentinels sink to the
//! end and [`TaggedBatch::split`] never sees them. [`tag_for`] is the
//! pure boundary check, [`TaggedBatch::push`] the enforcing caller.

use bitonic_network::Direction;

/// The padding sentinel: sorts after every encoded word.
pub const PAD: u64 = u64::MAX;

/// Largest usable request tag. Tag `u32::MAX` is reserved: combined
/// with a key that munges to `u32::MAX` it would encode to exactly
/// [`PAD`], and padding sentinels must sort *strictly* after every real
/// word.
pub const MAX_TAG: u32 = u32::MAX - 1;

/// Most requests one batch can hold: tags `0..=MAX_TAG`.
pub const MAX_REQUESTS: usize = MAX_TAG as usize + 1;

/// The tag for the `index`-th request of a batch, or `None` once the
/// batch is full (`index >= MAX_REQUESTS`). Pure, so the boundary is
/// testable without materializing four billion requests.
#[must_use]
pub fn tag_for(index: usize) -> Option<u32> {
    if index >= MAX_REQUESTS {
        return None;
    }
    Some(index as u32)
}

/// Lift one key of request `tag` into its batch word.
///
/// Descending requests negate the key so that the ascending batch sort
/// leaves their segment in descending key order.
///
/// # Panics
/// Panics if `tag` exceeds [`MAX_TAG`]: the reserved tag `u32::MAX`
/// could collide with [`PAD`].
#[must_use]
pub fn encode_key(tag: u32, key: u32, dir: Direction) -> u64 {
    assert!(tag <= MAX_TAG, "tag {tag} is reserved for the PAD sentinel");
    let munged = match dir {
        Direction::Ascending => key,
        Direction::Descending => !key,
    };
    (u64::from(tag) << 32) | u64::from(munged)
}

/// Recover the key from a batch word (inverse of [`encode_key`]).
#[must_use]
pub fn decode_key(word: u64, dir: Direction) -> u32 {
    let low = (word & 0xFFFF_FFFF) as u32;
    match dir {
        Direction::Ascending => low,
        Direction::Descending => !low,
    }
}

/// The tag half of a batch word.
#[must_use]
pub fn tag_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// A coalesced batch of sort requests and the metadata to take it apart
/// again.
#[derive(Debug, Default, Clone)]
pub struct TaggedBatch {
    words: Vec<u64>,
    /// Per request, in tag order: key count and requested order.
    requests: Vec<(usize, Direction)>,
}

impl TaggedBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        TaggedBatch::default()
    }

    /// Append a request, returning its tag.
    ///
    /// # Panics
    /// Panics if the batch already holds [`MAX_REQUESTS`] requests —
    /// the next tag would be the reserved `u32::MAX` (see [`tag_for`]).
    pub fn push(&mut self, keys: &[u32], dir: Direction) -> u32 {
        let tag = tag_for(self.requests.len())
            .expect("too many requests in one batch: the next tag is reserved for PAD");
        self.words
            .extend(keys.iter().map(|&k| encode_key(tag, k, dir)));
        self.requests.push((keys.len(), dir));
        tag
    }

    /// Number of requests coalesced so far.
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests.len()
    }

    /// Total keys across all requests (excluding padding).
    #[must_use]
    pub fn total_keys(&self) -> usize {
        self.words.len()
    }

    /// Whether no requests have been coalesced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The batch's words padded with [`PAD`] to a machine-runnable shape:
    /// `per_rank * procs` total, `per_rank` a power of two (at least 2,
    /// so every schedule has a local phase). Returns the padded words and
    /// `per_rank`.
    #[must_use]
    pub fn padded_words(&self, procs: usize) -> (Vec<u64>, usize) {
        let per_rank = self.words.len().div_ceil(procs).next_power_of_two().max(2);
        let mut words = self.words.clone();
        words.resize(per_rank * procs, PAD);
        (words, per_rank)
    }

    /// Split the globally sorted batch back into per-request key vectors,
    /// in tag order. `sorted` may carry trailing [`PAD`] sentinels; they
    /// are ignored.
    ///
    /// # Panics
    /// Panics (debug assertions) if a word lands under the wrong tag —
    /// i.e. if `sorted` is not a sort of this batch's words.
    #[must_use]
    pub fn split(&self, sorted: &[u64]) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.requests.len());
        let mut cursor = 0usize;
        for (tag, &(len, dir)) in self.requests.iter().enumerate() {
            let segment = &sorted[cursor..cursor + len];
            debug_assert!(
                segment.iter().all(|&w| tag_of(w) as usize == tag),
                "segment words must carry their request's tag"
            );
            out.push(segment.iter().map(|&w| decode_key(w, dir)).collect());
            cursor += len;
        }
        out
    }
}

/// What each request's reply should be: its keys sorted in its requested
/// order, computed locally. The oracle the batch path is tested against.
#[must_use]
pub fn sorted_independently(keys: &[u32], dir: Direction) -> Vec<u32> {
    let mut out = keys.to_vec();
    out.sort_unstable();
    if dir == Direction::Descending {
        out.reverse();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run_parallel_sort, Algorithm};
    use crate::local::LocalStrategy;
    use spmd::MessageMode;

    #[test]
    fn encode_decode_round_trips() {
        for dir in [Direction::Ascending, Direction::Descending] {
            for key in [0u32, 1, 7, u32::MAX - 1, u32::MAX] {
                let w = encode_key(42, key, dir);
                assert_eq!(tag_of(w), 42);
                assert_eq!(decode_key(w, dir), key);
            }
        }
    }

    #[test]
    fn descending_requests_sort_descending_under_ascending_words() {
        // Within one tag, ascending word order must equal the requested
        // key order.
        let keys = [5u32, 1, 9, 1, 0];
        let mut words: Vec<u64> = keys
            .iter()
            .map(|&k| encode_key(3, k, Direction::Descending))
            .collect();
        words.sort_unstable();
        let decoded: Vec<u32> = words
            .iter()
            .map(|&w| decode_key(w, Direction::Descending))
            .collect();
        assert_eq!(decoded, vec![9, 5, 1, 1, 0]);
    }

    #[test]
    fn every_word_sorts_below_pad() {
        let w = encode_key(u32::MAX - 2, u32::MAX, Direction::Ascending);
        assert!(w < PAD);
        let w = encode_key(u32::MAX - 2, 0, Direction::Descending);
        assert!(w < PAD);
    }

    #[test]
    fn the_very_last_usable_tag_still_sorts_below_pad() {
        // The worst encodable word: the largest usable tag carrying the
        // key that munges to all-ones. One short of the sentinel's tag.
        let asc = encode_key(MAX_TAG, u32::MAX, Direction::Ascending);
        let desc = encode_key(MAX_TAG, 0, Direction::Descending);
        assert!(asc < PAD, "MAX_TAG + max key must stay below PAD");
        assert!(desc < PAD, "MAX_TAG + negated zero must stay below PAD");
        assert_eq!(tag_of(asc), MAX_TAG);
        assert_eq!(decode_key(asc, Direction::Ascending), u32::MAX);
    }

    #[test]
    fn tag_allocation_stops_exactly_at_the_reserved_tag() {
        // Fewer than 2^32 requests fit: the last admitted index maps to
        // MAX_TAG, the next (which would need tag u32::MAX and could
        // collide with PAD) is refused.
        assert_eq!(tag_for(0), Some(0));
        assert_eq!(tag_for(MAX_REQUESTS - 1), Some(MAX_TAG));
        assert_eq!(tag_for(MAX_REQUESTS), None);
        assert_eq!(tag_for(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "reserved for the PAD sentinel")]
    fn encoding_with_the_reserved_tag_is_rejected() {
        let _ = encode_key(u32::MAX, 0, Direction::Ascending);
    }

    #[test]
    fn batch_through_the_machine_matches_independent_sorts() {
        let reqs: Vec<(Vec<u32>, Direction)> = vec![
            (vec![9, 3, 3, 7], Direction::Ascending),
            (vec![], Direction::Ascending),
            (vec![2, 1], Direction::Descending),
            (vec![u32::MAX, 0, 5], Direction::Ascending),
            (vec![8], Direction::Descending),
        ];
        let mut batch = TaggedBatch::new();
        for (keys, dir) in &reqs {
            batch.push(keys, *dir);
        }
        let (words, per_rank) = batch.padded_words(4);
        assert_eq!(words.len(), per_rank * 4);
        let run = run_parallel_sort(
            &words,
            4,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let replies = batch.split(&run.output);
        assert_eq!(replies.len(), reqs.len());
        for ((keys, dir), reply) in reqs.iter().zip(&replies) {
            assert_eq!(reply, &sorted_independently(keys, *dir));
        }
    }
}
