//! Pack/unpack mask analysis (Section 3.3.1).
//!
//! A remap between two bit-pattern layouts is described by its *pack mask*:
//! the local-address bit positions whose absolute bits become processor
//! bits under the new layout ("shaded" in Figures 3.18–3.19). With `r`
//! shaded bits, the mask implies the whole communication structure of
//! Lemma 4:
//!
//! * each processor keeps `n / 2^r` elements,
//! * processors exchange within aligned groups of `2^r` consecutive ranks,
//! * the `i`-th block on group-offset `j` goes to group member `i` as its
//!   `j`-th block (Figure 3.20).
//!
//! The executable gather/scatter realization lives in
//! [`crate::remap::RemapPlan`]; this module exposes the mask structure
//! itself for analysis, the layout explorer, and the Lemma 4 tests.

use crate::address::BitLayout;

/// Structure of one remap's pack mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskInfo {
    /// `N_BitsChanged` — number of shaded bits, `r`.
    pub bits_changed: u32,
    /// Old-layout local bit positions that are shaded (become processor
    /// bits under the new layout), ascending.
    pub shaded_local_bits: Vec<u32>,
    /// Old-layout local bit positions that stay local, ascending — these
    /// index elements *within* a long message.
    pub unshaded_local_bits: Vec<u32>,
    /// Elements each processor keeps, `n / 2^r`.
    pub kept_per_proc: usize,
    /// Size of each communication group, `2^r`.
    pub group_size: usize,
}

impl MaskInfo {
    /// Analyze the remap `old → new`.
    ///
    /// # Panics
    /// Panics if the layouts disagree on dimensions.
    #[must_use]
    pub fn new(old: &BitLayout, new: &BitLayout) -> Self {
        assert_eq!(old.lg_total(), new.lg_total());
        assert_eq!(old.lg_local(), new.lg_local());
        let mut shaded = Vec::new();
        let mut unshaded = Vec::new();
        for pos in 0..old.lg_local() {
            let abs_bit = old.source_of(pos);
            if new.is_proc_bit(abs_bit) {
                shaded.push(pos);
            } else {
                unshaded.push(pos);
            }
        }
        let r = shaded.len() as u32;
        MaskInfo {
            bits_changed: r,
            shaded_local_bits: shaded,
            unshaded_local_bits: unshaded,
            kept_per_proc: old.local_size() >> r,
            group_size: 1usize << r,
        }
    }

    /// First rank of the communication group containing `me` —
    /// `2^r · ⌊me / 2^r⌋` when groups are aligned (Lemma 4).
    #[must_use]
    pub fn group_base(&self, me: usize) -> usize {
        (me / self.group_size) * self.group_size
    }

    /// Render the pack mask thesis-style: local bits from most to least
    /// significant, shaded positions bracketed (cf. Figure 3.18).
    #[must_use]
    pub fn pack_mask_string(&self) -> String {
        let lg_local = (self.shaded_local_bits.len() + self.unshaded_local_bits.len()) as u32;
        (0..lg_local)
            .rev()
            .map(|pos| {
                if self.shaded_local_bits.contains(&pos) {
                    format!("[{pos}]")
                } else {
                    format!(" {pos} ")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{blocked, cyclic};
    use crate::schedule::SmartSchedule;

    #[test]
    fn blocked_to_cyclic_shades_low_bits() {
        // All lg P low local bits become processor bits.
        let (lg_total, lg_local) = (8u32, 5u32);
        let info = MaskInfo::new(&blocked(lg_total, lg_local), &cyclic(lg_total, lg_local));
        assert_eq!(info.bits_changed, 3);
        assert_eq!(info.shaded_local_bits, vec![0, 1, 2]);
        assert_eq!(info.unshaded_local_bits, vec![3, 4]);
        assert_eq!(info.kept_per_proc, 4);
        assert_eq!(info.group_size, 8, "blocked->cyclic is a full all-to-all");
    }

    #[test]
    fn identity_remap_has_empty_mask() {
        let b = blocked(6, 3);
        let info = MaskInfo::new(&b, &b);
        assert_eq!(info.bits_changed, 0);
        assert!(info.shaded_local_bits.is_empty());
        assert_eq!(info.kept_per_proc, 8);
        assert_eq!(info.group_size, 1);
    }

    #[test]
    fn mask_info_agrees_with_schedule_walker() {
        // Figure 3.4's bits-changed sequence, recovered from the masks.
        let sched = SmartSchedule::new(256, 16);
        let mut prev = sched.blocked_layout();
        let mut bits = Vec::new();
        for phase in &sched.phases {
            bits.push(MaskInfo::new(&prev, &phase.layout).bits_changed);
            prev = phase.layout_after.clone();
        }
        assert_eq!(bits, vec![1, 2, 3, 3, 4, 4, 2]);
    }

    #[test]
    fn groups_are_aligned_along_the_schedule() {
        // Lemma 4: each processor's partner set is exactly the rest of its
        // aligned 2^r group; verified against explicit destination sets.
        for (n_total, p) in [(256usize, 16usize), (512, 8)] {
            let sched = SmartSchedule::new(n_total, p);
            let n = n_total / p;
            let mut prev = sched.blocked_layout();
            for phase in &sched.phases {
                let info = MaskInfo::new(&prev, &phase.layout);
                for me in 0..p {
                    let mut dests: Vec<usize> = (0..n)
                        .map(|x| phase.layout.proc_of(prev.abs_at(me, x)))
                        .collect();
                    dests.sort_unstable();
                    dests.dedup();
                    let base = info.group_base(me);
                    let expect: Vec<usize> = (base..base + info.group_size).collect();
                    assert_eq!(dests, expect, "rank {me} at {:?}", phase.info);
                }
                prev = phase.layout_after.clone();
            }
        }
    }

    #[test]
    fn pack_mask_string_brackets_shaded_bits() {
        let info = MaskInfo::new(&blocked(4, 2), &cyclic(4, 2));
        let s = info.pack_mask_string();
        assert!(s.contains("[0]") && s.contains("[1]"), "mask: {s}");
    }
}
