//! Remap shifting strategies (Section 3.2.2, Lemma 5).
//!
//! The canonical schedule (*HeadRemap*) runs `lg n` steps after every remap
//! and leaves the short tail of
//! `N_RemainingSteps = lgP(lgP+1)/2 mod lg n` steps for the last phase.
//! Shifting the remaps changes which phase is short — and with it the
//! total volume transferred:
//!
//! * **Head** — short phase last (the Algorithm 1 default);
//! * **Tail** — short phase first;
//! * **Middle1** — split the short phase across the first and last phases
//!   (one *extra* remap);
//! * **Middle2** — shift left so first + last phases share
//!   `lg n + N_RemainingSteps` steps (same remap count).
//!
//! Lemma 5 proves `V_Tail <= V_Head < V_Middle1` and
//! `V_Tail <= V_Middle2` for `n >= P²`, with `V_Head = V_Tail` in the
//! common regime — all verified as tests here over the whole grid, from
//! the actual layouts rather than the closed forms.
//!
//! Shifted phases may execute fewer than `lg n` steps under a layout built
//! for a full block, so the local computation uses the canonical
//! compare-exchange engine (the crossing layouts keep *both* step windows
//! local, making the Theorem 3 transpose unnecessary here).

use crate::address::BitLayout;
use crate::layout::blocked;
use crate::local::run_step_canonical;
use crate::remap::RemapPlan;
use crate::smart::SmartParams;
use bitonic_network::network::StepId;
use local_sorts::{local_sort_with_scratch, RadixKey};
use logp::metrics::CommMetrics;
use spmd::{Comm, Phase};

/// Where the short phase(s) sit (Lemma 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftStrategy {
    /// Short phase last — the Algorithm 1 default.
    Head,
    /// Short phase first.
    Tail,
    /// Short phase split `head + tail = N_RemainingSteps`; adds one remap.
    Middle1 {
        /// Steps executed after the very first remap (`N_StepsHead > 0`).
        head: u32,
    },
    /// First + last phases share `lg n + N_RemainingSteps` steps; remap
    /// count unchanged.
    Middle2 {
        /// Steps executed after the very first remap (`0 < head < lg n`).
        head: u32,
    },
}

/// `N_RemainingSteps` of Lemma 5.
#[must_use]
pub fn remaining_steps(lg_n: u32, lg_p: u32) -> u32 {
    (lg_p * (lg_p + 1) / 2) % lg_n
}

/// The per-phase step counts a strategy induces. Empty for `P = 1`.
///
/// # Panics
/// Panics when the strategy's preconditions don't hold (e.g. `Middle1`
/// with `N_RemainingSteps < 2`, or out-of-range `head` values).
#[must_use]
pub fn phase_lengths(lg_n: u32, lg_p: u32, strategy: ShiftStrategy) -> Vec<u32> {
    assert!(lg_n >= 1);
    if lg_p == 0 {
        return Vec::new();
    }
    let total = lg_p * lg_n + lg_p * (lg_p + 1) / 2;
    let rem = remaining_steps(lg_n, lg_p);
    let full_phases = (total - rem) / lg_n;
    let mut lens = match strategy {
        ShiftStrategy::Head => {
            let mut v = vec![lg_n; full_phases as usize];
            if rem > 0 {
                v.push(rem);
            }
            v
        }
        ShiftStrategy::Tail => {
            let mut v = Vec::with_capacity(full_phases as usize + 1);
            if rem > 0 {
                v.push(rem);
            }
            v.extend(std::iter::repeat_n(lg_n, full_phases as usize));
            v
        }
        ShiftStrategy::Middle1 { head } => {
            assert!(rem >= 2, "Middle1 needs N_RemainingSteps >= 2, got {rem}");
            assert!(head >= 1 && head < rem, "need 0 < head < {rem}");
            let tail = rem - head;
            let mut v = vec![head];
            v.extend(std::iter::repeat_n(lg_n, full_phases as usize));
            v.push(tail);
            v
        }
        ShiftStrategy::Middle2 { head } => {
            assert!(full_phases >= 1, "Middle2 needs at least one full phase");
            assert!(head >= 1 && head < lg_n, "need 0 < head < lg n");
            let tail = lg_n + rem - head;
            assert!(
                tail >= 1 && tail <= lg_n,
                "tail {tail} out of range; pick a larger head"
            );
            let mut v = vec![head];
            v.extend(std::iter::repeat_n(lg_n, full_phases as usize - 1));
            v.push(tail);
            v
        }
    };
    // Degenerate splits can produce zero-length phases; drop them.
    lens.retain(|&l| l > 0);
    debug_assert_eq!(lens.iter().sum::<u32>(), total);
    lens
}

/// One phase of a shifted schedule.
#[derive(Debug, Clone)]
pub struct ShiftedPhase {
    /// Layout installed by this phase's remap.
    pub layout: BitLayout,
    /// The network steps executed locally (≤ `lg n` of them).
    pub steps: Vec<StepId>,
}

/// A shifted remap schedule.
#[derive(Debug, Clone)]
pub struct ShiftedSchedule {
    lg_n: u32,
    lg_p: u32,
    /// Phases in execution order.
    pub phases: Vec<ShiftedPhase>,
}

impl ShiftedSchedule {
    /// Build the shifted schedule for `n_total` keys on `p` processors.
    #[must_use]
    pub fn new(n_total: usize, p: usize, strategy: ShiftStrategy) -> Self {
        let lg_total = bitonic_network::lg(n_total);
        let lg_p = bitonic_network::lg(p);
        assert!(lg_total > lg_p, "need at least two keys per processor");
        let lg_n = lg_total - lg_p;
        let lengths = phase_lengths(lg_n, lg_p, strategy);

        let mut phases = Vec::with_capacity(lengths.len());
        let mut cursor = Some(StepId {
            stage: lg_n + 1,
            step: lg_n + 1,
        });
        for len in lengths {
            let start = cursor.expect("lengths must tile the tail of the network");
            let k = start.stage - lg_n;
            let layout = if k == lg_p && start.step <= lg_n {
                blocked(lg_total, lg_n)
            } else {
                SmartParams::new(lg_n, lg_p, k, start.step).layout(lg_n, lg_p)
            };
            let mut steps = Vec::with_capacity(len as usize);
            let mut cur = Some(start);
            for _ in 0..len {
                let id = cur.expect("phase ran past the end of the network");
                steps.push(id);
                cur = id.next(lg_total);
            }
            cursor = cur;
            phases.push(ShiftedPhase { layout, steps });
        }
        assert!(cursor.is_none(), "phases must consume the whole network");
        ShiftedSchedule { lg_n, lg_p, phases }
    }

    /// The blocked layout the sort starts in.
    #[must_use]
    pub fn blocked_layout(&self) -> BitLayout {
        blocked(self.lg_n + self.lg_p, self.lg_n)
    }

    /// Total `R`/`V`/`M` per processor, derived from the layout chain. The
    /// final remap back to blocked (if the last phase does not already end
    /// blocked) is *not* included, matching the accounting of Section
    /// 3.2.2 (all strategies end identically).
    #[must_use]
    pub fn metrics(&self) -> CommMetrics {
        let n = 1u64 << self.lg_n;
        let mut m = CommMetrics {
            remaps: 0,
            volume: 0,
            messages: 0,
        };
        let mut prev = self.blocked_layout();
        for phase in &self.phases {
            let r = prev.bits_changed_to(&phase.layout);
            m.remaps += 1;
            m.volume += n - (n >> r);
            m.messages += (1u64 << r) - 1;
            prev = phase.layout.clone();
        }
        m
    }
}

/// Sort with a shifted smart schedule. Local phases use the canonical
/// compare-exchange engine; a final remap back to the blocked layout
/// delivers the standard output placement.
pub fn shifted_smart_sort<K: RadixKey>(
    comm: &mut Comm<K>,
    mut local: Vec<K>,
    strategy: ShiftStrategy,
) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "keys per processor must be a power of two"
    );
    comm.reset_kernel_tally();
    let mut scratch: Vec<K> = Vec::new();
    if p == 1 {
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(
                &mut local,
                &mut scratch,
                bitonic_network::Direction::Ascending,
            );
        });
        comm.drain_kernel_tally();
        return local;
    }
    let sched = ShiftedSchedule::new(n * p, p, strategy);
    let blocked_layout = sched.blocked_layout();

    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(
            &mut local,
            &mut scratch,
            crate::local::initial_direction(&blocked_layout, me),
        );
    });
    comm.drain_kernel_tally();

    let mut prev = blocked_layout.clone();
    for phase in &sched.phases {
        let plan = RemapPlan::new(&prev, &phase.layout, me);
        local = plan.apply(comm, &local);
        comm.timed(Phase::Compute, |_| {
            for &step in &phase.steps {
                run_step_canonical(&phase.layout, me, &mut local, step);
            }
        });
        prev = phase.layout.clone();
    }
    // Deliver the output in the blocked layout (a no-op when the last
    // phase already ended blocked).
    if prev != blocked_layout {
        let plan = RemapPlan::new(&prev, &blocked_layout, me);
        local = plan.apply(comm, &local);
    }
    comm.barrier();
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::{run_spmd, MessageMode};

    fn volume(n_total: usize, p: usize, strategy: ShiftStrategy) -> u64 {
        ShiftedSchedule::new(n_total, p, strategy).metrics().volume
    }

    #[test]
    fn head_matches_the_canonical_schedule() {
        // The Head strategy *is* Algorithm 1's schedule: same phase count,
        // same volumes.
        for (lgn, lgp) in [(4u32, 4u32), (6, 3), (5, 5), (3, 2)] {
            let n_total = 1usize << (lgn + lgp);
            let p = 1usize << lgp;
            let head = ShiftedSchedule::new(n_total, p, ShiftStrategy::Head);
            let canonical = crate::complexity::smart_metrics(n_total, p);
            assert_eq!(head.metrics(), canonical, "lgn={lgn} lgp={lgp}");
        }
    }

    #[test]
    fn lemma_5_inequalities() {
        // V_Tail <= V_Head < V_Middle1 and V_Tail <= V_Middle2, n >= P^2.
        for (lgn, lgp) in [(4u32, 3u32), (5, 3), (6, 4), (7, 4), (8, 5), (10, 5)] {
            if lgn < lgp {
                continue;
            }
            let n_total = 1usize << (lgn + lgp);
            let p = 1usize << lgp;
            let rem = remaining_steps(lgn, lgp);
            let v_head = volume(n_total, p, ShiftStrategy::Head);
            let v_tail = volume(n_total, p, ShiftStrategy::Tail);
            assert!(
                v_tail <= v_head,
                "lgn={lgn} lgp={lgp}: tail {v_tail} vs head {v_head}"
            );
            if rem >= 2 {
                for head in 1..rem {
                    let v_m1 = volume(n_total, p, ShiftStrategy::Middle1 { head });
                    assert!(
                        v_head < v_m1,
                        "lgn={lgn} lgp={lgp} head={head}: head {v_head} vs middle1 {v_m1}"
                    );
                }
            }
            for head in 1..lgn {
                let tail = lgn + rem - head;
                if tail == 0 || tail > lgn || tail < rem {
                    continue; // outside Lemma 5's Middle2 constraints
                }
                let v_m2 = volume(n_total, p, ShiftStrategy::Middle2 { head });
                assert!(
                    v_tail <= v_m2,
                    "lgn={lgn} lgp={lgp} head={head}: tail {v_tail} vs middle2 {v_m2}"
                );
            }
        }
    }

    #[test]
    fn head_equals_tail_in_common_regime() {
        // lgP(lgP+1)/2 <= lg n  ⇒  V_Head = V_Tail = n lg P.
        for (lgn, lgp) in [(10u32, 4u32), (15, 5), (6, 3)] {
            let n_total = 1usize << (lgn + lgp);
            let p = 1usize << lgp;
            let vh = volume(n_total, p, ShiftStrategy::Head);
            let vt = volume(n_total, p, ShiftStrategy::Tail);
            assert_eq!(vh, vt);
            assert_eq!(vh, (1u64 << lgn) * u64::from(lgp));
        }
    }

    #[test]
    fn phase_lengths_tile_and_respect_lemma_1() {
        for (lgn, lgp) in [(4u32, 4u32), (3, 5), (6, 3)] {
            let rem = remaining_steps(lgn, lgp);
            let total = lgp * lgn + lgp * (lgp + 1) / 2;
            let mut strategies = vec![ShiftStrategy::Head, ShiftStrategy::Tail];
            if rem >= 2 {
                strategies.push(ShiftStrategy::Middle1 { head: 1 });
            }
            if rem >= 1 && lgn >= 2 {
                // pick a head satisfying tail <= lg n.
                strategies.push(ShiftStrategy::Middle2 {
                    head: rem.max(1).min(lgn - 1),
                });
            }
            for s in strategies {
                let lens = phase_lengths(lgn, lgp, s);
                assert_eq!(lens.iter().sum::<u32>(), total, "{s:?}");
                assert!(lens.iter().all(|&l| l >= 1 && l <= lgn), "{s:?}: {lens:?}");
            }
        }
    }

    #[test]
    fn every_shifted_step_is_local() {
        for strategy in [
            ShiftStrategy::Head,
            ShiftStrategy::Tail,
            ShiftStrategy::Middle2 { head: 2 },
        ] {
            let sched = ShiftedSchedule::new(256, 16, strategy);
            for phase in &sched.phases {
                for s in &phase.steps {
                    assert!(
                        phase.layout.local_position_of(s.bit()).is_some(),
                        "{strategy:?}: step {s:?} not local"
                    );
                }
            }
        }
    }

    #[test]
    fn all_strategies_sort_on_the_machine() {
        let total = 512usize;
        let p = 8;
        let mut keys: Vec<u32> = (0..total as u32)
            .map(|i| i.wrapping_mul(2654435761))
            .collect();
        let expect = {
            let mut e = keys.clone();
            e.sort_unstable();
            e
        };
        let rem = remaining_steps(bitonic_network::lg(total / p), bitonic_network::lg(p));
        let mut strategies = vec![ShiftStrategy::Head, ShiftStrategy::Tail];
        if rem >= 2 {
            strategies.push(ShiftStrategy::Middle1 { head: 1 });
        }
        strategies.push(ShiftStrategy::Middle2 { head: 2 });
        for strategy in strategies {
            let keys2 = keys.clone();
            let results = run_spmd::<u32, _, _>(p, MessageMode::Long, move |comm| {
                let me = comm.rank();
                let n = keys2.len() / 8;
                shifted_smart_sort(comm, keys2[me * n..(me + 1) * n].to_vec(), strategy)
            });
            let flat: Vec<u32> = results.into_iter().flat_map(|r| r.output).collect();
            assert_eq!(flat, expect, "{strategy:?}");
        }
        keys.sort_unstable();
    }

    #[test]
    fn middle1_adds_exactly_one_remap() {
        // lg n = 4, lg P = 4: rem = 10 mod 4 = 2.
        let head = ShiftedSchedule::new(256, 16, ShiftStrategy::Head);
        let m1 = ShiftedSchedule::new(256, 16, ShiftStrategy::Middle1 { head: 1 });
        assert_eq!(m1.phases.len(), head.phases.len() + 1);
        let m2 = ShiftedSchedule::new(256, 16, ShiftStrategy::Middle2 { head: 2 });
        assert_eq!(m2.phases.len(), head.phases.len());
    }

    #[test]
    #[should_panic(expected = "Middle1 needs")]
    fn middle1_requires_remainder() {
        // lg n = 5, lg P = 5: rem = 15 mod 5 = 0.
        let _ = phase_lengths(5, 5, ShiftStrategy::Middle1 { head: 1 });
    }
}
