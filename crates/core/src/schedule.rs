//! The remap schedule of Algorithm 1.
//!
//! The sort starts under a blocked layout (first `lg n` stages are fully
//! local) and then, for the last `lg P` stages, installs one smart layout
//! per `lg n` network steps. This module materializes that plan: for each
//! remap, the layout it installs, the layout the phase ends in, and the
//! exact network steps executed locally in between.
//!
//! The *positions* of the remaps come from the `NextStage`/`NextStep`
//! recurrence, shared with the `logp` crate
//! ([`logp::metrics::smart_schedule`]) so that the arithmetic walker and
//! this layout-producing builder cross-validate each other.

use crate::address::BitLayout;
use crate::layout::blocked;
use crate::smart::{RemapKind, SmartParams};
use bitonic_network::network::StepId;
use logp::metrics::{smart_schedule, SmartRemapInfo};

/// One remap plus the local phase that follows it.
#[derive(Debug, Clone)]
pub struct RemapPhase {
    /// Position and bits-changed data from the schedule walker.
    pub info: SmartRemapInfo,
    /// The Definition 7 parameters of this remap.
    pub params: SmartParams,
    /// Layout installed by the remap (phase-1 order for crossing remaps).
    pub layout: BitLayout,
    /// Local arrangement at the end of the phase (differs from `layout`
    /// only for crossing remaps, via the Theorem 3 transpose).
    pub layout_after: BitLayout,
    /// The network steps executed locally during this phase, in order.
    pub steps: Vec<StepId>,
}

impl RemapPhase {
    /// How many of [`Self::steps`] run before the mid-phase transpose
    /// (crossing remaps only; equals `steps.len()` otherwise).
    #[must_use]
    pub fn steps_before_transpose(&self) -> usize {
        match self.params.kind {
            RemapKind::Crossing => self.params.a as usize,
            _ => self.steps.len(),
        }
    }
}

/// The complete remap plan for sorting `N = n·P` keys on `P` processors.
///
/// ```
/// use bitonic_core::SmartSchedule;
/// // The Figure 3.3 example: N = 256, P = 16 needs only 7 remaps where
/// // cyclic–blocked needs 8.
/// let sched = SmartSchedule::new(256, 16);
/// assert_eq!(sched.remap_count(), 7);
/// println!("{sched}");
/// ```
#[derive(Debug, Clone)]
pub struct SmartSchedule {
    lg_n: u32,
    lg_p: u32,
    /// The remap phases covering the last `lg P` stages, in order.
    pub phases: Vec<RemapPhase>,
}

impl SmartSchedule {
    /// Build the schedule for `n_total` keys on `p` processors.
    ///
    /// # Panics
    /// Panics unless both are powers of two with `n_total >= 2 p` (at
    /// least two keys per processor) — the thesis's standing assumptions.
    #[must_use]
    pub fn new(n_total: usize, p: usize) -> Self {
        let lg_total = bitonic_network::lg(n_total);
        let lg_p = bitonic_network::lg(p);
        assert!(lg_total > lg_p, "need at least two keys per processor");
        let lg_n = lg_total - lg_p;

        let phases = smart_schedule(1usize << lg_n, p)
            .into_iter()
            .map(|info| {
                let k = info.stage as u32 - lg_n;
                let params = SmartParams::new(lg_n, lg_p, k, info.step as u32);
                let step_count = if info.is_last {
                    info.step as usize
                } else {
                    lg_n as usize
                };
                let mut steps = Vec::with_capacity(step_count);
                let mut cur = Some(StepId {
                    stage: info.stage as u32,
                    step: info.step as u32,
                });
                for _ in 0..step_count {
                    let id = cur.expect("schedule walked past the end of the network");
                    steps.push(id);
                    cur = id.next(lg_total);
                }
                RemapPhase {
                    info,
                    layout: params.layout(lg_n, lg_p),
                    layout_after: params.layout_after(lg_n, lg_p),
                    params,
                    steps,
                }
            })
            .collect();
        SmartSchedule { lg_n, lg_p, phases }
    }

    /// Local-address width `lg n`.
    #[must_use]
    pub fn lg_n(&self) -> u32 {
        self.lg_n
    }

    /// Processor-address width `lg P`.
    #[must_use]
    pub fn lg_p(&self) -> u32 {
        self.lg_p
    }

    /// The blocked layout the sort starts and ends in.
    #[must_use]
    pub fn blocked_layout(&self) -> BitLayout {
        blocked(self.lg_n + self.lg_p, self.lg_n)
    }

    /// Number of remaps (`R_Smart`).
    #[must_use]
    pub fn remap_count(&self) -> usize {
        self.phases.len()
    }
}

impl std::fmt::Display for SmartSchedule {
    /// The Figure 3.3/3.4 view: one line per remap with its position,
    /// Definition 7 parameters and absolute-address bit pattern.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "smart schedule: lg n = {}, lg P = {}, {} remaps",
            self.lg_n,
            self.lg_p,
            self.phases.len()
        )?;
        for (i, phase) in self.phases.iter().enumerate() {
            writeln!(
                f,
                "  remap {i}: stage {:>2} step {:>2}  {:?}  (k,s,a,b,t)=({},{},{},{},{})  {}",
                phase.info.stage,
                phase.info.step,
                phase.params.kind,
                phase.params.k,
                phase.params.s,
                phase.params.a,
                phase.params.b,
                phase.params.t,
                phase.layout.pattern_string()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_network::BitonicNetwork;

    #[test]
    fn steps_tile_the_tail_of_the_network() {
        // Initial blocked stages 1..=lg n plus all phase steps must equal
        // the full network schedule, in order, exactly once.
        for (lg_n, lg_p) in [(4u32, 4u32), (5, 3), (3, 5), (2, 2), (1, 3), (6, 1)] {
            let n_total = 1usize << (lg_n + lg_p);
            let sched = SmartSchedule::new(n_total, 1 << lg_p);
            let net = BitonicNetwork::new(n_total);
            let mut expected = net.steps();
            // Blocked prefix: stages 1..=lg n.
            for stage in 1..=lg_n {
                for step in (1..=stage).rev() {
                    assert_eq!(expected.next(), Some(StepId { stage, step }));
                }
            }
            for phase in &sched.phases {
                for &s in &phase.steps {
                    assert_eq!(expected.next(), Some(s), "lgn={lg_n} lgp={lg_p}");
                }
            }
            assert_eq!(expected.next(), None, "no steps may remain");
        }
    }

    #[test]
    fn every_phase_step_is_local_in_its_layout() {
        for (lg_n, lg_p) in [(4u32, 4u32), (5, 3), (3, 5), (2, 6)] {
            let sched = SmartSchedule::new(1usize << (lg_n + lg_p), 1 << lg_p);
            for phase in &sched.phases {
                let before = phase.steps_before_transpose();
                for (i, s) in phase.steps.iter().enumerate() {
                    let layout = if i < before {
                        &phase.layout
                    } else {
                        &phase.layout_after
                    };
                    assert!(
                        layout.local_position_of(s.bit()).is_some(),
                        "lgn={lg_n} lgp={lg_p} phase {:?} step {s:?} not local",
                        phase.info
                    );
                }
            }
        }
    }

    #[test]
    fn layout_bits_changed_matches_the_arithmetic_walker() {
        // Lemma 3 via two independent routes: the layout diff and the
        // closed-form bits_changed of the logp walker.
        for (lg_n, lg_p) in [(4u32, 4u32), (5, 3), (3, 5), (2, 6), (10, 5)] {
            let sched = SmartSchedule::new(1usize << (lg_n + lg_p), 1 << lg_p);
            let mut prev = sched.blocked_layout();
            for phase in &sched.phases {
                assert_eq!(
                    prev.bits_changed_to(&phase.layout),
                    phase.info.bits_changed,
                    "lgn={lg_n} lgp={lg_p} phase {:?}",
                    phase.info
                );
                prev = phase.layout_after.clone();
            }
        }
    }

    #[test]
    fn figure_3_3_example_seven_phases() {
        let sched = SmartSchedule::new(256, 16);
        assert_eq!(sched.remap_count(), 7);
        let kinds: Vec<RemapKind> = sched.phases.iter().map(|p| p.params.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RemapKind::Inside,
                RemapKind::Crossing,
                RemapKind::Crossing,
                RemapKind::Inside,
                RemapKind::Crossing,
                RemapKind::Inside,
                RemapKind::Last,
            ]
        );
    }

    #[test]
    fn last_phase_ends_blocked() {
        for (n_total, p) in [(256usize, 16usize), (1 << 12, 8), (64, 4)] {
            let sched = SmartSchedule::new(n_total, p);
            let last = sched.phases.last().unwrap();
            assert_eq!(last.params.kind, RemapKind::Last);
            assert_eq!(last.layout_after, sched.blocked_layout());
        }
    }

    #[test]
    fn single_processor_has_no_phases() {
        let sched = SmartSchedule::new(64, 1);
        assert!(sched.phases.is_empty());
    }

    #[test]
    fn common_regime_is_one_inside_then_crossings() {
        // Section 4.1: for lgP(lgP+1)/2 <= lg n there is an initial inside
        // remap and then only crossing remaps (plus the last one).
        let sched = SmartSchedule::new(1usize << 25, 32); // lg n = 20, lg P = 5
        assert_eq!(sched.phases[0].params.kind, RemapKind::Inside);
        for phase in &sched.phases[1..sched.phases.len() - 1] {
            assert_eq!(phase.params.kind, RemapKind::Crossing);
        }
        assert_eq!(sched.phases.last().unwrap().params.kind, RemapKind::Last);
    }

    #[test]
    fn display_lists_every_remap() {
        let sched = SmartSchedule::new(256, 16);
        let text = format!("{sched}");
        assert_eq!(text.matches("remap ").count(), 7);
        assert!(text.contains("Crossing"));
        assert!(text.contains("(k,s,a,b,t)=(1,5,0,4,1)"));
    }

    #[test]
    #[should_panic(expected = "two keys per processor")]
    fn rejects_one_key_per_processor() {
        let _ = SmartSchedule::new(8, 8);
    }
}
