//! The generic remap engine: redistributing data between two layouts.
//!
//! A remap is a three-phase long-message transfer (Figure 3.17): *pack* the
//! elements bound for each processor into one message, *transfer* the
//! messages, *unpack* arrivals into their local addresses. The pack and
//! unpack masks of Section 3.3.1 become, for arbitrary [`BitLayout`]s,
//! precomputed gather/scatter index tables; the canonical message order is
//! ascending destination local address, so the receiver needs no per-key
//! address headers (both sides derive the order from the two layouts).

use crate::address::BitLayout;
use spmd::{Comm, Phase};

/// A precomputed remap between two layouts, from one rank's perspective.
///
/// ```
/// use bitonic_core::layout::{blocked, cyclic};
/// use bitonic_core::RemapPlan;
/// let plan = RemapPlan::new(&blocked(4, 2), &cyclic(4, 2), 0);
/// // Under a full blocked→cyclic remap every rank keeps n/P elements…
/// assert_eq!(plan.kept(0), 1);
/// // …and exchanges with every other rank (group of P).
/// assert_eq!(plan.partners(0).count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RemapPlan {
    procs: usize,
    local: usize,
    /// Local source indices to pack, concatenated per destination rank in
    /// rank order; segment `dst` is ordered by the element's destination
    /// local address (the pack mask). One flat table instead of
    /// `Vec<Vec<u32>>` keeps the pack loop a single linear walk.
    gather: Vec<u32>,
    /// `gather_offsets[d]..gather_offsets[d + 1]` bounds destination `d`'s
    /// segment of `gather`.
    gather_offsets: Vec<usize>,
    /// Local destination indices for arriving elements, concatenated per
    /// source rank in rank order; segment `src` is in the same canonical
    /// order the sender packed (the unpack mask). Always a permutation of
    /// `0..local`.
    scatter: Vec<u32>,
    /// `scatter_offsets[s]..scatter_offsets[s + 1]` bounds source `s`'s
    /// segment of `scatter`.
    scatter_offsets: Vec<usize>,
    /// Per-destination segment lengths — exactly the `send_counts` of
    /// [`spmd::Comm::alltoallv`].
    send_counts: Vec<usize>,
    /// Per-source segment lengths — the `recv_counts` of `alltoallv`,
    /// computable on both sides because the plan is shared knowledge.
    recv_counts: Vec<usize>,
    /// `dest[x]` — destination rank of local position `x`; the inverse
    /// view of `gather`, used by the fused pipeline to pack in array
    /// order.
    dest: Vec<u32>,
}

impl RemapPlan {
    /// Plan the remap `old → new` as seen from processor `me`.
    ///
    /// # Panics
    /// Panics if the layouts disagree on dimensions.
    #[must_use]
    pub fn new(old: &BitLayout, new: &BitLayout, me: usize) -> Self {
        assert_eq!(
            old.lg_total(),
            new.lg_total(),
            "layouts must address the same N"
        );
        assert_eq!(old.lg_local(), new.lg_local(), "layouts must agree on n");
        let procs = old.procs();
        let local = old.local_size();
        assert!(me < procs);

        // Pack side: where does each of my current elements go? Build the
        // per-destination segments sorted by destination local address,
        // then flatten them into one table with offsets.
        let mut gather_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); procs];
        let mut dest = vec![0u32; local];
        for (x, d) in dest.iter_mut().enumerate() {
            let abs = old.abs_at(me, x);
            let dst = new.proc_of(abs);
            let new_local = new.local_of(abs);
            *d = dst as u32;
            gather_pairs[dst].push((new_local as u32, x as u32));
        }
        let mut gather = Vec::with_capacity(local);
        let mut gather_offsets = Vec::with_capacity(procs + 1);
        let mut send_counts = Vec::with_capacity(procs);
        gather_offsets.push(0);
        for mut segment in gather_pairs {
            segment.sort_unstable_by_key(|&(new_local, _)| new_local);
            send_counts.push(segment.len());
            gather.extend(segment.into_iter().map(|(_, x)| x));
            gather_offsets.push(gather.len());
        }

        // Unpack side: which of my future elements come from each source?
        // Walking new local addresses in ascending order reproduces the
        // sender's canonical order without communication. Two passes: count
        // each source's segment, then fill the flat table in place.
        let mut recv_counts = vec![0usize; procs];
        for y in 0..local {
            recv_counts[old.proc_of(new.abs_at(me, y))] += 1;
        }
        let mut scatter_offsets = Vec::with_capacity(procs + 1);
        scatter_offsets.push(0);
        for &c in &recv_counts {
            scatter_offsets.push(scatter_offsets.last().unwrap() + c);
        }
        let mut cursor = scatter_offsets.clone();
        let mut scatter = vec![0u32; local];
        for y in 0..local {
            let src = old.proc_of(new.abs_at(me, y));
            scatter[cursor[src]] = y as u32;
            cursor[src] += 1;
        }
        RemapPlan {
            procs,
            local,
            gather,
            gather_offsets,
            scatter,
            scatter_offsets,
            send_counts,
            recv_counts,
            dest,
        }
    }

    /// Number of elements this rank keeps (`N_keep = n / 2^{N_BitsChanged}`,
    /// Section 3.2.1).
    #[must_use]
    pub fn kept(&self, me: usize) -> usize {
        self.send_counts[me]
    }

    /// Number of elements this rank sends away.
    #[must_use]
    pub fn sent(&self, me: usize) -> usize {
        self.local - self.kept(me)
    }

    /// Ranks this plan actually exchanges data with (non-empty messages).
    pub fn partners(&self, me: usize) -> impl Iterator<Item = usize> + '_ {
        let me_copy = me;
        (0..self.procs).filter(move |&d| d != me_copy && self.send_counts[d] > 0)
    }

    /// The gather indices (pack mask realization) for destination `dst`.
    #[must_use]
    pub fn gather_indices(&self, dst: usize) -> &[u32] {
        &self.gather[self.gather_offsets[dst]..self.gather_offsets[dst + 1]]
    }

    /// The scatter indices (unpack mask realization) for source `src`.
    #[must_use]
    pub fn scatter_indices(&self, src: usize) -> &[u32] {
        &self.scatter[self.scatter_offsets[src]..self.scatter_offsets[src + 1]]
    }

    /// Per-destination message sizes — the `send_counts` argument of
    /// [`spmd::Comm::alltoallv`] for this remap.
    #[must_use]
    pub fn send_counts(&self) -> &[usize] {
        &self.send_counts
    }

    /// Per-source message sizes — the `recv_counts` argument of
    /// [`spmd::Comm::alltoallv`] for this remap.
    #[must_use]
    pub fn recv_counts(&self) -> &[usize] {
        &self.recv_counts
    }

    /// Destination rank of every local position, `dest[x]` — the inverse
    /// view of the gather tables. Used by the fused pipeline of Section
    /// 4.3 to pack messages in *array order* (so a sorted array yields
    /// sorted messages) with one linear pass. Precomputed, so repeated
    /// phases borrow it for free.
    #[must_use]
    pub fn destinations(&self) -> &[u32] {
        &self.dest
    }

    /// Execute the remap over the SPMD machine: pack, all-to-all transfer,
    /// unpack. `data` is consumed and the relocated array returned. Pack
    /// and unpack wall-clock are charged to their phases; the transfer to
    /// [`Phase::Transfer`] (inside [`Comm::exchange`]).
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the layouts' `n`.
    pub fn apply<K: Copy + Send + 'static>(&self, comm: &mut Comm<K>, data: &[K]) -> Vec<K> {
        assert_eq!(data.len(), self.local, "data length must equal n");
        assert_eq!(
            comm.procs(),
            self.procs,
            "plan built for a different machine size"
        );
        let me = comm.rank();

        let outgoing: Vec<Vec<K>> = comm.timed(Phase::Pack, |_| {
            (0..self.procs)
                .map(|d| {
                    self.gather_indices(d)
                        .iter()
                        .map(|&i| data[i as usize])
                        .collect()
                })
                .collect()
        });

        let incoming = comm.exchange(outgoing);

        comm.timed(Phase::Unpack, |_| {
            let mut out = vec![incoming[me].first().copied().unwrap_or(data[0]); self.local];
            for (src, values) in incoming.iter().enumerate() {
                let slots = self.scatter_indices(src);
                assert_eq!(
                    slots.len(),
                    values.len(),
                    "rank {me}: {src} sent {} elements, expected {}",
                    values.len(),
                    slots.len()
                );
                for (&slot, &v) in slots.iter().zip(values.iter()) {
                    out[slot as usize] = v;
                }
            }
            out
        })
    }

    /// Execute the remap through the zero-copy flat path: each message is
    /// gathered straight into a recycled transfer buffer, moved through
    /// [`Comm::alltoallv_with`] (recv sizes come from the plan, so empty
    /// partners cost nothing), and each arriving segment is scattered
    /// straight into `out` — every element is touched exactly twice, with
    /// no intermediate flat copy on either side.
    ///
    /// `out` is cleared and refilled each call; once it and the
    /// communicator's buffer pool have grown to the remap's working-set
    /// size — after the first call, for a fixed plan — subsequent calls
    /// perform **zero heap allocations**. Callers double-buffer by
    /// swapping `out` with their data vector between remaps (see
    /// [`crate::context::SortContext::remap`]).
    ///
    /// The wire format, message order, and recorded R/V/M counters are
    /// identical to [`RemapPlan::apply`]; the two are property-tested for
    /// exact output equality.
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the layouts' `n` or the plan
    /// was built for a different machine size.
    pub fn apply_into<K: Copy + Send + 'static>(
        &self,
        comm: &mut Comm<K>,
        data: &[K],
        out: &mut Vec<K>,
    ) {
        assert_eq!(data.len(), self.local, "data length must equal n");
        assert_eq!(
            comm.procs(),
            self.procs,
            "plan built for a different machine size"
        );

        // Size the output up front; `scatter` is a permutation of
        // 0..local, so the transfer overwrites every slot.
        out.clear();
        out.resize(self.local, data[0]);
        let out = &mut out[..];
        comm.alltoallv_with(
            &self.send_counts,
            &self.recv_counts,
            |dst, buf| buf.extend(self.gather_indices(dst).iter().map(|&i| data[i as usize])),
            |src, segment| {
                for (&slot, &v) in self.scatter_indices(src).iter().zip(segment.iter()) {
                    out[slot as usize] = v;
                }
            },
        );
    }

    /// Apply the remap without a machine: move elements between the
    /// per-processor arrays directly. Used by the sequential reference
    /// executor and by tests.
    pub fn apply_sequential<K: Copy>(plans: &[RemapPlan], data: &mut [Vec<K>]) {
        let procs = data.len();
        // Pack everything first (the plans may overlap arbitrarily).
        let mut in_flight: Vec<Vec<Vec<K>>> = Vec::with_capacity(procs);
        for (me, plan) in plans.iter().enumerate() {
            in_flight.push(
                (0..procs)
                    .map(|d| {
                        plan.gather_indices(d)
                            .iter()
                            .map(|&i| data[me][i as usize])
                            .collect()
                    })
                    .collect(),
            );
        }
        for (me, plan) in plans.iter().enumerate() {
            for (src, flight) in in_flight.iter_mut().enumerate() {
                let values = std::mem::take(&mut flight[me]);
                let slots = plan.scatter_indices(src);
                assert_eq!(slots.len(), values.len());
                for (&slot, v) in slots.iter().zip(values) {
                    data[me][slot as usize] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{blocked, cyclic};
    use crate::smart::SmartParams;
    use proptest::prelude::*;

    /// Move data between two layouts sequentially and check every node
    /// landed at the address the new layout dictates.
    fn check_remap(old: &BitLayout, new: &BitLayout) {
        let procs = old.procs();
        let n = old.local_size();
        // data[p][x] = absolute address stored there under `old`.
        let mut data: Vec<Vec<usize>> = (0..procs)
            .map(|p| (0..n).map(|x| old.abs_at(p, x)).collect())
            .collect();
        let plans: Vec<RemapPlan> = (0..procs).map(|me| RemapPlan::new(old, new, me)).collect();
        RemapPlan::apply_sequential(&plans, &mut data);
        for (p, row) in data.iter().enumerate() {
            for (x, &abs) in row.iter().enumerate() {
                assert_eq!(
                    (new.proc_of(abs), new.local_of(abs)),
                    (p, x),
                    "node {abs} landed at ({p}, {x})"
                );
            }
        }
    }

    #[test]
    fn blocked_to_cyclic_and_back() {
        for (lg_total, lg_local) in [(4u32, 2u32), (6, 3), (8, 5)] {
            let b = blocked(lg_total, lg_local);
            let c = cyclic(lg_total, lg_local);
            check_remap(&b, &c);
            check_remap(&c, &b);
        }
    }

    #[test]
    fn blocked_to_smart_inside() {
        let b = blocked(8, 4);
        let s = SmartParams::new(4, 4, 1, 5).layout(4, 4);
        check_remap(&b, &s);
    }

    #[test]
    fn whole_figure_3_3_schedule_remaps_correctly() {
        // Chain all seven remaps of the N=256/P=16 example.
        let sched = crate::schedule::SmartSchedule::new(256, 16);
        let mut prev = sched.blocked_layout();
        for phase in &sched.phases {
            check_remap(&prev, &phase.layout);
            // The transpose between layout and layout_after is local-only;
            // check it as a remap too (it must keep everything in place
            // processor-wise).
            check_remap(&phase.layout, &phase.layout_after);
            prev = phase.layout_after.clone();
        }
    }

    #[test]
    fn kept_matches_bits_changed() {
        // N_keep = n / 2^{N_BitsChanged} (Section 3.2.1), identical on all
        // processors.
        let b = blocked(8, 4);
        let s = SmartParams::new(4, 4, 1, 5).layout(4, 4);
        let r = b.bits_changed_to(&s);
        for me in 0..16 {
            let plan = RemapPlan::new(&b, &s, me);
            assert_eq!(plan.kept(me), 16 >> r);
            assert_eq!(plan.sent(me), 16 - (16 >> r));
        }
    }

    #[test]
    fn identity_remap_keeps_everything() {
        let b = blocked(6, 3);
        for me in 0..8 {
            let plan = RemapPlan::new(&b, &b, me);
            assert_eq!(plan.kept(me), 8);
            assert_eq!(plan.partners(me).count(), 0);
        }
    }

    #[test]
    fn partner_set_is_the_lemma_4_group() {
        // Along the real schedule, processors communicate in groups of
        // 2^r consecutive ranks starting at a multiple of 2^r, and each
        // processor sends n / 2^r elements to every other group member.
        for (n_total, p) in [(256usize, 16usize), (1usize << 10, 8)] {
            let sched = crate::schedule::SmartSchedule::new(n_total, p);
            let n = n_total / p;
            let mut prev = sched.blocked_layout();
            for phase in &sched.phases {
                let r = prev.bits_changed_to(&phase.layout);
                let group_size = 1usize << r;
                for me in 0..p {
                    let plan = RemapPlan::new(&prev, &phase.layout, me);
                    let base = (me / group_size) * group_size;
                    let expect: Vec<usize> =
                        (base..base + group_size).filter(|&q| q != me).collect();
                    let got: Vec<usize> = plan.partners(me).collect();
                    assert_eq!(got, expect, "rank {me} at {:?}", phase.info);
                    for q in got {
                        assert_eq!(
                            plan.gather_indices(q).len(),
                            n >> r,
                            "rank {me}->{q}: every group member gets n/2^r elements"
                        );
                    }
                }
                prev = phase.layout_after.clone();
            }
        }
    }

    #[test]
    fn over_the_machine_matches_sequential() {
        use spmd::{run_spmd, MessageMode};
        let old = blocked(6, 3);
        let new = cyclic(6, 3);
        // Sequential reference.
        let mut seq: Vec<Vec<usize>> = (0..8)
            .map(|p| (0..8).map(|x| old.abs_at(p, x) * 10).collect())
            .collect();
        let plans: Vec<RemapPlan> = (0..8).map(|me| RemapPlan::new(&old, &new, me)).collect();
        RemapPlan::apply_sequential(&plans, &mut seq);
        // Machine run.
        let old2 = old.clone();
        let new2 = new.clone();
        let results = run_spmd::<usize, _, _>(8, MessageMode::Long, move |comm| {
            let me = comm.rank();
            let data: Vec<usize> = (0..8).map(|x| old2.abs_at(me, x) * 10).collect();
            let plan = RemapPlan::new(&old2, &new2, me);
            plan.apply(comm, &data)
        });
        for (me, r) in results.iter().enumerate() {
            assert_eq!(r.output, seq[me], "rank {me}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Remapping between two *arbitrary* bit-permutation layouts places
        /// every node exactly where the target layout says, and chaining the
        /// reverse remap restores the original placement.
        #[test]
        fn arbitrary_layout_pairs_roundtrip(
            perm_a in Just(()).prop_perturb(|_, mut rng| {
                let mut v: Vec<u32> = (0..6).collect();
                for i in (1..v.len()).rev() {
                    let j = (rng.next_u32() as usize) % (i + 1);
                    v.swap(i, j);
                }
                v
            }),
            perm_b in Just(()).prop_perturb(|_, mut rng| {
                let mut v: Vec<u32> = (0..6).collect();
                for i in (1..v.len()).rev() {
                    let j = (rng.next_u32() as usize) % (i + 1);
                    v.swap(i, j);
                }
                v
            }),
        ) {
            let a = BitLayout::new(perm_a, 3);
            let b = BitLayout::new(perm_b, 3);
            let procs = a.procs();
            let n = a.local_size();
            let original: Vec<Vec<usize>> =
                (0..procs).map(|p| (0..n).map(|x| a.abs_at(p, x)).collect()).collect();
            let mut data = original.clone();
            let fwd: Vec<RemapPlan> =
                (0..procs).map(|me| RemapPlan::new(&a, &b, me)).collect();
            RemapPlan::apply_sequential(&fwd, &mut data);
            for (p, row) in data.iter().enumerate() {
                for (x, &abs) in row.iter().enumerate() {
                    prop_assert_eq!((b.proc_of(abs), b.local_of(abs)), (p, x));
                }
            }
            let back: Vec<RemapPlan> =
                (0..procs).map(|me| RemapPlan::new(&b, &a, me)).collect();
            RemapPlan::apply_sequential(&back, &mut data);
            prop_assert_eq!(data, original);
        }

        /// Over the running machine, the flat [`RemapPlan::apply_into`]
        /// path produces exactly the same per-rank data *and* the same
        /// R/V/M counter record as the legacy [`RemapPlan::apply`] oracle —
        /// across random layout pairs, machine shapes and both message
        /// modes.
        #[test]
        fn apply_into_matches_apply_over_the_machine(
            perm_a in Just(()).prop_perturb(|_, mut rng| {
                let mut v: Vec<u32> = (0..6).collect();
                for i in (1..v.len()).rev() {
                    let j = (rng.next_u32() as usize) % (i + 1);
                    v.swap(i, j);
                }
                v
            }),
            perm_b in Just(()).prop_perturb(|_, mut rng| {
                let mut v: Vec<u32> = (0..6).collect();
                for i in (1..v.len()).rev() {
                    let j = (rng.next_u32() as usize) % (i + 1);
                    v.swap(i, j);
                }
                v
            }),
            lg_local in 2u32..5,
            long in proptest::prelude::any::<bool>(),
        ) {
            use spmd::{run_spmd, MessageMode};
            let a = BitLayout::new(perm_a, lg_local);
            let b = BitLayout::new(perm_b, lg_local);
            let procs = a.procs();
            let mode = if long { MessageMode::Long } else { MessageMode::Short };
            let (a2, b2) = (a.clone(), b.clone());
            let results = run_spmd::<u64, _, _>(procs, mode, move |comm| {
                let me = comm.rank();
                let data: Vec<u64> = (0..a2.local_size())
                    .map(|x| (a2.abs_at(me, x) * 7 + 1) as u64)
                    .collect();
                let plan = RemapPlan::new(&a2, &b2, me);
                let oracle = plan.apply(comm, &data);
                let mut out = Vec::new();
                plan.apply_into(comm, &data, &mut out);
                (out, oracle)
            });
            for r in &results {
                let (flat, oracle) = &r.output;
                prop_assert_eq!(flat, oracle, "rank {}: flat ≡ oracle", r.rank);
                let [x, y] = &r.stats.remaps[..] else {
                    panic!("expected exactly two remap records");
                };
                prop_assert_eq!(x, y, "rank {}: R/V/M records must match", r.rank);
            }
        }
    }
}
