//! The smart data layout (Definition 7).
//!
//! Given the network position `(stage = lg n + k, step = s)` at which a
//! remap occurs, the smart layout is the 5-tuple `(k, s, a, b, t)` with
//!
//! ```text
//! a = 0, b = lg n, t = s − lg n          if s >= lg n   (inside remap)
//! a = s, b = lg n − a, t = s + k + 1     if s <  lg n   (crossing remap)
//! a = lg n, b = 0, t = lg n              if k = lg P and s <= lg n (last)
//! ```
//!
//! all measured in steps of the network. The absolute-address bit patterns
//! of Figures 3.7/3.8 translate directly into [`BitLayout`]s:
//!
//! * **inside** — local bits are absolute bits `[t, t + lg n)`; the
//!   processor number concatenates the high part `A` (bits `[t + lg n,
//!   lg N)`) over the low part `C` (bits `[0, t)`).
//! * **crossing** — local bits are the low `a` bits (region `D`, the steps
//!   still to run in stage `lg n + k`) plus bits `[t, t + b)` (region `B`,
//!   the steps to run in stage `lg n + k + 1`); the processor number
//!   concatenates `A = [t + b, lg N)` over `C = [a, t)`.
//!
//! A crossing phase uses two local bit orders: the remap installs
//! `(B << a) | D` so the first `a` steps act on contiguous chunks, and
//! after those steps the processor transposes to `(D << b) | B` so the
//! remaining `b` steps do too — "we change the local remap by
//! interchanging the first `b` bits of the local address with the last
//! `a` bits" (Theorem 3).

use crate::address::BitLayout;
use crate::layout::blocked;

/// Classification of a smart remap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapKind {
    /// All `lg n` following steps stay within one stage (`s >= lg n`).
    Inside,
    /// The following steps cross into the next stage (`s < lg n`).
    Crossing,
    /// The final remap back to a blocked layout (`k = lg P`, `s <= lg n`).
    Last,
}

/// The 5-tuple of Definition 7 plus its classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartParams {
    /// Stage offset: the remap's stage is `lg n + k`.
    pub k: u32,
    /// Step within the stage at which the remap occurs.
    pub s: u32,
    /// Steps executed in the remap's own stage after the remap (crossing)
    /// — 0 for inside remaps.
    pub a: u32,
    /// Steps executed in the following stage (crossing) or within the
    /// stage (inside).
    pub b: u32,
    /// Offset parameter: remaining steps after the `lg n`-step block.
    pub t: u32,
    /// Which case of Definition 7 applies.
    pub kind: RemapKind,
}

impl SmartParams {
    /// Compute the 5-tuple for a remap at `(stage = lg n + k, step = s)`.
    ///
    /// # Panics
    /// Panics if the coordinates are outside the ranges of Definition 7
    /// (`0 < k <= lg p`, `0 < s <= lg n + k`).
    #[must_use]
    pub fn new(lg_n: u32, lg_p: u32, k: u32, s: u32) -> Self {
        assert!(
            k >= 1 && k <= lg_p,
            "stage offset k={k} out of range 1..={lg_p}"
        );
        assert!(
            s >= 1 && s <= lg_n + k,
            "step s={s} out of range 1..={}",
            lg_n + k
        );
        if k == lg_p && s <= lg_n {
            SmartParams {
                k,
                s,
                a: lg_n,
                b: 0,
                t: lg_n,
                kind: RemapKind::Last,
            }
        } else if s >= lg_n {
            SmartParams {
                k,
                s,
                a: 0,
                b: lg_n,
                t: s - lg_n,
                kind: RemapKind::Inside,
            }
        } else {
            SmartParams {
                k,
                s,
                a: s,
                b: lg_n - s,
                t: s + k + 1,
                kind: RemapKind::Crossing,
            }
        }
    }

    /// The layout installed *by* this remap — what the pack masks target.
    /// For crossing remaps this is the phase-1 order `(B << a) | D`.
    #[must_use]
    pub fn layout(&self, lg_n: u32, lg_p: u32) -> BitLayout {
        let lg_total = lg_n + lg_p;
        match self.kind {
            RemapKind::Last => blocked(lg_total, lg_n),
            RemapKind::Inside => inside_layout(lg_n, lg_p, self.t),
            RemapKind::Crossing => {
                crossing_layout(lg_n, lg_p, self.a, self.b, self.t, CrossingOrder::Phase1)
            }
        }
    }

    /// The local arrangement at the *end* of the phase — identical to
    /// [`Self::layout`] except for crossing remaps, where it is the
    /// transposed phase-2 order `(D << b) | B`.
    #[must_use]
    pub fn layout_after(&self, lg_n: u32, lg_p: u32) -> BitLayout {
        match self.kind {
            RemapKind::Crossing => {
                crossing_layout(lg_n, lg_p, self.a, self.b, self.t, CrossingOrder::Phase2)
            }
            _ => self.layout(lg_n, lg_p),
        }
    }
}

/// Which of the two local bit orders of a crossing phase (Theorem 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingOrder {
    /// `(B << a) | D`: region `D` (the low `a` absolute bits) occupies the
    /// low local bits — the order the remap installs.
    Phase1,
    /// `(D << b) | B`: region `B` occupies the low local bits — the order
    /// after the mid-phase transpose.
    Phase2,
}

/// Inside-remap layout (Figure 3.7): local = absolute bits `[t, t+lg n)`,
/// processor = `A` (top) over `C` (bottom `t` bits).
#[must_use]
pub fn inside_layout(lg_n: u32, lg_p: u32, t: u32) -> BitLayout {
    let lg_total = lg_n + lg_p;
    assert!(t + lg_n <= lg_total, "inside window [t, t+lg n) must fit");
    let mut src = Vec::with_capacity(lg_total as usize);
    // Local bits: the window being merged.
    for j in 0..lg_n {
        src.push(t + j);
    }
    // Processor bits, low to high: C = [0, t), then A = [t + lg n, lg N).
    for j in 0..t {
        src.push(j);
    }
    for j in (t + lg_n)..lg_total {
        src.push(j);
    }
    BitLayout::new(src, lg_n)
}

/// Crossing-remap layout (Figure 3.8): local = `D ∪ B` in the requested
/// order, processor = `A` (top) over `C = [a, t)`.
#[must_use]
pub fn crossing_layout(
    lg_n: u32,
    lg_p: u32,
    a: u32,
    b: u32,
    t: u32,
    order: CrossingOrder,
) -> BitLayout {
    let lg_total = lg_n + lg_p;
    assert_eq!(
        a + b,
        lg_n,
        "crossing regions D and B must cover the local address"
    );
    assert!(
        a < t && t + b <= lg_total,
        "crossing windows must fit: a={a} b={b} t={t}"
    );
    let mut src = Vec::with_capacity(lg_total as usize);
    match order {
        CrossingOrder::Phase1 => {
            // D at the bottom, B above it.
            for j in 0..a {
                src.push(j);
            }
            for j in 0..b {
                src.push(t + j);
            }
        }
        CrossingOrder::Phase2 => {
            // B at the bottom, D above it.
            for j in 0..b {
                src.push(t + j);
            }
            for j in 0..a {
                src.push(j);
            }
        }
    }
    // Processor bits, low to high: C = [a, t), then A = [t + b, lg N).
    for j in a..t {
        src.push(j);
    }
    for j in (t + b)..lg_total {
        src.push(j);
    }
    BitLayout::new(src, lg_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_7_cases() {
        // lg n = 4, lg P = 4 (the Figure 3.3 example).
        let p = SmartParams::new(4, 4, 1, 5);
        assert_eq!((p.a, p.b, p.t, p.kind), (0, 4, 1, RemapKind::Inside));
        let p = SmartParams::new(4, 4, 1, 1);
        assert_eq!((p.a, p.b, p.t, p.kind), (1, 3, 3, RemapKind::Crossing));
        let p = SmartParams::new(4, 4, 2, 3);
        assert_eq!((p.a, p.b, p.t, p.kind), (3, 1, 6, RemapKind::Crossing));
        let p = SmartParams::new(4, 4, 4, 2);
        assert_eq!((p.a, p.b, p.t, p.kind), (4, 0, 4, RemapKind::Last));
    }

    #[test]
    fn inside_layout_window_is_local() {
        // lg n = 3, lg P = 3, t = 2: local = abs bits {2,3,4}.
        let l = inside_layout(3, 3, 2);
        for bit in 0..6 {
            assert_eq!(
                l.local_position_of(bit).is_some(),
                (2..5).contains(&bit),
                "bit {bit}"
            );
        }
        // Processor = A (bit 5) over C (bits 0,1): for abs with bit5=1,
        // bit1=0, bit0=1 the processor is 0b101.
        assert_eq!(l.proc_of(0b100001), 0b101);
    }

    #[test]
    fn crossing_layout_regions() {
        // lg n = 4, lg P = 4, a = 1, b = 3, t = 3 (k = 1): D = {0},
        // B = {3,4,5}, C = {1,2}, A = {6,7}.
        let l1 = crossing_layout(4, 4, 1, 3, 3, CrossingOrder::Phase1);
        for bit in [0u32, 3, 4, 5] {
            assert!(
                l1.local_position_of(bit).is_some(),
                "bit {bit} should be local"
            );
        }
        for bit in [1u32, 2, 6, 7] {
            assert!(l1.is_proc_bit(bit), "bit {bit} should be a proc bit");
        }
        // Phase 1: D occupies local bit 0; B occupies local bits 1..4.
        assert_eq!(l1.local_position_of(0), Some(0));
        assert_eq!(l1.local_position_of(3), Some(1));
        // Phase 2: B occupies local bits 0..3; D occupies local bit 3.
        let l2 = crossing_layout(4, 4, 1, 3, 3, CrossingOrder::Phase2);
        assert_eq!(l2.local_position_of(3), Some(0));
        assert_eq!(l2.local_position_of(0), Some(3));
        // The two orders agree on which processor owns which node.
        for abs in 0..256 {
            assert_eq!(l1.proc_of(abs), l2.proc_of(abs));
        }
    }

    #[test]
    fn phase_transpose_changes_local_only() {
        let p = SmartParams::new(4, 4, 2, 3);
        let before = p.layout(4, 4);
        let after = p.layout_after(4, 4);
        assert_ne!(before, after);
        assert_eq!(
            before.bits_changed_to(&after),
            0,
            "transpose moves no bits to proc"
        );
        for abs in 0..256 {
            assert_eq!(before.proc_of(abs), after.proc_of(abs));
        }
    }

    #[test]
    fn inside_and_last_need_no_transpose() {
        let inside = SmartParams::new(4, 4, 1, 5);
        assert_eq!(inside.layout(4, 4), inside.layout_after(4, 4));
        let last = SmartParams::new(4, 4, 4, 2);
        assert_eq!(last.layout(4, 4), last.layout_after(4, 4));
        assert_eq!(last.layout(4, 4), crate::layout::blocked(8, 4));
    }

    #[test]
    fn figure_3_3_first_remap_pattern() {
        // First remap of the N=256, P=16 example: inside at stage 5, step 5
        // → t = 1, local = abs bits {1,2,3,4}, proc = {5,6,7} over {0}.
        let p = SmartParams::new(4, 4, 1, 5);
        let l = p.layout(4, 4);
        for bit in 1..5u32 {
            assert!(l.local_position_of(bit).is_some());
        }
        assert!(l.is_proc_bit(0));
        assert!(l.is_proc_bit(7));
        // Only one bit differs from the preceding blocked layout (the
        // Figure 3.4 "1 bit changed" entry): bit 0 leaves the local part.
        let blocked = crate::layout::blocked(8, 4);
        assert_eq!(blocked.bits_changed_to(&l), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_stage_offset() {
        let _ = SmartParams::new(4, 4, 5, 2);
    }
}
