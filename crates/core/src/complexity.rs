//! Communication complexity of the smart remap (Section 3.2.1), computed
//! from the actual layouts and cross-checked against the closed forms.
//!
//! Every quantity here is derived from the schedule's layout chain — the
//! masks say how many bits change at each remap, Lemma 4 turns that into
//! kept/sent element counts and group sizes — so these numbers are the
//! ground truth the `logp` closed forms and the live [`spmd`] counters are
//! both tested against.

use crate::masks::MaskInfo;
use crate::schedule::SmartSchedule;
use logp::metrics::CommMetrics;

/// Per-remap communication profile of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapProfile {
    /// `N_BitsChanged` at this remap (Lemma 3).
    pub bits_changed: u32,
    /// Elements each processor keeps, `n / 2^r`.
    pub kept: usize,
    /// Elements each processor sends, `n − n / 2^r` (its contribution to `V`).
    pub sent: usize,
    /// Messages each processor sends with long messages, `2^r − 1`.
    pub messages: usize,
}

/// Profile every remap of the smart schedule for `n_total` keys on `p`
/// processors.
#[must_use]
pub fn smart_profiles(n_total: usize, p: usize) -> Vec<RemapProfile> {
    let sched = SmartSchedule::new(n_total, p);
    profiles_of(&sched)
}

/// Profile the remaps of an existing schedule.
#[must_use]
pub fn profiles_of(sched: &SmartSchedule) -> Vec<RemapProfile> {
    let n = 1usize << sched.lg_n();
    let mut prev = sched.blocked_layout();
    let mut out = Vec::with_capacity(sched.phases.len());
    for phase in &sched.phases {
        let info = MaskInfo::new(&prev, &phase.layout);
        let r = info.bits_changed;
        out.push(RemapProfile {
            bits_changed: r,
            kept: n >> r,
            sent: n - (n >> r),
            messages: (1usize << r) - 1,
        });
        prev = phase.layout_after.clone();
    }
    out
}

/// Total `R`/`V`/`M` of the smart strategy, from the layouts.
#[must_use]
pub fn smart_metrics(n_total: usize, p: usize) -> CommMetrics {
    let profiles = smart_profiles(n_total, p);
    CommMetrics {
        remaps: profiles.len() as u64,
        volume: profiles.iter().map(|r| r.sent as u64).sum(),
        messages: profiles.iter().map(|r| r.messages as u64).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_derived_metrics_match_arithmetic_walker() {
        // Two fully independent derivations of V and M — the bit-pattern
        // layouts here, the (k, s) recurrence in logp — must agree
        // everywhere, including the n < P regimes.
        for lgn in 1..9u32 {
            for lgp in 1..7u32 {
                let n_total = 1usize << (lgn + lgp);
                let p = 1usize << lgp;
                assert_eq!(
                    smart_metrics(n_total, p),
                    logp::metrics::smart_exact(1 << lgn, p),
                    "lgn={lgn} lgp={lgp}"
                );
            }
        }
    }

    #[test]
    fn common_regime_volume_is_n_lg_p() {
        // Section 3.2.1: for lgP(lgP+1)/2 <= lg n, V_smart = n lg P.
        for (lgn, lgp) in [(15u32, 5u32), (10, 4), (6, 3)] {
            let n = 1usize << lgn;
            let m = smart_metrics(n << lgp, 1 << lgp);
            assert_eq!(m.volume, (n as u64) * u64::from(lgp));
        }
    }

    #[test]
    fn smart_transfers_less_than_cyclic_blocked_per_remap_sequence() {
        // "at each remap we transfer less elements than in the case of a
        // cyclic-blocked remap" — each smart remap sends n(1 − 1/2^r) with
        // r <= lgP, while every cyclic-blocked remap sends n(1 − 1/P).
        let (n_total, p) = (256usize, 16usize);
        let n = n_total / p;
        let cb_per_remap = n - n / p;
        for profile in smart_profiles(n_total, p) {
            assert!(profile.sent <= cb_per_remap);
        }
    }

    #[test]
    fn figure_3_4_profiles() {
        let profiles = smart_profiles(256, 16);
        let bits: Vec<u32> = profiles.iter().map(|r| r.bits_changed).collect();
        assert_eq!(bits, vec![1, 2, 3, 3, 4, 4, 2]);
        assert_eq!(profiles[0].kept, 8);
        assert_eq!(profiles[0].sent, 8);
        assert_eq!(profiles[0].messages, 1);
        assert_eq!(profiles[4].kept, 1);
        assert_eq!(profiles[4].messages, 15);
    }

    #[test]
    fn kept_plus_sent_is_n() {
        for profile in smart_profiles(1 << 12, 32) {
            assert_eq!(profile.kept + profile.sent, 1 << 7);
        }
    }
}
