//! The cyclic–blocked baseline (Section 2.3, \[CDMS94\]).
//!
//! For each of the last `lg P` stages: remap blocked→cyclic, run the first
//! `k` steps locally, remap cyclic→blocked, run the remaining `lg n` steps
//! locally. Two remaps per stage, each a full `P`-way all-to-all of
//! `n(1 − 1/P)` elements — the strategy the smart layout halves.
//!
//! Requires `N >= P^2` (at least `P` keys per processor): both layouts can
//! cover at most `lg(N/P)` steps each, so the final stage's `lg N` steps
//! only fit if `lg N <= 2 lg(N/P)`.

use crate::context::SortContext;
use crate::layout::{blocked, cyclic};
use crate::local::{initial_direction, stage_direction};
use local_sorts::bitonic_merge::sort_bitonic_with_scratch;
use local_sorts::{local_sort_with_scratch, RadixKey};
use spmd::{Comm, Phase};

/// Sort with periodic cyclic↔blocked remapping.
///
/// # Panics
/// Panics if `n < P` (the `N >= P^2` restriction) or `n` is not a power of
/// two.
pub fn cyclic_blocked_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "keys per processor must be a power of two"
    );
    comm.reset_kernel_tally();
    if p == 1 {
        let mut scratch = Vec::new();
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(
                &mut local,
                &mut scratch,
                bitonic_network::Direction::Ascending,
            )
        });
        comm.drain_kernel_tally();
        return local;
    }
    assert!(
        n >= p,
        "cyclic-blocked remapping requires N >= P^2 (n >= P)"
    );

    let lg_n = bitonic_network::lg(n);
    let lg_p = bitonic_network::lg(p);
    let lg_total = lg_n + lg_p;
    let blocked_layout = blocked(lg_total, lg_n);
    let cyclic_layout = cyclic(lg_total, lg_n);
    // The two remaps are the same every stage; the context computes each
    // plan once and reuses its flat buffers for all 2·lgP applications.
    let mut ctx = SortContext::new();
    let to_cyclic = ctx.plan(&blocked_layout, &cyclic_layout, me);
    let to_blocked = ctx.plan(&cyclic_layout, &blocked_layout, me);
    let mut scratch: Vec<K> = Vec::with_capacity(n);

    // First lg n stages under the blocked layout: one local sort.
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(
            &mut local,
            &mut scratch,
            initial_direction(&blocked_layout, me),
        );
    });
    comm.drain_kernel_tally();

    for k in 1..=lg_p {
        comm.trace.set_step(k);
        let stage = lg_n + k;
        // Remap to cyclic; the first k steps of the stage are now local.
        ctx.remap_with(comm, &to_cyclic, &mut local);
        comm.timed(Phase::Compute, |_| {
            cyclic_phase(&cyclic_layout, me, &mut local, stage, k, &mut scratch);
        });
        // Remap back to blocked; the remaining lg n steps sort the local
        // bitonic sequence (Lemma 7 at column lg n).
        ctx.remap_with(comm, &to_blocked, &mut local);
        comm.timed(Phase::Compute, |_| {
            let dir = stage_direction(&blocked_layout, me, stage)
                .expect("stage bit is a processor bit under blocked");
            sort_bitonic_with_scratch(&mut local, &mut scratch, dir);
        });
        comm.drain_kernel_tally();
    }
    comm.barrier();
    local
}

/// The local computation of a cyclic phase: steps `lg n + k .. lg n + 1`
/// of stage `lg n + k` under the cyclic layout.
///
/// "The computation performed under the cyclic layout consists of bitonic
/// merges" (\[CDMS94\], Section 5.3): the `k` steps touch local bits
/// `[lg n − lg P, lg n − lg P + k)`, so for every fixed value of the other
/// local bits they form a complete bitonic merge of a stride-`2^{lgn−lgP}`
/// subsequence of length `2^k` — which the `O(2^k)` bitonic merge sort
/// replaces. The merge direction is constant per subsequence (the stage's
/// direction bit sits among the fixed bits or in the processor part).
fn cyclic_phase<K: RadixKey>(
    cyclic_layout: &crate::address::BitLayout,
    me: usize,
    local: &mut [K],
    stage: u32,
    k: u32,
    scratch: &mut Vec<K>,
) {
    let lg_n = cyclic_layout.lg_local();
    let lg_p = cyclic_layout.lg_total() - lg_n;
    let stride = 1usize << (lg_n - lg_p);
    let run = 1usize << k;
    debug_assert_eq!(
        cyclic_layout.local_position_of(lg_n),
        Some(lg_n - lg_p),
        "step lg n + 1 must sit at local bit lg n − lg P under cyclic"
    );

    let mut gathered: Vec<K> = Vec::with_capacity(run);
    // Iterate every assignment of the fixed local bits: low part
    // `c_lo < stride`, high part `c_hi` above the k merge bits.
    let high_count = local.len() / (stride * run);
    for c_hi in 0..high_count {
        for c_lo in 0..stride {
            let base = c_hi * stride * run + c_lo;
            gathered.clear();
            gathered.extend((0..run).map(|j| local[base + j * stride]));
            // Direction of this subsequence: the stage's direction bit of
            // any of its members (constant across the subsequence).
            let dir = match stage_direction(cyclic_layout, me, stage) {
                Some(d) => d,
                None => {
                    let sigma = cyclic_layout
                        .local_position_of(stage)
                        .expect("direction bit is local in this branch");
                    if (base >> sigma) & 1 == 0 {
                        bitonic_network::Direction::Ascending
                    } else {
                        bitonic_network::Direction::Descending
                    }
                }
            };
            debug_assert!(bitonic_network::is_bitonic(&gathered));
            sort_bitonic_with_scratch(&mut gathered, scratch, dir);
            for (j, &v) in gathered.iter().enumerate() {
                local[base + j * stride] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::run_step_canonical;
    use bitonic_network::network::StepId;
    use bitonic_network::BitonicNetwork;

    /// The strided-merge cyclic phase must equal the canonical
    /// compare-exchange execution of the same steps, state for state, on
    /// every valid network state (i.e. the flat array as it actually looks
    /// at the start of each stage).
    #[test]
    fn cyclic_phase_matches_canonical_steps_on_valid_states() {
        for (lg_n, lg_p) in [(3u32, 2u32), (4, 3), (5, 3), (4, 4)] {
            let lg_total = lg_n + lg_p;
            let n_total = 1usize << lg_total;
            let p = 1usize << lg_p;
            let n = 1usize << lg_n;
            let cyclic_layout = cyclic(lg_total, lg_n);
            let net = BitonicNetwork::new(n_total);

            // Drive the flat network to the start of each tail stage.
            let mut flat: Vec<u64> = (0..n_total as u64)
                .map(|i| (i.wrapping_mul(2654435761)) % 4096)
                .collect();
            for stage in 1..=lg_n {
                net.apply_stage(&mut flat, stage);
            }
            for k in 1..=lg_p {
                let stage = lg_n + k;
                for me in 0..p {
                    // Project this rank's cyclic-layout view of the state.
                    let mut a: Vec<u64> =
                        (0..n).map(|x| flat[cyclic_layout.abs_at(me, x)]).collect();
                    let mut b = a.clone();
                    let mut scratch = Vec::new();
                    for step in ((lg_n + 1)..=stage).rev() {
                        run_step_canonical(&cyclic_layout, me, &mut a, StepId { stage, step });
                    }
                    cyclic_phase(&cyclic_layout, me, &mut b, stage, k, &mut scratch);
                    assert_eq!(a, b, "lgn={lg_n} lgp={lg_p} k={k} me={me}");
                }
                // Advance the flat state through the whole stage for the
                // next iteration.
                net.apply_stage(&mut flat, stage);
            }
        }
    }
}
