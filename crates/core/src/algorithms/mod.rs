//! The three remap-based parallel bitonic sort algorithms of Chapter 5.
//!
//! * [`smart`] — Algorithm 1: the thesis's contribution; minimum number of
//!   remaps, merge-based local phases.
//! * [`cyclic_blocked`] — the previous state of the art (\[CDMS94\]):
//!   blocked↔cyclic remaps, two per stage.
//! * [`blocked_merge`] — the \[BLM+91\] baseline: fixed blocked layout,
//!   pairwise merge-exchange steps.
//!
//! All three start and finish under a blocked layout and produce the same
//! globally sorted (ascending) sequence; they differ in when and how data
//! moves — exactly the comparison of Tables 5.1/5.2.

pub mod blocked_merge;
pub mod cyclic_blocked;
pub mod smart;

pub use blocked_merge::blocked_merge_sort;
pub use cyclic_blocked::cyclic_blocked_sort;
pub use smart::{smart_sort, smart_sort_ctx, smart_sort_fused};

use crate::local::LocalStrategy;
use local_sorts::RadixKey;
use spmd::{run_spmd_chaos, Comm, FaultConfig, MessageMode, RankFailure, RankResult, TraceConfig};
use std::time::{Duration, Instant};

/// Which parallel sort to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 (smart layout).
    Smart,
    /// Cyclic–blocked remapping.
    CyclicBlocked,
    /// Fixed blocked layout with merge-exchange steps.
    BlockedMerge,
    /// Algorithm 1 with the Section 4.3 pack/unpack-into-computation
    /// fusion.
    SmartFused,
}

impl Algorithm {
    /// Display name matching the thesis tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Smart => "Smart",
            Algorithm::CyclicBlocked => "Cyclic-Blocked",
            Algorithm::BlockedMerge => "Blocked-Merge",
            Algorithm::SmartFused => "Smart-Fused",
        }
    }

    /// Run this algorithm on an open communicator.
    pub fn sort<K: RadixKey>(
        self,
        comm: &mut Comm<K>,
        local: Vec<K>,
        strategy: LocalStrategy,
    ) -> Vec<K> {
        match self {
            Algorithm::Smart => smart_sort(comm, local, strategy),
            Algorithm::CyclicBlocked => cyclic_blocked_sort(comm, local),
            Algorithm::BlockedMerge => blocked_merge_sort(comm, local),
            Algorithm::SmartFused => smart_sort_fused(comm, local),
        }
    }
}

/// Result of a full parallel sort over the SPMD machine.
#[derive(Debug)]
pub struct SortRun<K> {
    /// The sorted keys, gathered back in blocked order.
    pub output: Vec<K>,
    /// Per-rank results (local outputs have been moved into `output`).
    pub ranks: Vec<RankResult<()>>,
    /// Wall-clock of the whole machine run.
    pub elapsed: Duration,
}

/// Scatter `keys` block-wise over `p` ranks, sort with `algo`, gather.
///
/// # Panics
/// Panics unless `keys.len()` is a power-of-two multiple of `p` with at
/// least two keys per rank (for `p > 1`).
pub fn run_parallel_sort<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    algo: Algorithm,
    strategy: LocalStrategy,
) -> SortRun<K> {
    run_parallel_sort_traced(keys, p, mode, algo, strategy, TraceConfig::off())
}

/// [`run_parallel_sort`] with per-rank tracing: each rank's span timeline
/// comes back in its [`RankResult::trace`].
///
/// # Panics
/// Panics unless `keys.len()` is a power-of-two multiple of `p` with at
/// least two keys per rank (for `p > 1`).
pub fn run_parallel_sort_traced<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    algo: Algorithm,
    strategy: LocalStrategy,
    trace: TraceConfig,
) -> SortRun<K> {
    run_parallel_sort_chaos(keys, p, mode, algo, strategy, trace, FaultConfig::off())
        .expect("a fault-free machine cannot fail")
}

/// [`run_parallel_sort_traced`] on a faulty machine: the mesh drops,
/// duplicates, reorders and delays messages per `fault` (all derived
/// deterministically from `fault.seed`), and the sort must come out
/// correct anyway. Returns `Err` when a watchdog gave up on a stalled
/// rank. With [`FaultConfig::off`] this is exactly
/// `run_parallel_sort_traced`.
///
/// # Errors
/// A [`RankFailure`] if any rank's watchdog fired.
///
/// # Panics
/// Panics unless `keys.len()` is a power-of-two multiple of `p` with at
/// least two keys per rank (for `p > 1`).
pub fn run_parallel_sort_chaos<K: RadixKey>(
    keys: &[K],
    p: usize,
    mode: MessageMode,
    algo: Algorithm,
    strategy: LocalStrategy,
    trace: TraceConfig,
    fault: FaultConfig,
) -> Result<SortRun<K>, RankFailure> {
    assert!(
        p >= 1 && keys.len().is_multiple_of(p),
        "keys must divide evenly over ranks"
    );
    let n = keys.len() / p;
    let t0 = Instant::now();
    let results = run_spmd_chaos::<K, Vec<K>, _>(p, mode, trace, fault, |comm| {
        let me = comm.rank();
        let local = keys[me * n..(me + 1) * n].to_vec();
        algo.sort(comm, local, strategy)
    })?;
    let elapsed = t0.elapsed();
    let mut output = Vec::with_capacity(keys.len());
    let mut ranks = Vec::with_capacity(p);
    for r in results {
        output.extend(r.output);
        ranks.push(RankResult {
            rank: r.rank,
            output: (),
            stats: r.stats,
            trace: r.trace,
        });
    }
    Ok(SortRun {
        output,
        ranks,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd::runtime::critical_path_stats;

    fn keys(n: usize, seed: u64) -> Vec<u32> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) & 0x7FFF_FFFF) as u32 // 31-bit keys as in the thesis
            })
            .collect()
    }

    fn check_sorted(algo: Algorithm, total: usize, p: usize, seed: u64) {
        let input = keys(total, seed);
        let mut expect = input.clone();
        expect.sort_unstable();
        let run = run_parallel_sort(&input, p, MessageMode::Long, algo, LocalStrategy::Merges);
        assert_eq!(run.output, expect, "{algo:?} N={total} P={p}");
    }

    #[test]
    fn all_algorithms_sort_various_machines() {
        for algo in [
            Algorithm::Smart,
            Algorithm::CyclicBlocked,
            Algorithm::BlockedMerge,
        ] {
            check_sorted(algo, 1 << 10, 4, 11);
            check_sorted(algo, 1 << 8, 8, 12);
            check_sorted(algo, 1 << 12, 16, 13);
            check_sorted(algo, 64, 2, 14);
            check_sorted(algo, 512, 1, 15);
        }
    }

    #[test]
    fn smart_handles_n_less_than_p() {
        // No N >= P^2 restriction (Theorem 1's remark) — the other two
        // strategies require n >= P.
        check_sorted(Algorithm::Smart, 128, 32, 16);
        check_sorted(Algorithm::Smart, 64, 16, 17);
        check_sorted(Algorithm::Smart, 1 << 12, 64, 18);
    }

    #[test]
    fn smart_counters_match_complexity_profiles() {
        let (total, p) = (1usize << 10, 8usize);
        let input = keys(total, 19);
        let run = run_parallel_sort(
            &input,
            p,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let expect = crate::complexity::smart_metrics(total, p);
        for rank in &run.ranks {
            assert_eq!(
                rank.stats.remap_count(),
                expect.remaps,
                "R on rank {}",
                rank.rank
            );
            assert_eq!(
                rank.stats.elements_sent, expect.volume,
                "V on rank {}",
                rank.rank
            );
            assert_eq!(
                rank.stats.messages_sent, expect.messages,
                "M on rank {}",
                rank.rank
            );
        }
    }

    #[test]
    fn cyclic_blocked_counters_match_closed_forms() {
        let (total, p) = (1usize << 10, 8usize);
        let n = total / p;
        let input = keys(total, 20);
        let run = run_parallel_sort(
            &input,
            p,
            MessageMode::Long,
            Algorithm::CyclicBlocked,
            LocalStrategy::Merges,
        );
        let expect = logp::metrics::cyclic_blocked(n, p);
        let crit = critical_path_stats(&run.ranks);
        assert_eq!(crit.remap_count(), expect.remaps);
        assert_eq!(crit.elements_sent, expect.volume);
        assert_eq!(crit.messages_sent, expect.messages);
    }

    #[test]
    fn blocked_merge_counters_match_closed_forms() {
        let (total, p) = (1usize << 10, 8usize);
        let n = total / p;
        let input = keys(total, 21);
        let run = run_parallel_sort(
            &input,
            p,
            MessageMode::Long,
            Algorithm::BlockedMerge,
            LocalStrategy::Merges,
        );
        let expect = logp::metrics::blocked(n, p);
        let crit = critical_path_stats(&run.ranks);
        assert_eq!(crit.remap_count(), expect.remaps);
        assert_eq!(crit.elements_sent, expect.volume);
        assert_eq!(crit.messages_sent, expect.messages);
    }

    #[test]
    fn short_messages_produce_same_output() {
        let input = keys(512, 22);
        let mut expect = input.clone();
        expect.sort_unstable();
        for algo in [
            Algorithm::Smart,
            Algorithm::CyclicBlocked,
            Algorithm::BlockedMerge,
        ] {
            let run = run_parallel_sort(&input, 4, MessageMode::Short, algo, LocalStrategy::Merges);
            assert_eq!(run.output, expect, "{algo:?} with short messages");
        }
    }

    #[test]
    fn fullsort_fast_path_sorts_in_common_regime() {
        // lg n large enough that the schedule is inside-then-crossings:
        // the Figure 4.5 fast path applies to every phase.
        for (total, p, seed) in [(1usize << 12, 4usize, 30u64), (1 << 13, 8, 31)] {
            let input = keys(total, seed);
            let mut expect = input.clone();
            expect.sort_unstable();
            let run = run_parallel_sort(
                &input,
                p,
                MessageMode::Long,
                Algorithm::Smart,
                LocalStrategy::FullSort,
            );
            assert_eq!(run.output, expect, "N={total} P={p}");
            let sched = crate::schedule::SmartSchedule::new(total, p);
            assert!(
                crate::local::fullsort_valid(&sched),
                "precondition of the test"
            );
        }
    }

    #[test]
    fn fullsort_falls_back_outside_its_regime() {
        // N=256, P=16 has a crossing remap followed by an inside remap
        // (Figure 3.3), so the fast path is invalid and smart_sort must
        // fall back — and still sort.
        let sched = crate::schedule::SmartSchedule::new(256, 16);
        assert!(!crate::local::fullsort_valid(&sched));
        let input = keys(256, 32);
        let mut expect = input.clone();
        expect.sort_unstable();
        let run = run_parallel_sort(
            &input,
            16,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::FullSort,
        );
        assert_eq!(run.output, expect);
    }

    #[test]
    fn fused_pipeline_sorts_and_moves_the_same_volume() {
        // Section 4.3 fusion must not change what travels — only when the
        // pack/unpack work happens.
        for (total, p, seed) in [
            (1usize << 12, 8usize, 40u64),
            (1 << 10, 4, 41),
            (256, 16, 42),
        ] {
            let input = keys(total, seed);
            let mut expect = input.clone();
            expect.sort_unstable();
            let fused = run_parallel_sort(
                &input,
                p,
                MessageMode::Long,
                Algorithm::SmartFused,
                LocalStrategy::Merges,
            );
            assert_eq!(fused.output, expect, "N={total} P={p}");
            let plain = run_parallel_sort(
                &input,
                p,
                MessageMode::Long,
                Algorithm::Smart,
                LocalStrategy::Merges,
            );
            assert_eq!(
                fused.ranks[0].stats.elements_sent,
                plain.ranks[0].stats.elements_sent
            );
            assert_eq!(
                fused.ranks[0].stats.remap_count(),
                plain.ranks[0].stats.remap_count()
            );
        }
    }

    #[test]
    fn fused_pipeline_spends_no_unpack_time() {
        use spmd::Phase;
        let input = keys(1 << 12, 43);
        let run = run_parallel_sort(
            &input,
            8,
            MessageMode::Long,
            Algorithm::SmartFused,
            LocalStrategy::Merges,
        );
        for rank in &run.ranks {
            assert_eq!(rank.stats.time(Phase::Unpack), std::time::Duration::ZERO);
        }
    }

    #[test]
    fn all_three_strategies_agree() {
        let input = keys(1 << 12, 33);
        let mut outputs = Vec::new();
        for strategy in [
            LocalStrategy::Canonical,
            LocalStrategy::Merges,
            LocalStrategy::FullSort,
        ] {
            outputs.push(
                run_parallel_sort(&input, 8, MessageMode::Long, Algorithm::Smart, strategy).output,
            );
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    #[test]
    fn canonical_strategy_sorts_too() {
        let input = keys(1 << 9, 23);
        let mut expect = input.clone();
        expect.sort_unstable();
        let run = run_parallel_sort(
            &input,
            8,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Canonical,
        );
        assert_eq!(run.output, expect);
    }

    #[test]
    fn duplicate_and_degenerate_inputs() {
        for algo in [
            Algorithm::Smart,
            Algorithm::CyclicBlocked,
            Algorithm::BlockedMerge,
        ] {
            let all_same = vec![42u32; 256];
            let run =
                run_parallel_sort(&all_same, 4, MessageMode::Long, algo, LocalStrategy::Merges);
            assert_eq!(run.output, all_same);

            let mut reverse: Vec<u32> = (0..256u32).rev().collect();
            let run =
                run_parallel_sort(&reverse, 4, MessageMode::Long, algo, LocalStrategy::Merges);
            reverse.sort_unstable();
            assert_eq!(run.output, reverse);
        }
    }
}
