//! The blocked-merge baseline (\[BLM+91\], Section 5.3).
//!
//! The data stays in a blocked layout throughout. For stage `lg n + k`,
//! the first `k` steps compare keys on different processors: each such
//! step pairs processor `me` with `me ⊕ 2^{bit}`, the pair swap their full
//! arrays, and each side keeps the element-wise minima or maxima — a
//! distributed compare-exchange. The remaining `lg n` steps of the stage
//! run locally as one sort. Fewest messages of the three strategies
//! (one `n`-element message per remote step) but by far the largest
//! volume, `V = n · lgP(lgP+1)/2`.

use crate::layout::blocked;
use crate::local::{initial_direction, stage_direction};
use bitonic_network::Direction;
use local_sorts::bitonic_merge::sort_bitonic_with_scratch;
use local_sorts::{local_sort_with_scratch, RadixKey};
use spmd::{Comm, Phase};

/// Sort with the fixed blocked layout and pairwise merge-exchange steps.
///
/// # Panics
/// Panics if `local.len()` is not a power of two.
pub fn blocked_merge_sort<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "keys per processor must be a power of two"
    );
    comm.reset_kernel_tally();
    if p == 1 {
        let mut scratch = Vec::new();
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(&mut local, &mut scratch, Direction::Ascending)
        });
        comm.drain_kernel_tally();
        return local;
    }

    let lg_n = bitonic_network::lg(n);
    let lg_p = bitonic_network::lg(p);
    let blocked_layout = blocked(lg_n + lg_p, lg_n);
    let mut scratch: Vec<K> = Vec::with_capacity(n);
    // Reused receive buffer for the pairwise swaps: with `sendrecv_into`
    // no step clones the local array or allocates an arrival buffer.
    let mut received: Vec<K> = Vec::with_capacity(n);

    // First lg n stages: one local sort.
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(
            &mut local,
            &mut scratch,
            initial_direction(&blocked_layout, me),
        );
    });
    comm.drain_kernel_tally();

    for k in 1..=lg_p {
        comm.trace.set_step(k);
        let stage = lg_n + k;
        let dir = stage_direction(&blocked_layout, me, stage)
            .expect("stage bit is a processor bit under blocked");
        // k remote steps: bits lg n + k − 1 down to lg n, i.e. processor
        // bits k − 1 down to 0.
        for proc_bit in (0..k).rev() {
            let partner = me ^ (1usize << proc_bit);
            comm.sendrecv_into(partner, &local, &mut received);
            comm.timed(Phase::Compute, |_| {
                // The pair (me, partner) holds rows differing only in the
                // step bit; the node on the bit-0 side keeps the minima of
                // an ascending block.
                let i_keep_min = (me < partner) == (dir == Direction::Ascending);
                for (mine, &theirs) in local.iter_mut().zip(received.iter()) {
                    let out_of_order = if i_keep_min {
                        *mine > theirs
                    } else {
                        *mine < theirs
                    };
                    if out_of_order {
                        *mine = theirs;
                    }
                }
            });
        }
        // Remaining lg n steps of the stage: the local array is a bitonic
        // sequence (Lemma 7); sort it in the stage direction.
        comm.timed(Phase::Compute, |_| {
            sort_bitonic_with_scratch(&mut local, &mut scratch, dir);
        });
        comm.drain_kernel_tally();
    }
    comm.barrier();
    local
}
