//! Algorithm 1: smart-layout parallel bitonic sort.
//!
//! "The parallel bitonic sort algorithm for sorting N elements on P
//! processors starts with a blocked data layout and executes the first
//! `lg n` stages entirely local. For the last `lg P` stages it periodically
//! remaps to a smart data layout and executes `lg n` steps before remapping
//! again." — and, by Theorem 1, no algorithm without data replication can
//! use fewer remaps.

use crate::context::SortContext;
use crate::local::{initial_direction, run_phase, stage_direction, LocalStrategy};
use crate::schedule::{RemapPhase, SmartSchedule};
use crate::smart::RemapKind;
use bitonic_network::Direction;
use local_sorts::merge::Run;
use local_sorts::pway_merge::pway_merge_into;
use local_sorts::{local_sort_with_scratch, RadixKey};
use spmd::{Comm, Phase};

/// Sort the machine's keys with the smart remapping strategy.
///
/// `local` is this rank's blocked slice of the input (all ranks must pass
/// slices of equal power-of-two length); the return value is this rank's
/// blocked slice of the globally ascending output. Unlike the
/// cyclic–blocked strategy, no `N >= P^2` restriction applies.
///
/// # Panics
/// Panics if `local.len()` is not a power of two (or zero for `P > 1`).
pub fn smart_sort<K: RadixKey>(
    comm: &mut Comm<K>,
    local: Vec<K>,
    strategy: LocalStrategy,
) -> Vec<K> {
    let mut ctx = SortContext::new();
    smart_sort_ctx(comm, local, strategy, &mut ctx)
}

/// [`smart_sort`] threading a caller-owned [`SortContext`].
///
/// A fresh context reproduces `smart_sort` exactly. A *retained* context
/// — one kept alive across runs on a persistent machine — starts every
/// subsequent sort of the same shape with its remap plans already cached
/// and its flat buffers at working-set size, which is how the serving
/// layer amortizes plan construction across requests.
///
/// # Panics
/// Panics if `local.len()` is not a power of two (or zero for `P > 1`).
pub fn smart_sort_ctx<K: RadixKey>(
    comm: &mut Comm<K>,
    mut local: Vec<K>,
    strategy: LocalStrategy,
    ctx: &mut SortContext<K>,
) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "keys per processor must be a power of two"
    );
    comm.reset_kernel_tally();
    if p == 1 {
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(
                &mut local,
                ctx.sort_scratch(),
                bitonic_network::Direction::Ascending,
            )
        });
        comm.drain_kernel_tally();
        return local;
    }

    let sched = SmartSchedule::new(n * p, p);
    // The Figure 4.5 fast path needs "no crossing remap followed by an
    // inside remap" (Section 4.1); outside that regime fall back to the
    // structured Theorem 2/3 phases.
    let strategy = if strategy == LocalStrategy::FullSort && !crate::local::fullsort_valid(&sched) {
        LocalStrategy::Merges
    } else {
        strategy
    };
    let blocked = sched.blocked_layout();

    // First lg n stages: one local sort, ascending on even ranks (Lemma 6).
    // The sort scratch is the context's pooled buffer, so a retained
    // context performs zero sort-side allocations at steady state.
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(
            &mut local,
            ctx.sort_scratch(),
            initial_direction(&blocked, me),
        );
    });
    comm.drain_kernel_tally();

    // Last lg P stages: remap, run lg n steps locally, repeat. All remaps
    // go through one SortContext: plans are cached per layout pair and the
    // flat pack/transfer/unpack buffers are reused across the R remaps.
    let mut prev = blocked;
    for (i, phase) in sched.phases.iter().enumerate() {
        comm.trace.set_step(i as u32 + 1);
        ctx.remap(comm, &prev, &phase.layout, &mut local);
        comm.timed(Phase::Compute, |_| {
            run_phase(strategy, phase, me, &mut local, ctx.sort_scratch());
        });
        comm.drain_kernel_tally();
        prev = crate::local::layout_after_for(strategy, phase);
    }
    comm.barrier();
    local
}

/// Direction in which the [`LocalStrategy::FullSort`] phase leaves rank
/// `rank`'s array — needed by [`smart_sort_fused`] receivers to treat each
/// arrival as a sorted run.
fn fullsort_direction(phase: &RemapPhase, rank: usize) -> Direction {
    match phase.params.kind {
        RemapKind::Inside => {
            let stage = phase.steps[0].stage;
            stage_direction(&phase.layout, rank, stage)
                .expect("inside-phase direction bit is a processor bit")
        }
        RemapKind::Crossing => {
            let stage2 = phase.steps.last().expect("crossing phase has steps").stage;
            stage_direction(&phase.layout, rank, stage2)
                .expect("crossing-phase next-stage direction bit is a processor bit")
        }
        RemapKind::Last => Direction::Ascending,
    }
}

/// Algorithm 1 with the Section 4.3 fusion: packing and unpacking are
/// absorbed into the local computation.
///
/// Every local phase of the fast path is a full sort (Figure 4.5), so the
/// sender packs each destination's elements *in sorted order* (a gather
/// over the sorted array), and the receiver replaces
/// unpack-then-sort by a single p-way merge of the arriving sorted runs
/// (it derives each source's run direction from the schedule — no key
/// travels with a header). "For our implementation we have modified …
/// the merges to perform the sort and packing in a single step."
///
/// Falls back to [`smart_sort`] with [`LocalStrategy::Merges`] on
/// schedules where the fast path is invalid (a crossing remap followed by
/// an inside remap).
pub fn smart_sort_fused<K: RadixKey>(comm: &mut Comm<K>, mut local: Vec<K>) -> Vec<K> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "keys per processor must be a power of two"
    );
    comm.reset_kernel_tally();
    if p == 1 {
        let mut scratch = Vec::new();
        comm.timed(Phase::Compute, |_| {
            local_sort_with_scratch(&mut local, &mut scratch, Direction::Ascending)
        });
        comm.drain_kernel_tally();
        return local;
    }
    let sched = SmartSchedule::new(n * p, p);
    if !crate::local::fullsort_valid(&sched) {
        return smart_sort(comm, local, LocalStrategy::Merges);
    }
    let blocked = sched.blocked_layout();

    let mut sort_scratch: Vec<K> = Vec::new();
    comm.timed(Phase::Compute, |_| {
        local_sort_with_scratch(
            &mut local,
            &mut sort_scratch,
            initial_direction(&blocked, me),
        );
    });
    comm.drain_kernel_tally();

    let mut prev_layout = blocked.clone();
    // Direction each rank's array is sorted in after the previous phase.
    let mut dir_of: Vec<Direction> = (0..p).map(|r| initial_direction(&blocked, r)).collect();

    // Flat double-buffered scratch, reused across all R phases: the packed
    // send buffer, the flat receive buffer (one segment per source), the
    // merge output, and the per-destination pack cursors.
    let mut ctx: SortContext<K> = SortContext::new();
    let mut send: Vec<K> = Vec::new();
    let mut recv: Vec<K> = Vec::new();
    let mut merged: Vec<K> = Vec::new();
    let mut cursors: Vec<usize> = Vec::with_capacity(p);

    for (i, phase) in sched.phases.iter().enumerate() {
        comm.trace.set_step(i as u32 + 1);
        let plan = ctx.plan_tracked(comm, &prev_layout, &phase.layout);
        // Fused pack: one linear pass over the (sorted) array, writing each
        // element at its destination segment's cursor — every message is
        // then a sorted run by construction.
        comm.timed(Phase::Pack, |_| {
            cursors.clear();
            let mut offset = 0usize;
            for &c in plan.send_counts() {
                cursors.push(offset);
                offset += c;
            }
            send.clear();
            send.resize(n, local[0]);
            for (&k, &d) in local.iter().zip(plan.destinations()) {
                let slot = &mut cursors[d as usize];
                send[*slot] = k;
                *slot += 1;
            }
        });
        comm.alltoallv(&send, plan.send_counts(), &mut recv, plan.recv_counts());
        // Fused unpack + compute: one p-way merge over the received
        // segments replaces scatter + sort.
        let my_dir = fullsort_direction(phase, me);
        comm.timed(Phase::Compute, |_| {
            let mut offset = 0usize;
            let runs: Vec<Run<'_, K>> = plan
                .recv_counts()
                .iter()
                .enumerate()
                .map(|(src, &c)| {
                    let run = Run {
                        data: &recv[offset..offset + c],
                        dir: dir_of[src],
                    };
                    offset += c;
                    run
                })
                .collect();
            pway_merge_into(&runs, my_dir, &mut merged);
        });
        std::mem::swap(&mut local, &mut merged);
        for (r, d) in dir_of.iter_mut().enumerate() {
            *d = fullsort_direction(phase, r);
        }
        prev_layout = phase.layout.clone();
    }
    comm.barrier();
    local
}
