//! Per-run sort state: the remap plan cache and the reusable flat
//! buffers that make the steady-state hot path allocation-free.
//!
//! Every parallel algorithm in this crate executes a sequence of remaps.
//! Before this module existed, each remap recomputed its [`RemapPlan`]
//! (O(n) address arithmetic plus several allocations) and allocated fresh
//! pack/unpack buffers. A [`SortContext`] owns both concerns for one
//! rank: plans are computed once per distinct layout pair and cached, and
//! the pack/transfer/unpack buffers are double-buffered across remaps so
//! repeated remaps allocate nothing.

use crate::address::BitLayout;
use crate::remap::RemapPlan;
use spmd::Comm;
use std::collections::HashMap;
use std::rc::Rc;

/// Cache of [`RemapPlan`]s keyed by `(old layout, new layout, rank)`.
///
/// Plans are behind [`Rc`] so a cache hit is a pointer bump, and a caller
/// can hold a plan while mutably borrowing the rest of its context.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: HashMap<(BitLayout, BitLayout, usize), Rc<RemapPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Empty cache.
    #[must_use]
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `old → new` as seen from rank `me`, computing and
    /// caching it on first request.
    pub fn plan(&mut self, old: &BitLayout, new: &BitLayout, me: usize) -> Rc<RemapPlan> {
        if let Some(plan) = self.plans.get(&(old.clone(), new.clone(), me)) {
            self.hits += 1;
            return Rc::clone(plan);
        }
        self.misses += 1;
        let plan = Rc::new(RemapPlan::new(old, new, me));
        self.plans
            .insert((old.clone(), new.clone(), me), Rc::clone(&plan));
        plan
    }

    /// Number of distinct plans currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Lookups answered from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to compute a plan so far. A warm cache at steady
    /// state records only hits.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// One rank's per-run sort state: plan cache plus flat remap buffers.
///
/// Create one at the start of a rank's program and thread it through
/// every remap. [`SortContext::remap`] is the one-call hot path: cached
/// plan lookup, flat-buffer [`RemapPlan::apply_into`], and a swap that
/// turns the output buffer into the next remap's spare — so R successive
/// remaps perform zero steady-state allocations.
#[derive(Debug, Default)]
pub struct SortContext<K> {
    cache: PlanCache,
    /// Double-buffer partner of the caller's data vector.
    spare: Vec<K>,
    /// Scratch for the local sort/merge kernels, reused across phases and
    /// (on a retained context) across runs.
    sort_scratch: Vec<K>,
}

impl<K: Copy + Send + 'static> SortContext<K> {
    /// Fresh context; buffers grow to working-set size on first use.
    #[must_use]
    pub fn new() -> Self {
        SortContext {
            cache: PlanCache::new(),
            spare: Vec::new(),
            sort_scratch: Vec::new(),
        }
    }

    /// The context's pooled local-sort scratch buffer. Threading this
    /// through `local_sorts::local_sort_with_scratch` /
    /// `sort_bitonic_with_scratch` keeps the sort kernels allocation-free
    /// at steady state, the same way [`SortContext::remap`] keeps the
    /// remap path allocation-free.
    pub fn sort_scratch(&mut self) -> &mut Vec<K> {
        &mut self.sort_scratch
    }

    /// The cached plan for `old → new` from rank `me`.
    pub fn plan(&mut self, old: &BitLayout, new: &BitLayout, me: usize) -> Rc<RemapPlan> {
        self.cache.plan(old, new, me)
    }

    /// Like [`SortContext::plan`], additionally crediting the lookup to
    /// `comm.stats.plan_hits` / `comm.stats.plan_misses` so per-run stats
    /// show whether the cache amortized plan construction. Counters are
    /// recorded as increments, so a long-lived context on a warm machine
    /// attributes each lookup to the job that performed it.
    pub fn plan_tracked(
        &mut self,
        comm: &mut Comm<K>,
        old: &BitLayout,
        new: &BitLayout,
    ) -> Rc<RemapPlan> {
        let misses_before = self.cache.misses();
        let plan = self.cache.plan(old, new, comm.rank());
        if self.cache.misses() == misses_before {
            comm.stats.plan_hits += 1;
        } else {
            comm.stats.plan_misses += 1;
        }
        plan
    }

    /// Remap `data` in place from layout `old` to layout `new` through the
    /// flat-buffer path, reusing the cached plan and this context's
    /// scratch buffers.
    pub fn remap(
        &mut self,
        comm: &mut Comm<K>,
        old: &BitLayout,
        new: &BitLayout,
        data: &mut Vec<K>,
    ) {
        let plan = self.plan_tracked(comm, old, new);
        self.remap_with(comm, &plan, data);
    }

    /// Like [`SortContext::remap`] with a plan the caller already holds
    /// (e.g. one reused across many stages).
    pub fn remap_with(&mut self, comm: &mut Comm<K>, plan: &RemapPlan, data: &mut Vec<K>) {
        plan.apply_into(comm, data, &mut self.spare);
        std::mem::swap(data, &mut self.spare);
    }

    /// Number of distinct plans cached so far.
    #[must_use]
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Plan-cache hits accumulated over this context's lifetime.
    #[must_use]
    pub fn plan_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Plan-cache misses accumulated over this context's lifetime.
    #[must_use]
    pub fn plan_misses(&self) -> u64 {
        self.cache.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{blocked, cyclic};
    use spmd::{run_spmd, MessageMode};

    #[test]
    fn plan_cache_hits_return_the_same_plan() {
        let b = blocked(6, 3);
        let c = cyclic(6, 3);
        let mut cache = PlanCache::new();
        let p1 = cache.plan(&b, &c, 0);
        let p2 = cache.plan(&b, &c, 0);
        assert!(Rc::ptr_eq(&p1, &p2));
        assert_eq!(cache.len(), 1);
        let p3 = cache.plan(&b, &c, 1);
        assert!(!Rc::ptr_eq(&p1, &p3));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn context_remap_round_trips() {
        let b = blocked(6, 3);
        let c = cyclic(6, 3);
        let results = run_spmd::<u64, _, _>(8, MessageMode::Long, |comm| {
            let me = comm.rank();
            let b = blocked(6, 3);
            let c = cyclic(6, 3);
            let original: Vec<u64> = (0..8).map(|x| b.abs_at(me, x) as u64).collect();
            let mut ctx = SortContext::new();
            let mut data = original.clone();
            for _ in 0..4 {
                ctx.remap(comm, &b, &c, &mut data);
                ctx.remap(comm, &c, &b, &mut data);
            }
            assert_eq!(ctx.cached_plans(), 2, "two layout pairs, two plans");
            (original, data)
        });
        let _ = (b, c);
        for r in &results {
            let (original, data) = &r.output;
            assert_eq!(original, data, "even number of inverse remaps is identity");
        }
    }

    #[test]
    fn steady_state_remaps_do_not_allocate_send_buffers() {
        // After one warm-up round trip, the context's flat buffers and the
        // comm's recycling pool have reached working-set size: further
        // remaps must never miss the pool (i.e. never allocate a transfer
        // buffer) again.
        let results = run_spmd::<u64, _, _>(8, MessageMode::Long, |comm| {
            let me = comm.rank();
            let b = blocked(9, 6);
            let c = cyclic(9, 6);
            let mut data: Vec<u64> = (0..64).map(|x| b.abs_at(me, x) as u64).collect();
            let mut ctx = SortContext::new();
            ctx.remap(comm, &b, &c, &mut data);
            ctx.remap(comm, &c, &b, &mut data);
            let after_warmup = comm.pool_misses();
            for _ in 0..16 {
                ctx.remap(comm, &b, &c, &mut data);
                ctx.remap(comm, &c, &b, &mut data);
            }
            (after_warmup, comm.pool_misses())
        });
        for r in &results {
            let (warm, done) = r.output;
            assert_eq!(
                warm, done,
                "rank {}: steady state must not allocate",
                r.rank
            );
        }
    }
}
