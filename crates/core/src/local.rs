//! Local computation phases (Chapter 4).
//!
//! Two interchangeable engines execute the `lg n` network steps that follow
//! each remap:
//!
//! * [`run_phase_canonical`] — simulates each compare-exchange step on the
//!   local array through the layout's bit mapping. This is the always-
//!   correct reference (the "naive" computation the thesis starts from).
//! * [`run_phase_merges`] — the optimized computation of Theorems 2 and 3:
//!   an inside phase is one bitonic merge sort of the whole local array; a
//!   crossing phase is `2^b` chunked bitonic merge sorts, the mid-phase
//!   transpose of the local address bits, then `2^a` more chunked sorts;
//!   the final phase sorts `2^s`-element bitonic chunks ascending.
//!
//! Both engines produce bit-identical arrays (tested exhaustively), so the
//! optimized one can be swapped in without re-deriving the theorems.

use crate::address::BitLayout;
use crate::schedule::RemapPhase;
use crate::smart::RemapKind;
use bitonic_network::network::StepId;
use bitonic_network::{compare_exchange, Direction};
use local_sorts::bitonic_merge::sort_bitonic_with_scratch;

/// Which engine executes local phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalStrategy {
    /// Simulate every compare-exchange step (reference semantics).
    Canonical,
    /// Replace steps with bitonic merge sorts per Theorems 2–3 (default).
    #[default]
    Merges,
    /// The Figure 4.5 fast path: every phase is *one* full local sort.
    ///
    /// Valid whenever no crossing remap is followed by an inside remap
    /// (Section 4.1) — always true in the common regime
    /// `lgP(lgP+1)/2 <= lg n`. A crossing phase then skips the Theorem 3
    /// transpose and stays in its phase-1 bit order: the sorted array has
    /// the same elements in every `2^a` block as the canonical bitonic
    /// blocks (the blocks are totally ordered), and the next remap moves
    /// those blocks wholesale because `t > a`. On schedules where the
    /// condition fails, [`crate::algorithms::smart_sort`] silently falls
    /// back to [`LocalStrategy::Merges`].
    FullSort,
}

/// Direction of `stage`'s merge blocks for the keys held by processor `me`
/// under `layout` — `Some` when the direction bit is a processor bit (one
/// direction for the whole processor), `None` when it is a local bit (the
/// direction varies across the local array).
///
/// The direction bit of stage `s` is absolute bit `s` (Definition 3); for
/// the final stage that bit lies beyond the address width, making the
/// final merge ascending everywhere.
#[must_use]
pub fn stage_direction(layout: &BitLayout, me: usize, stage: u32) -> Option<Direction> {
    if stage >= layout.lg_total() {
        return Some(Direction::Ascending);
    }
    let pos = layout
        .position_of(stage)
        .expect("stage bit within address width");
    if pos < layout.lg_local() {
        None
    } else {
        let bit = (me >> (pos - layout.lg_local())) & 1;
        Some(if bit == 0 {
            Direction::Ascending
        } else {
            Direction::Descending
        })
    }
}

/// Direction in which a processor's local array is sorted by the initial
/// blocked phase (stages `1 ..= lg n`): ascending on even processors —
/// Lemma 6's alternating runs at the input of stage `lg n + 1`.
#[must_use]
pub fn initial_direction(layout: &BitLayout, me: usize) -> Direction {
    stage_direction(layout, me, layout.lg_local())
        .expect("bit lg n is a processor bit under the blocked layout")
}

/// Execute one network step on the local array of processor `me`.
///
/// # Panics
/// Panics if the step's compared bit is not local under `layout` (such a
/// step cannot run without communication).
pub fn run_step_canonical<K: Ord + Copy>(
    layout: &BitLayout,
    me: usize,
    data: &mut [K],
    step: StepId,
) {
    let lambda = layout
        .local_position_of(step.bit())
        .unwrap_or_else(|| panic!("step {step:?} is not local under this layout"));
    let dist = 1usize << lambda;
    debug_assert_eq!(data.len(), layout.local_size());

    match stage_direction(layout, me, step.direction_bit()) {
        Some(dir) => {
            for x in (0..data.len()).filter(|x| x & dist == 0) {
                compare_exchange(data, x, x | dist, dir);
            }
        }
        None => {
            // Direction varies: read it off the local position of the
            // stage's direction bit.
            let sigma = layout
                .local_position_of(step.direction_bit())
                .expect("direction bit is local in this branch");
            for x in (0..data.len()).filter(|x| x & dist == 0) {
                let dir = if (x >> sigma) & 1 == 0 {
                    Direction::Ascending
                } else {
                    Direction::Descending
                };
                compare_exchange(data, x, x | dist, dir);
            }
        }
    }
}

/// The Theorem 3 mid-phase transpose: reinterpret a local address whose low
/// `a` bits are region `D` and high `b` bits region `B` as `(D << b) | B`.
/// `scratch` is clobbered.
pub fn transpose_local<K: Copy>(data: &mut [K], a: u32, b: u32, scratch: &mut Vec<K>) {
    assert_eq!(data.len(), 1usize << (a + b), "data length must be 2^(a+b)");
    if a == 0 || b == 0 {
        return;
    }
    scratch.clear();
    scratch.extend_from_slice(data);
    let mask_a = (1usize << a) - 1;
    for (x, &v) in scratch.iter().enumerate() {
        let d = x & mask_a;
        let bb = x >> a;
        data[(d << b) | bb] = v;
    }
}

/// Execute a whole phase with the canonical engine, including the
/// mid-phase transpose for crossing phases (so its final state matches the
/// optimized engine exactly).
pub fn run_phase_canonical<K: Ord + Copy>(
    phase: &RemapPhase,
    me: usize,
    data: &mut [K],
    scratch: &mut Vec<K>,
) {
    let before = phase.steps_before_transpose();
    for (i, &step) in phase.steps.iter().enumerate() {
        if i == before && phase.layout != phase.layout_after {
            transpose_local(data, phase.params.a, phase.params.b, scratch);
        }
        let layout = if i < before {
            &phase.layout
        } else {
            &phase.layout_after
        };
        run_step_canonical(layout, me, data, step);
    }
    // A crossing phase whose steps all precede the transpose (impossible
    // today, but keep the state machine total): transpose at the end.
    if before == phase.steps.len() && phase.layout != phase.layout_after {
        transpose_local(data, phase.params.a, phase.params.b, scratch);
    }
}

/// Execute a whole phase with the optimized engine of Theorems 2 and 3.
pub fn run_phase_merges<K: Ord + Copy>(
    phase: &RemapPhase,
    me: usize,
    data: &mut [K],
    scratch: &mut Vec<K>,
) {
    let lg_n = phase.layout.lg_local();
    match phase.params.kind {
        RemapKind::Inside => {
            // Theorem 2: the local array is one bitonic sequence; lg n
            // steps sort it in the stage's direction.
            let stage = phase.steps[0].stage;
            let dir = stage_direction(&phase.layout, me, stage)
                .expect("inside-phase direction bit is a processor bit");
            debug_assert!(bitonic_network::is_bitonic(data));
            sort_bitonic_with_scratch(data, scratch, dir);
        }
        RemapKind::Last => {
            // Final phase: `s` remaining steps of the last stage sort
            // 2^s-element bitonic chunks; the last stage is ascending.
            let s = phase.steps.len() as u32;
            let chunk = 1usize << s;
            for c in data.chunks_mut(chunk) {
                debug_assert!(bitonic_network::is_bitonic(c));
                sort_bitonic_with_scratch(c, scratch, Direction::Ascending);
            }
        }
        RemapKind::Crossing => {
            let (a, b) = (phase.params.a, phase.params.b);
            // Sub-phase 1: 2^b bitonic chunks of 2^a elements; the
            // direction bit (stage lg n + k) is the *top local bit*, so
            // the first half of the chunks ascend and the second half
            // descend.
            let sigma = phase
                .layout
                .local_position_of(phase.steps[0].direction_bit())
                .expect("crossing sub-phase 1 direction bit is the top local bit");
            debug_assert_eq!(sigma, lg_n - 1);
            let chunk1 = 1usize << a;
            for (c, chunk) in data.chunks_mut(chunk1).enumerate() {
                let local_rep = c << a; // any address inside the chunk
                let dir = if (local_rep >> sigma) & 1 == 0 {
                    Direction::Ascending
                } else {
                    Direction::Descending
                };
                debug_assert!(bitonic_network::is_bitonic(chunk));
                sort_bitonic_with_scratch(chunk, scratch, dir);
            }
            transpose_local(data, a, b, scratch);
            // Sub-phase 2: 2^a bitonic chunks of 2^b elements; direction
            // bit (stage lg n + k + 1) is a processor bit (or beyond the
            // address width in the final stage).
            let stage2 = phase.steps.last().expect("crossing phase has steps").stage;
            let dir2 = stage_direction(&phase.layout_after, me, stage2)
                .expect("crossing sub-phase 2 direction bit is a processor bit");
            let chunk2 = 1usize << b;
            for chunk in data.chunks_mut(chunk2) {
                debug_assert!(bitonic_network::is_bitonic(chunk));
                sort_bitonic_with_scratch(chunk, scratch, dir2);
            }
        }
    }
}

/// Execute a whole phase as one full local sort (Figure 4.5). See
/// [`LocalStrategy::FullSort`] for the validity condition; the caller is
/// responsible for checking it over the schedule.
pub fn run_phase_fullsort<K: local_sorts::RadixKey>(
    phase: &RemapPhase,
    me: usize,
    data: &mut [K],
    scratch: &mut Vec<K>,
) {
    let dir = match phase.params.kind {
        // Inside: the whole array sorts in the stage direction (Theorem 2).
        RemapKind::Inside => {
            let stage = phase.steps[0].stage;
            stage_direction(&phase.layout, me, stage)
                .expect("inside-phase direction bit is a processor bit")
        }
        // Crossing: stay in phase-1 bit order; sort in the *next* stage's
        // direction (its bit is a processor bit in phase-1 order too).
        RemapKind::Crossing => {
            let stage2 = phase.steps.last().expect("crossing phase has steps").stage;
            stage_direction(&phase.layout, me, stage2)
                .expect("crossing-phase next-stage direction bit is a processor bit")
        }
        // Final phase: the local slice of the blocked, globally ascending
        // output.
        RemapKind::Last => Direction::Ascending,
    };
    local_sorts::local_sort_with_scratch(data, scratch, dir);
}

/// The local bit arrangement at the end of a phase under `strategy` — the
/// layout the *next* remap must be planned from. `FullSort` skips the
/// Theorem 3 transpose, so crossing phases end in phase-1 order.
#[must_use]
pub fn layout_after_for(strategy: LocalStrategy, phase: &RemapPhase) -> BitLayout {
    match strategy {
        LocalStrategy::FullSort => phase.layout.clone(),
        _ => phase.layout_after.clone(),
    }
}

/// Is [`LocalStrategy::FullSort`] valid for this schedule — i.e., is no
/// crossing remap followed by an inside remap (Section 4.1)?
#[must_use]
pub fn fullsort_valid(schedule: &crate::schedule::SmartSchedule) -> bool {
    schedule.phases.windows(2).all(|w| {
        !(w[0].params.kind == RemapKind::Crossing && w[1].params.kind == RemapKind::Inside)
    })
}

/// Dispatch on [`LocalStrategy`].
pub fn run_phase<K: local_sorts::RadixKey>(
    strategy: LocalStrategy,
    phase: &RemapPhase,
    me: usize,
    data: &mut [K],
    scratch: &mut Vec<K>,
) {
    match strategy {
        LocalStrategy::Canonical => run_phase_canonical(phase, me, data, scratch),
        LocalStrategy::Merges => run_phase_merges(phase, me, data, scratch),
        LocalStrategy::FullSort => run_phase_fullsort(phase, me, data, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::blocked;
    use crate::remap::RemapPlan;
    use crate::schedule::SmartSchedule;

    #[test]
    fn transpose_is_its_own_inverse_when_swapped() {
        let mut data: Vec<u32> = (0..32).collect();
        let orig = data.clone();
        let mut scratch = Vec::new();
        transpose_local(&mut data, 2, 3, &mut scratch);
        assert_ne!(data, orig);
        transpose_local(&mut data, 3, 2, &mut scratch);
        assert_eq!(data, orig, "transposing back with swapped widths restores");
    }

    #[test]
    fn transpose_moves_strides_to_chunks() {
        // a=1, b=2: old index (B<<1)|D -> new (D<<2)|B.
        let mut data = vec![0u32, 1, 2, 3, 4, 5, 6, 7];
        let mut scratch = Vec::new();
        transpose_local(&mut data, 1, 2, &mut scratch);
        // Element at old x lands at new ((x&1)<<2)|(x>>1).
        assert_eq!(data, vec![0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn stage_direction_blocked_alternates_with_me() {
        let l = blocked(6, 3);
        // Stage 4's direction bit is abs bit 4 = proc bit 1.
        assert_eq!(stage_direction(&l, 0b000, 4), Some(Direction::Ascending));
        assert_eq!(stage_direction(&l, 0b010, 4), Some(Direction::Descending));
        // Stage 6 = lg N: always ascending.
        assert_eq!(stage_direction(&l, 0b111, 6), Some(Direction::Ascending));
        // Stage 2's bit is local: no single direction.
        assert_eq!(stage_direction(&l, 0b000, 2), None);
    }

    #[test]
    fn initial_direction_is_even_odd() {
        let l = blocked(6, 3);
        assert_eq!(initial_direction(&l, 0), Direction::Ascending);
        assert_eq!(initial_direction(&l, 1), Direction::Descending);
        assert_eq!(initial_direction(&l, 2), Direction::Ascending);
    }

    /// Per-phase snapshots of all processors' arrays.
    type States = Vec<Vec<Vec<u64>>>;

    /// Drive a full sequential sort with the given engine and verify the
    /// merges engine matches the canonical engine *state-for-state*.
    fn full_run_states(n_total: usize, p: usize, seed: u64) -> (States, States) {
        let sched = SmartSchedule::new(n_total, p);
        let n = n_total / p;
        let mut x = seed | 1;
        let keys: Vec<u64> = (0..n_total)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 40
            })
            .collect();
        let blocked_layout = sched.blocked_layout();

        let run = |strategy: LocalStrategy| -> States {
            let mut per_proc: Vec<Vec<u64>> = (0..p)
                .map(|me| keys[me * n..(me + 1) * n].to_vec())
                .collect();
            let mut scratch = Vec::new();
            // Initial blocked phase.
            for (me, d) in per_proc.iter_mut().enumerate() {
                let mut v = d.clone();
                v.sort_unstable();
                if initial_direction(&blocked_layout, me) == Direction::Descending {
                    v.reverse();
                }
                *d = v;
            }
            let mut states = vec![per_proc.clone()];
            let mut prev = blocked_layout.clone();
            for phase in &sched.phases {
                let plans: Vec<RemapPlan> = (0..p)
                    .map(|me| RemapPlan::new(&prev, &phase.layout, me))
                    .collect();
                RemapPlan::apply_sequential(&plans, &mut per_proc);
                for (me, d) in per_proc.iter_mut().enumerate() {
                    run_phase(strategy, phase, me, d, &mut scratch);
                }
                states.push(per_proc.clone());
                prev = phase.layout_after.clone();
            }
            states
        };
        (run(LocalStrategy::Canonical), run(LocalStrategy::Merges))
    }

    #[test]
    fn merges_engine_matches_canonical_state_for_state() {
        for (n_total, p, seed) in [
            (256usize, 16usize, 1u64), // the Figure 3.3 shape
            (64, 4, 2),
            (128, 8, 3),
            (1024, 4, 4),
            (64, 16, 5), // n < P territory
            (64, 32, 6), // n << P
            (32, 2, 7),
        ] {
            let (canon, merges) = full_run_states(n_total, p, seed);
            assert_eq!(canon.len(), merges.len());
            for (i, (c, m)) in canon.iter().zip(merges.iter()).enumerate() {
                assert_eq!(c, m, "divergence after phase {i} (N={n_total}, P={p})");
            }
            // And the final state is the globally sorted array, blocked.
            let finals: Vec<u64> = canon.last().unwrap().concat();
            assert!(finals.windows(2).all(|w| w[0] <= w[1]), "output not sorted");
        }
    }

    #[test]
    fn canonical_engine_sorts_with_duplicates() {
        let (canon, merges) = full_run_states(256, 16, 0xDEAD);
        let finals: Vec<u64> = merges.last().unwrap().concat();
        assert!(finals.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(canon.last(), merges.last());
    }

    #[test]
    #[should_panic(expected = "not local")]
    fn canonical_step_rejects_remote_bits() {
        let l = blocked(6, 3);
        let mut data = vec![0u32; 8];
        // Stage 6, step 6 compares bit 5 — a processor bit under blocked.
        run_step_canonical(&l, 0, &mut data, StepId { stage: 6, step: 6 });
    }
}
