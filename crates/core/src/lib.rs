//! `bitonic-core` — the contribution of *Optimizing Parallel Bitonic Sort*
//! (Ionescu, UCSB 1996 / IPPS 1997), implemented from scratch.
//!
//! The thesis optimizes Batcher's bitonic sort for coarse-grained parallel
//! machines (`N ≫ P`) along two axes:
//!
//! 1. **Communication** (Chapter 3): a new *smart data layout*
//!    ([`smart`], [`schedule`]) under which every data remap is followed by
//!    exactly `lg n` locally executable network steps — the provable
//!    maximum — so the sort uses the minimum possible number of remaps
//!    (Theorem 1). Remaps themselves are long-message pack/transfer/unpack
//!    operations ([`remap`], [`masks`]).
//! 2. **Computation** (Chapter 4): every local phase is a bitonic merge
//!    sort or chunked variant thereof instead of a compare-exchange
//!    simulation ([`local`]).
//!
//! [`algorithms`] assembles these into three runnable parallel sorts —
//! the smart algorithm plus the two prior strategies it is evaluated
//! against — over the `spmd` machine substrate.
//!
//! # Quick start
//!
//! ```
//! use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
//! use bitonic_core::local::LocalStrategy;
//! use spmd::MessageMode;
//!
//! let keys: Vec<u32> = (0..1024u32).rev().collect();
//! let run = run_parallel_sort(&keys, 8, MessageMode::Long, Algorithm::Smart,
//!                             LocalStrategy::Merges);
//! assert!(run.output.windows(2).all(|w| w[0] <= w[1]));
//! // Communication counters match the thesis formulas: R = lgP + 1 remaps.
//! assert_eq!(run.ranks[0].stats.remap_count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod algorithms;
pub mod complexity;
pub mod context;
pub mod layout;
pub mod local;
pub mod masks;
pub mod remap;
pub mod schedule;
pub mod shift;
pub mod smart;
pub mod tagged;

pub use address::BitLayout;
pub use algorithms::{
    run_parallel_sort, run_parallel_sort_chaos, run_parallel_sort_traced, Algorithm,
};
pub use context::{PlanCache, SortContext};
pub use local::LocalStrategy;
pub use remap::RemapPlan;
pub use schedule::SmartSchedule;
pub use shift::{ShiftStrategy, ShiftedSchedule};
pub use smart::{RemapKind, SmartParams};
pub use tagged::TaggedBatch;
