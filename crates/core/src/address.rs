//! Absolute and relative addresses (Definition 6) and bit-pattern layouts.
//!
//! Every node of the bitonic sorting network carries an *absolute address*
//! — the row it was initially mapped to, `lg N` bits. After a remap it also
//! has a *relative address*: the processor number (`lg P` bits) plus the
//! local address on that processor (`lg n` bits, Figure 3.1).
//!
//! Every layout in the thesis — blocked, cyclic, and all the smart layouts
//! of Definition 7 — converts between the two by *rearranging bit
//! positions* (Figures 3.2, 3.7, 3.8). [`BitLayout`] captures exactly that:
//! for each relative bit it records which absolute bit feeds it. This
//! single representation gives us a uniform remap engine, mechanical
//! bits-changed analysis (Lemma 3), and cheap bijectivity checks.

/// A data layout expressed as a permutation of address bits.
///
/// Relative bits `0 .. lg n` form the local address (bit 0 = least
/// significant); relative bits `lg n .. lg N` form the processor number.
///
/// ```
/// use bitonic_core::layout::{blocked, cyclic};
/// // 16 keys on 4 processors.
/// let b = blocked(4, 2);
/// assert_eq!(b.proc_of(13), 3);      // key 13 lives on processor ⌊13/4⌋
/// let c = cyclic(4, 2);
/// assert_eq!(c.proc_of(13), 1);      // …or on 13 mod 4 under cyclic
/// // Remapping blocked → cyclic moves lg P = 2 bits into the processor
/// // part, so each processor keeps n/4 keys (Lemma 3/4).
/// assert_eq!(b.bits_changed_to(&c), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitLayout {
    /// `rel_source[j]` = the absolute bit index that feeds relative bit `j`.
    rel_source: Vec<u32>,
    /// Number of local-address bits (`lg n`).
    lg_local: u32,
}

impl BitLayout {
    /// Build a layout from the absolute bit feeding each relative bit.
    ///
    /// # Panics
    /// Panics unless `rel_source` is a permutation of `0 .. rel_source.len()`
    /// and `lg_local <= rel_source.len()`.
    #[must_use]
    pub fn new(rel_source: Vec<u32>, lg_local: u32) -> Self {
        let lg_total = rel_source.len() as u32;
        assert!(lg_local <= lg_total, "more local bits than address bits");
        let mut seen = vec![false; rel_source.len()];
        for &b in &rel_source {
            assert!(b < lg_total, "absolute bit {b} out of range");
            assert!(!seen[b as usize], "absolute bit {b} used twice");
            seen[b as usize] = true;
        }
        BitLayout {
            rel_source,
            lg_local,
        }
    }

    /// Total address width `lg N`.
    #[must_use]
    pub fn lg_total(&self) -> u32 {
        self.rel_source.len() as u32
    }

    /// Local address width `lg n`.
    #[must_use]
    pub fn lg_local(&self) -> u32 {
        self.lg_local
    }

    /// Processor address width `lg P`.
    #[must_use]
    pub fn lg_proc(&self) -> u32 {
        self.lg_total() - self.lg_local
    }

    /// Elements per processor, `n`.
    #[must_use]
    pub fn local_size(&self) -> usize {
        1usize << self.lg_local
    }

    /// Number of processors, `P`.
    #[must_use]
    pub fn procs(&self) -> usize {
        1usize << self.lg_proc()
    }

    /// The absolute bit feeding relative bit `j`.
    #[must_use]
    pub fn source_of(&self, rel_bit: u32) -> u32 {
        self.rel_source[rel_bit as usize]
    }

    /// Relative address of the node with absolute address `abs`.
    #[must_use]
    pub fn rel_of(&self, abs: usize) -> usize {
        let mut rel = 0usize;
        for (j, &src) in self.rel_source.iter().enumerate() {
            rel |= ((abs >> src) & 1) << j;
        }
        rel
    }

    /// Absolute address of the node at relative address `rel`.
    #[must_use]
    pub fn abs_of(&self, rel: usize) -> usize {
        let mut abs = 0usize;
        for (j, &src) in self.rel_source.iter().enumerate() {
            abs |= ((rel >> j) & 1) << src;
        }
        abs
    }

    /// Processor holding the node with absolute address `abs`.
    #[must_use]
    pub fn proc_of(&self, abs: usize) -> usize {
        self.rel_of(abs) >> self.lg_local
    }

    /// Local address of the node with absolute address `abs`.
    #[must_use]
    pub fn local_of(&self, abs: usize) -> usize {
        self.rel_of(abs) & (self.local_size() - 1)
    }

    /// Relative address composed from processor and local parts.
    #[must_use]
    pub fn rel(&self, proc: usize, local: usize) -> usize {
        debug_assert!(local < self.local_size());
        debug_assert!(proc < self.procs());
        (proc << self.lg_local) | local
    }

    /// Absolute address of the node at `(proc, local)`.
    #[must_use]
    pub fn abs_at(&self, proc: usize, local: usize) -> usize {
        self.abs_of(self.rel(proc, local))
    }

    /// Where absolute bit `abs_bit` sits in the relative address, if
    /// anywhere (it always does for in-range bits).
    #[must_use]
    pub fn position_of(&self, abs_bit: u32) -> Option<u32> {
        self.rel_source
            .iter()
            .position(|&s| s == abs_bit)
            .map(|p| p as u32)
    }

    /// Position of `abs_bit` within the *local* address, or `None` if it is
    /// a processor bit (or out of range). A network step can execute
    /// locally exactly when its compared bit is local.
    #[must_use]
    pub fn local_position_of(&self, abs_bit: u32) -> Option<u32> {
        match self.position_of(abs_bit) {
            Some(p) if p < self.lg_local => Some(p),
            _ => None,
        }
    }

    /// Is `abs_bit` part of the processor number under this layout?
    #[must_use]
    pub fn is_proc_bit(&self, abs_bit: u32) -> bool {
        matches!(self.position_of(abs_bit), Some(p) if p >= self.lg_local)
    }

    /// Number of absolute bits that are local here but become processor
    /// bits under `next` — `N_BitsChanged` of Lemma 3. Each such bit halves
    /// the elements a processor keeps across the remap
    /// (`N_keep = n / 2^{N_BitsChanged}`, Section 3.2.1).
    #[must_use]
    pub fn bits_changed_to(&self, next: &BitLayout) -> u32 {
        assert_eq!(self.lg_total(), next.lg_total());
        (0..self.lg_total())
            .filter(|&b| self.local_position_of(b).is_some() && next.is_proc_bit(b))
            .count() as u32
    }

    /// The bit pattern rendered in thesis style: most significant absolute
    /// bit first, processor-part bits bracketed (cf. Figure 3.4).
    #[must_use]
    pub fn pattern_string(&self) -> String {
        let mut out = String::new();
        for abs_bit in (0..self.lg_total()).rev() {
            let pos = self
                .position_of(abs_bit)
                .expect("permutation covers all bits");
            if pos >= self.lg_local {
                out.push_str(&format!("[p{}]", pos - self.lg_local));
            } else {
                out.push_str(&format!(" l{pos} "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(lg_total: u32, lg_local: u32) -> BitLayout {
        BitLayout::new((0..lg_total).collect(), lg_local)
    }

    #[test]
    fn rel_abs_roundtrip_identity() {
        let l = identity(6, 3);
        for abs in 0..64 {
            assert_eq!(l.rel_of(abs), abs);
            assert_eq!(l.abs_of(abs), abs);
        }
    }

    #[test]
    fn rel_abs_roundtrip_arbitrary_permutation() {
        let l = BitLayout::new(vec![3, 0, 4, 1, 5, 2], 3);
        for abs in 0..64 {
            assert_eq!(l.abs_of(l.rel_of(abs)), abs, "abs_of ∘ rel_of = id");
        }
        for rel in 0..64 {
            assert_eq!(l.rel_of(l.abs_of(rel)), rel, "rel_of ∘ abs_of = id");
        }
    }

    #[test]
    fn proc_and_local_split_rel() {
        let l = BitLayout::new(vec![2, 3, 0, 1], 2); // local <- abs{2,3}, proc <- abs{0,1}
                                                     // abs = 0b1101: local bits from abs2=1, abs3=1 -> 0b11; proc from abs0=1, abs1=0 -> 0b01.
        assert_eq!(l.local_of(0b1101), 0b11);
        assert_eq!(l.proc_of(0b1101), 0b01);
        assert_eq!(l.abs_at(0b01, 0b11), 0b1101);
    }

    #[test]
    fn positions_and_regions() {
        let l = BitLayout::new(vec![4, 2, 0, 1, 3], 3);
        assert_eq!(l.local_position_of(4), Some(0));
        assert_eq!(l.local_position_of(0), Some(2));
        assert_eq!(l.local_position_of(1), None, "abs bit 1 is a proc bit");
        assert!(l.is_proc_bit(1));
        assert!(l.is_proc_bit(3));
        assert!(!l.is_proc_bit(4));
        assert_eq!(l.position_of(3), Some(4));
    }

    #[test]
    fn bits_changed_counts_local_to_proc_moves() {
        let a = identity(4, 2); // local {0,1}, proc {2,3}
        let b = BitLayout::new(vec![2, 3, 0, 1], 2); // local {2,3}, proc {0,1}
        assert_eq!(a.bits_changed_to(&b), 2, "both local bits become proc bits");
        assert_eq!(b.bits_changed_to(&a), 2);
        assert_eq!(a.bits_changed_to(&a), 0, "no-op remap changes nothing");
    }

    #[test]
    fn every_proc_gets_equal_share() {
        let l = BitLayout::new(vec![5, 1, 3, 0, 2, 4], 3);
        let mut counts = vec![0usize; l.procs()];
        for abs in 0..64 {
            counts[l.proc_of(abs)] += 1;
        }
        assert!(counts.iter().all(|&c| c == l.local_size()));
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn duplicate_sources_rejected() {
        let _ = BitLayout::new(vec![0, 0, 1], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let _ = BitLayout::new(vec![0, 3], 1);
    }

    #[test]
    fn pattern_string_shades_proc_bits() {
        let l = BitLayout::new(vec![0, 1, 2, 3], 2);
        let s = l.pattern_string();
        assert!(s.contains("[p1]") && s.contains("l0"), "pattern: {s}");
    }
}
