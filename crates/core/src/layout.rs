//! The classic layouts of Chapter 2: blocked (Definition 4) and cyclic
//! (Definition 5), as [`BitLayout`] bit patterns.

use crate::address::BitLayout;

/// Blocked layout: key `i` lives on processor `⌊i/n⌋`.
///
/// The processor number is the top `lg P` bits of the absolute address and
/// the local address the low `lg n` bits, so the relative address *is* the
/// absolute address (the identity bit pattern of Figure 3.2's left side).
#[must_use]
pub fn blocked(lg_total: u32, lg_local: u32) -> BitLayout {
    BitLayout::new((0..lg_total).collect(), lg_local)
}

/// Cyclic layout: key `i` lives on processor `i mod P`.
///
/// The processor number is the *low* `lg P` bits of the absolute address
/// and the local address the top `lg n` bits — a rotation of the blocked
/// pattern by `lg P` (Figure 3.2).
#[must_use]
pub fn cyclic(lg_total: u32, lg_local: u32) -> BitLayout {
    let lg_proc = lg_total - lg_local;
    let rel_source = (0..lg_total).map(|j| (j + lg_proc) % lg_total).collect();
    BitLayout::new(rel_source, lg_local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_matches_definition_4() {
        // N = 16, P = 4: key i goes to processor floor(i/4).
        let l = blocked(4, 2);
        for i in 0..16usize {
            assert_eq!(l.proc_of(i), i / 4);
            assert_eq!(l.local_of(i), i % 4);
        }
    }

    #[test]
    fn cyclic_matches_definition_5() {
        // N = 16, P = 4: key i goes to processor i mod 4 (the thesis writes
        // "i mod n", a typo for i mod P — its Figure 2.6 shows i mod P).
        let l = cyclic(4, 2);
        for i in 0..16usize {
            assert_eq!(l.proc_of(i), i % 4);
            assert_eq!(l.local_of(i), i / 4);
        }
    }

    #[test]
    fn blocked_localizes_low_steps_cyclic_localizes_high_steps() {
        // Under blocked, steps touching bits < lg n are local; under cyclic,
        // steps touching bits >= lg P are local (Figures 2.5/2.6).
        let (lg_total, lg_local) = (8, 5);
        let b = blocked(lg_total, lg_local);
        let c = cyclic(lg_total, lg_local);
        for bit in 0..lg_total {
            assert_eq!(b.local_position_of(bit).is_some(), bit < lg_local);
            assert_eq!(
                c.local_position_of(bit).is_some(),
                bit >= lg_total - lg_local
            );
        }
    }

    #[test]
    fn blocked_to_cyclic_changes_lg_p_bits() {
        // A blocked→cyclic remap always moves lg P bits from local to proc
        // (when n >= P), which is why the cyclic-blocked strategy transfers
        // n(1 - 1/P) elements at every remap.
        for (lg_total, lg_local) in [(6u32, 4u32), (8, 5), (10, 7)] {
            let b = blocked(lg_total, lg_local);
            let c = cyclic(lg_total, lg_local);
            let lg_p = lg_total - lg_local;
            assert_eq!(b.bits_changed_to(&c), lg_p);
            assert_eq!(c.bits_changed_to(&b), lg_p);
        }
    }

    #[test]
    fn degenerate_single_processor() {
        let b = blocked(4, 4);
        let c = cyclic(4, 4);
        assert_eq!(b, c, "with P = 1 the two layouts coincide");
        for i in 0..16usize {
            assert_eq!(b.proc_of(i), 0);
        }
    }
}
