//! Minimal fixed-width table rendering for experiment output.

/// A simple text table: header row plus data rows, rendered with aligned
/// columns in GitHub-markdown style so reports can be pasted into
/// EXPERIMENTS.md verbatim.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; its length must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Render with aligned pipes.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(" {:>w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.header);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a float with 2 decimals (the thesis's table precision).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a duration as µs per key.
#[must_use]
pub fn us_per_key(d: std::time::Duration, keys: usize) -> String {
    f2(d.as_secs_f64() * 1e6 / keys as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_pipes() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["1", "10.00"]);
        t.row(vec!["1024", "0.52"]);
        let s = t.render();
        assert!(s.contains("|    n | value |"), "got:\n{s}");
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.519), "0.52");
        assert_eq!(
            us_per_key(std::time::Duration::from_micros(5200), 10_000),
            "0.52"
        );
    }
}
