//! Minimal fixed-width table rendering for experiment output, plus the
//! stable machine-readable benchmark record schema (`BENCH_1`).

/// A simple text table: header row plus data rows, rendered with aligned
/// columns in GitHub-markdown style so reports can be pasted into
/// EXPERIMENTS.md verbatim.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; its length must match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Render with aligned pipes.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(" {:>w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.header);
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Schema tag for machine-readable benchmark output. Bump the suffix when
/// a field changes meaning; external tooling matches on it exactly.
pub const BENCH_SCHEMA: &str = "BENCH_1";

/// The R/V/M counters attached to a [`BenchRecord`] (critical-path view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BenchCounters {
    /// Communication steps (`R`).
    pub remaps: u64,
    /// Elements sent per processor (`V`).
    pub elements_sent: u64,
    /// Messages sent per processor (`M`).
    pub messages_sent: u64,
}

impl BenchCounters {
    /// Extract the counter triple from a stats record.
    #[must_use]
    pub fn of(stats: &spmd::CommStats) -> Self {
        BenchCounters {
            remaps: stats.remap_count(),
            elements_sent: stats.elements_sent,
            messages_sent: stats.messages_sent,
        }
    }
}

/// One benchmark result in the stable `BENCH_1` schema: `name`, `keys`
/// (per rank), `procs`, `mode`, `ns_per_key`, and optionally the
/// critical-path `counters`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Hierarchical result name, e.g. `remap_bench/long/flat`.
    pub name: String,
    /// Keys per rank.
    pub keys: usize,
    /// Machine size (`P`).
    pub procs: usize,
    /// Message mode (`long` or `short`).
    pub mode: String,
    /// Nanoseconds of critical-path wall-clock per key.
    pub ns_per_key: f64,
    /// Critical-path R/V/M, when the benchmark records them.
    pub counters: Option<BenchCounters>,
}

impl BenchRecord {
    fn to_json(&self) -> String {
        let counters = match &self.counters {
            Some(c) => format!(
                ", \"counters\": {{\"remaps\": {}, \"elements_sent\": {}, \
                 \"messages_sent\": {}}}",
                c.remaps, c.elements_sent, c.messages_sent
            ),
            None => String::new(),
        };
        format!(
            "{{\"name\": \"{}\", \"keys\": {}, \"procs\": {}, \"mode\": \"{}\", \
             \"ns_per_key\": {:.2}{counters}}}",
            self.name, self.keys, self.procs, self.mode, self.ns_per_key
        )
    }
}

/// Render records as a complete `BENCH_1` JSON document:
/// `{"schema": "BENCH_1", "records": [...]}`.
#[must_use]
pub fn bench_json(records: &[BenchRecord]) -> String {
    let mut out = format!("{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema tag for the serving benchmark's machine-readable output. Like
/// [`BENCH_SCHEMA`], the suffix is bumped when any field changes meaning.
pub const SERVE_SCHEMA: &str = "SERVE_1";

/// One serving-benchmark result in the stable `SERVE_1` schema: the
/// offered load, what the service did with it, and the reply-latency
/// percentiles under that load.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Ranks per warm machine (`P`).
    pub procs: usize,
    /// Warm machines in the pool.
    pub machines: usize,
    /// Requests offered during the measured (post-warm-up) window.
    pub requests: u64,
    /// Keys across those requests (before padding).
    pub total_keys: u64,
    /// Batches the coalescer formed from them.
    pub batches: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Admitted requests that expired before their batch ran.
    pub expired: u64,
    /// Admitted requests lost to a failed batch.
    pub failed: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// Sorted keys per wall-clock second.
    pub throughput_keys: f64,
    /// Median submit-to-reply latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Lifetime plan-cache hit rate in `[0, 1]` (warm-up included).
    pub plan_hit_rate: f64,
    /// Plan-cache misses during the measured window — zero once the pool
    /// is warm to every batch shape the load can produce.
    pub steady_plan_misses: u64,
}

/// Render a summary as a complete `SERVE_1` JSON document.
#[must_use]
pub fn serve_json(s: &ServeSummary) -> String {
    format!(
        "{{\n  \"schema\": \"{SERVE_SCHEMA}\",\n  \
         \"procs\": {}, \"machines\": {},\n  \
         \"requests\": {}, \"total_keys\": {}, \"batches\": {},\n  \
         \"shed\": {}, \"expired\": {}, \"failed\": {},\n  \
         \"throughput_rps\": {:.1}, \"throughput_keys\": {:.1},\n  \
         \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1},\n  \
         \"plan_hit_rate\": {:.4}, \"steady_plan_misses\": {}\n}}\n",
        s.procs,
        s.machines,
        s.requests,
        s.total_keys,
        s.batches,
        s.shed,
        s.expired,
        s.failed,
        s.throughput_rps,
        s.throughput_keys,
        s.p50_us,
        s.p95_us,
        s.p99_us,
        s.plan_hit_rate,
        s.steady_plan_misses,
    )
}

/// Schema tag for the sharded-serving benchmark's machine-readable
/// output. Like [`BENCH_SCHEMA`], the suffix is bumped when any field
/// changes meaning.
pub const SHARD_SCHEMA: &str = "SHARD_1";

/// One size class's results in the `SHARD_1` schema: what its shard did
/// and its reply-latency percentiles, next to the single-pool baseline's
/// percentile for the *same* requests.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLatency {
    /// Class name (`"small"`, `"bulk"`, …).
    pub class: String,
    /// The class's size band: largest request (keys) it admits.
    pub max_keys: usize,
    /// Machines in the class's pool at the end of the run.
    pub machines: u64,
    /// Requests the router sent to this class.
    pub requests: u64,
    /// Requests answered with sorted keys.
    pub completed: u64,
    /// Batches the shard ran (own and stolen).
    pub batches: u64,
    /// Batches the shard stole from neighbors.
    pub steals: u64,
    /// Requests claimed across those steals.
    pub stolen_requests: u64,
    /// Autoscaler grow events.
    pub scale_ups: u64,
    /// Autoscaler shrink events.
    pub scale_downs: u64,
    /// Median sharded reply latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile sharded latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile sharded latency, microseconds.
    pub p99_us: f64,
    /// 99th-percentile latency of the same class's requests under the
    /// single-pool baseline at equal total machine count.
    pub baseline_p99_us: f64,
}

/// One sharded-serving comparison in the stable `SHARD_1` schema: the
/// sharded topology against a single pool with the same total machine
/// count, under the same mixed load.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Ranks per machine (`P`) — same in every pool and the baseline.
    pub procs: usize,
    /// Size classes in the sharded topology.
    pub shards: usize,
    /// Machines across all shards (equals `baseline_machines`).
    pub total_machines: usize,
    /// Machines in the single-pool baseline.
    pub baseline_machines: usize,
    /// Requests offered to each service.
    pub requests: u64,
    /// Requests shed by the sharded service (router or admission).
    pub shed: u64,
    /// Sharded requests that expired before their batch ran.
    pub expired: u64,
    /// Sharded requests lost to failed batches.
    pub failed: u64,
    /// Requests larger than every band.
    pub unroutable: u64,
    /// Sharded replies that differed from the independent-sort oracle.
    pub mismatches: u64,
    /// Batches stolen across all shards.
    pub steals: u64,
    /// Per-class latency comparison, in band order.
    pub classes: Vec<ClassLatency>,
}

/// Render a sharded-serving summary as a complete `SHARD_1` JSON
/// document.
#[must_use]
pub fn shard_json(s: &ShardSummary) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"{SHARD_SCHEMA}\",\n  \
         \"procs\": {}, \"shards\": {}, \"total_machines\": {}, \
         \"baseline_machines\": {},\n  \
         \"requests\": {}, \"shed\": {}, \"expired\": {}, \"failed\": {},\n  \
         \"unroutable\": {}, \"mismatches\": {}, \"steals\": {},\n  \
         \"classes\": [\n",
        s.procs,
        s.shards,
        s.total_machines,
        s.baseline_machines,
        s.requests,
        s.shed,
        s.expired,
        s.failed,
        s.unroutable,
        s.mismatches,
        s.steals,
    );
    for (i, c) in s.classes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"max_keys\": {}, \"machines\": {}, \
             \"requests\": {}, \"completed\": {}, \"batches\": {}, \
             \"steals\": {}, \"stolen_requests\": {}, \
             \"scale_ups\": {}, \"scale_downs\": {}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \
             \"baseline_p99_us\": {:.1}}}{}\n",
            c.class,
            c.max_keys,
            c.machines,
            c.requests,
            c.completed,
            c.batches,
            c.steals,
            c.stolen_requests,
            c.scale_ups,
            c.scale_downs,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            c.baseline_p99_us,
            if i + 1 == s.classes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema tag for the cross-shard bulk-sort benchmark's machine-readable
/// output. Like [`BENCH_SCHEMA`], the suffix is bumped when any field
/// changes meaning.
pub const BULK_SCHEMA: &str = "BULK_1";

/// One cross-shard bulk-sort run in the stable `BULK_1` schema: requests
/// larger than every band split across the shards by sampled splitters,
/// against a single pool with the same total machine count that admits
/// each request whole.
#[derive(Debug, Clone, PartialEq)]
pub struct BulkSummary {
    /// Ranks per machine (`P`) — same in every pool and the baseline.
    pub procs: usize,
    /// Size classes in the sharded topology.
    pub shards: usize,
    /// Machines across all shards (equals `baseline_machines`).
    pub total_machines: usize,
    /// Machines in the single-pool baseline.
    pub baseline_machines: usize,
    /// Requests offered to each service.
    pub requests: u64,
    /// Requests larger than every band (the split path).
    pub bulk_requests: u64,
    /// The widest band's admission limit (keys).
    pub widest_band: usize,
    /// The largest bulk request offered (keys).
    pub max_bulk_keys: usize,
    /// The configured partition-skew bound.
    pub skew_bound: f64,
    /// Largest observed partition skew across every bulk request.
    pub max_skew: f64,
    /// Mean partition skew across every bulk request.
    pub mean_skew: f64,
    /// Splitter-selector samples drawn across all bulk requests.
    pub splitter_samples: u64,
    /// Per-shard sub-requests scattered across all bulk requests.
    pub partitions: u64,
    /// Bulk requests answered with a fully merged sorted reply.
    pub bulk_completed: u64,
    /// Bulk requests failed by a shed, expired, or failed partition.
    pub bulk_failed: u64,
    /// Replies (bulk or not, either service) differing from the oracle.
    pub mismatches: u64,
    /// Whether two same-seed `ShardEngine` runs produced bit-for-bit
    /// identical event logs and replies.
    pub replay_identical: bool,
    /// Median bulk-request latency through the sharded split path, µs.
    pub bulk_p50_us: f64,
    /// 95th-percentile bulk latency, microseconds.
    pub bulk_p95_us: f64,
    /// 99th-percentile bulk latency, microseconds.
    pub bulk_p99_us: f64,
    /// 99th-percentile latency of the same bulk requests under the
    /// single-pool baseline at equal total machine count.
    pub baseline_bulk_p99_us: f64,
}

/// Render a bulk-sort summary as a complete `BULK_1` JSON document.
#[must_use]
pub fn bulk_json(s: &BulkSummary) -> String {
    format!(
        "{{\n  \"schema\": \"{BULK_SCHEMA}\",\n  \
         \"procs\": {}, \"shards\": {}, \"total_machines\": {}, \
         \"baseline_machines\": {},\n  \
         \"requests\": {}, \"bulk_requests\": {}, \"widest_band\": {}, \
         \"max_bulk_keys\": {},\n  \
         \"skew_bound\": {:.3}, \"max_skew\": {:.3}, \"mean_skew\": {:.3},\n  \
         \"splitter_samples\": {}, \"partitions\": {},\n  \
         \"bulk_completed\": {}, \"bulk_failed\": {}, \"mismatches\": {},\n  \
         \"replay_identical\": {},\n  \
         \"bulk_p50_us\": {:.1}, \"bulk_p95_us\": {:.1}, \"bulk_p99_us\": {:.1}, \
         \"baseline_bulk_p99_us\": {:.1}\n}}\n",
        s.procs,
        s.shards,
        s.total_machines,
        s.baseline_machines,
        s.requests,
        s.bulk_requests,
        s.widest_band,
        s.max_bulk_keys,
        s.skew_bound,
        s.max_skew,
        s.mean_skew,
        s.splitter_samples,
        s.partitions,
        s.bulk_completed,
        s.bulk_failed,
        s.mismatches,
        s.replay_identical,
        s.bulk_p50_us,
        s.bulk_p95_us,
        s.bulk_p99_us,
        s.baseline_bulk_p99_us,
    )
}

/// Schema tag for the TCP wire benchmark's machine-readable output.
/// Like [`BENCH_SCHEMA`], the suffix is bumped when any field changes
/// meaning.
pub const NET_SCHEMA: &str = "NET_1";

/// One request-size class's reply latencies over the wire, in the
/// `NET_1` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct NetClassLatency {
    /// Size-class name (`"tiny"` for n < P, `"small"`, `"medium"`,
    /// `"large"`).
    pub class: String,
    /// Largest request (keys) the class covers.
    pub max_keys: usize,
    /// Requests in this class during the measured window.
    pub requests: u64,
    /// Median send-to-reply latency over the socket, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

/// One loopback TCP load run in the stable `NET_1` schema: what crossed
/// the wire, what the service did with it, and the end-to-end latency
/// percentiles per request-size class.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSummary {
    /// Ranks per warm machine (`P`).
    pub procs: usize,
    /// Client connections driving the load.
    pub conns: usize,
    /// Requests offered during the measured (post-warm-up) window.
    pub requests: u64,
    /// Keys across those requests (before padding).
    pub total_keys: u64,
    /// Well-formed request frames the server accepted (warm-up included).
    pub frames: u64,
    /// `ok` replies written.
    pub replies_ok: u64,
    /// Rejection replies across all admission reasons.
    pub rejected: u64,
    /// `expired` replies.
    pub expired: u64,
    /// `machine_failed` replies.
    pub failed: u64,
    /// Malformed frames seen (must be zero under the clean load).
    pub frame_errors: u64,
    /// Bytes the server read off all sockets.
    pub bytes_read: u64,
    /// Bytes the server wrote to all sockets.
    pub bytes_written: u64,
    /// Completed requests per wall-clock second of the measured window.
    pub throughput_rps: f64,
    /// Median end-to-end latency across all classes, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency across all classes, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency across all classes, microseconds.
    pub p99_us: f64,
    /// Whether wire counters reconciled exactly against `ServiceStats`
    /// and the metrics registry.
    pub reconciled: bool,
    /// Replies that differed from the independent-sort oracle.
    pub mismatches: u64,
    /// Per-size-class latencies, in ascending band order.
    pub classes: Vec<NetClassLatency>,
}

/// Render a wire-benchmark summary as a complete `NET_1` JSON document.
#[must_use]
pub fn net_json(s: &NetSummary) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"{NET_SCHEMA}\",\n  \
         \"procs\": {}, \"conns\": {},\n  \
         \"requests\": {}, \"total_keys\": {}, \"frames\": {},\n  \
         \"replies_ok\": {}, \"rejected\": {}, \"expired\": {}, \"failed\": {}, \
         \"frame_errors\": {},\n  \
         \"bytes_read\": {}, \"bytes_written\": {},\n  \
         \"throughput_rps\": {:.1},\n  \
         \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1},\n  \
         \"reconciled\": {}, \"mismatches\": {},\n  \
         \"classes\": [\n",
        s.procs,
        s.conns,
        s.requests,
        s.total_keys,
        s.frames,
        s.replies_ok,
        s.rejected,
        s.expired,
        s.failed,
        s.frame_errors,
        s.bytes_read,
        s.bytes_written,
        s.throughput_rps,
        s.p50_us,
        s.p95_us,
        s.p99_us,
        s.reconciled,
        s.mismatches,
    );
    for (i, c) in s.classes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"class\": \"{}\", \"max_keys\": {}, \"requests\": {}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            c.class,
            c.max_keys,
            c.requests,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            if i + 1 == s.classes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema tag for the record-sorting benchmark's machine-readable
/// output. Like [`BENCH_SCHEMA`], the suffix is bumped when any field
/// changes meaning.
pub const RECORD_SCHEMA: &str = "RECORD_1";

/// One `(key width, payload stride)` cell of the record-sorting grid in
/// the stable `RECORD_1` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordCell {
    /// Key width in bytes (4, 8 or 16).
    pub width: u8,
    /// Payload bytes per key (0 means key-only records).
    pub stride: usize,
    /// Record requests sent in this cell.
    pub requests: u64,
    /// Keys across those requests.
    pub keys: u64,
    /// Payload bytes carried across those requests.
    pub payload_bytes: u64,
    /// Replies that differed from the stable-sort oracle (keys *or*
    /// payload bytes).
    pub mismatches: u64,
    /// Median send-to-reply latency over the socket, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
}

/// One record-sorting wire run in the stable `RECORD_1` schema: the
/// width × payload-stride grid, each cell checked reply-for-reply
/// against a *stable* sort oracle (duplicate keys keep submission
/// order in both directions).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSummary {
    /// Ranks per warm machine (`P`).
    pub procs: usize,
    /// Record requests across all cells.
    pub requests: u64,
    /// Well-formed request frames the server accepted.
    pub frames: u64,
    /// `ok_record` replies written.
    pub replies_record: u64,
    /// Replies that differed from the stable oracle, across all cells.
    pub mismatches: u64,
    /// Requests that contained at least one duplicated key — the ones
    /// whose payload order actually proves stability.
    pub duplicate_key_requests: u64,
    /// Whether wire counters reconciled exactly against `ServiceStats`
    /// and the metrics registry (per-width counters included).
    pub reconciled: bool,
    /// Per-cell results, in `(width, stride)` grid order.
    pub cells: Vec<RecordCell>,
}

/// Render a record-sorting summary as a complete `RECORD_1` JSON
/// document.
#[must_use]
pub fn record_json(s: &RecordSummary) -> String {
    let mut out = format!(
        "{{\n  \"schema\": \"{RECORD_SCHEMA}\",\n  \
         \"procs\": {}, \"requests\": {}, \"frames\": {},\n  \
         \"replies_record\": {}, \"mismatches\": {}, \
         \"duplicate_key_requests\": {},\n  \
         \"reconciled\": {},\n  \
         \"cells\": [\n",
        s.procs,
        s.requests,
        s.frames,
        s.replies_record,
        s.mismatches,
        s.duplicate_key_requests,
        s.reconciled,
    );
    for (i, c) in s.cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"width\": {}, \"stride\": {}, \"requests\": {}, \
             \"keys\": {}, \"payload_bytes\": {}, \"mismatches\": {}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}{}\n",
            c.width,
            c.stride,
            c.requests,
            c.keys,
            c.payload_bytes,
            c.mismatches,
            c.p50_us,
            c.p95_us,
            c.p99_us,
            if i + 1 == s.cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema tag for the local-kernel benchmark's machine-readable output.
/// Like [`BENCH_SCHEMA`], the suffix is bumped when any field changes
/// meaning.
pub const KERNEL_SCHEMA: &str = "KERNEL_1";

/// One cell of the local-kernel matrix in the stable `KERNEL_1` schema:
/// a kernel timed on one `(key width, size class)` cell, relative to the
/// seed kernel for the same cell.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Key width in bits (16, 32, 64, 128).
    pub width_bits: u32,
    /// Size class: the timed length is `1 << lg_n`.
    pub lg_n: u32,
    /// Operation: `sort` (random input) or `merge` (bitonic input).
    pub op: String,
    /// Kernel name (`radix`, `bitonic_net`, `circular_merge`,
    /// `network_merge`) or `dispatch` for the selected-kernel path.
    pub kernel: String,
    /// Nanoseconds per key, min-of-samples.
    pub ns_per_key: f64,
    /// Ratio against the seed kernel on this cell (`radix` for sorts,
    /// `circular_merge` for merges); < 1 means faster than the seed. For
    /// `dispatch` rows this is the best same-sample-round ratio, which
    /// cancels common-mode host noise.
    pub vs_seed: f64,
    /// Whether the dispatch table picks this kernel for this cell.
    pub selected: bool,
    /// Whether the kernel's output matched the `slice::sort` oracle.
    pub oracle_ok: bool,
}

impl KernelRecord {
    fn to_json(&self) -> String {
        format!(
            "{{\"width_bits\": {}, \"lg_n\": {}, \"op\": \"{}\", \
             \"kernel\": \"{}\", \"ns_per_key\": {:.2}, \"vs_seed\": {:.3}, \
             \"selected\": {}, \"oracle_ok\": {}}}",
            self.width_bits,
            self.lg_n,
            self.op,
            self.kernel,
            self.ns_per_key,
            self.vs_seed,
            self.selected,
            self.oracle_ok
        )
    }
}

/// Render kernel records as a complete `KERNEL_1` JSON document:
/// `{"schema": "KERNEL_1", "records": [...]}`.
#[must_use]
pub fn kernel_json(records: &[KernelRecord]) -> String {
    let mut out = format!("{{\n  \"schema\": \"{KERNEL_SCHEMA}\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&r.to_json());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Schema tag for metrics-registry dumps (`--metrics-out`). Like
/// [`BENCH_SCHEMA`], the suffix is bumped when any field changes meaning.
pub const METRICS_SCHEMA: &str = "METRICS_1";

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{k}\": \"{v}\""))
        .collect();
    format!("{{{}}}", pairs.join(", "))
}

/// Render a metrics [`obs::Snapshot`] as a complete `METRICS_1` JSON
/// document: every counter, gauge, and histogram with its labels.
/// Histogram buckets are `[upper_bound, cumulative_count]` pairs
/// (non-empty buckets only; the last cumulative count equals `count`).
#[must_use]
pub fn metrics_json(snap: &obs::Snapshot) -> String {
    let mut out = format!("{{\n  \"schema\": \"{METRICS_SCHEMA}\",\n  \"counters\": [\n");
    for (i, c) in snap.counters.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}{}\n",
            c.name,
            json_labels(&c.labels),
            c.value,
            if i + 1 == snap.counters.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n  \"gauges\": [\n");
    for (i, g) in snap.gauges.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}{}\n",
            g.name,
            json_labels(&g.labels),
            // JSON has no NaN/Inf; a gauge should never hold one, but a
            // dump must stay parseable if it does.
            if g.value.is_finite() {
                format!("{:.6}", g.value)
            } else {
                "null".to_string()
            },
            if i + 1 == snap.gauges.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"histograms\": [\n");
    for (i, h) in snap.histograms.iter().enumerate() {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(upper, cum)| format!("[{upper}, {cum}]"))
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"labels\": {}, \"count\": {}, \"sum\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [{}]}}{}\n",
            h.name,
            json_labels(&h.labels),
            h.count,
            h.sum,
            h.p50,
            h.p95,
            h.p99,
            buckets.join(", "),
            if i + 1 == snap.histograms.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Format a float with 2 decimals (the thesis's table precision).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a duration as µs per key.
#[must_use]
pub fn us_per_key(d: std::time::Duration, keys: usize) -> String {
    f2(d.as_secs_f64() * 1e6 / keys as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_pipes() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row(vec!["1", "10.00"]);
        t.row(vec!["1024", "0.52"]);
        let s = t.render();
        assert!(s.contains("|    n | value |"), "got:\n{s}");
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines same width"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.519), "0.52");
        assert_eq!(
            us_per_key(std::time::Duration::from_micros(5200), 10_000),
            "0.52"
        );
    }

    #[test]
    fn serve_json_matches_schema() {
        let json = serve_json(&ServeSummary {
            procs: 4,
            machines: 1,
            requests: 200,
            total_keys: 40_000,
            batches: 37,
            shed: 0,
            expired: 0,
            failed: 0,
            throughput_rps: 5123.4,
            throughput_keys: 1.02e6,
            p50_us: 812.5,
            p95_us: 2400.0,
            p99_us: 3100.9,
            plan_hit_rate: 0.9876,
            steady_plan_misses: 0,
        });
        assert!(json.contains("\"schema\": \"SERVE_1\""));
        assert!(json.contains("\"p99_us\": 3100.9"));
        assert!(json.contains("\"plan_hit_rate\": 0.9876"));
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn shard_json_matches_schema() {
        let class = |name: &str, max_keys: usize, p99: f64, base: f64| ClassLatency {
            class: name.into(),
            max_keys,
            machines: 1,
            requests: 80,
            completed: 80,
            batches: 11,
            steals: 1,
            stolen_requests: 2,
            scale_ups: 0,
            scale_downs: 0,
            p50_us: 400.0,
            p95_us: 900.0,
            p99_us: p99,
            baseline_p99_us: base,
        };
        let json = shard_json(&ShardSummary {
            procs: 4,
            shards: 2,
            total_machines: 2,
            baseline_machines: 2,
            requests: 100,
            shed: 0,
            expired: 0,
            failed: 0,
            unroutable: 0,
            mismatches: 0,
            steals: 1,
            classes: vec![
                class("small", 8192, 1200.5, 4800.0),
                class("bulk", 16384, 9000.0, 8800.0),
            ],
        });
        assert!(json.contains("\"schema\": \"SHARD_1\""));
        assert!(json.contains("\"class\": \"small\""));
        assert!(json.contains("\"p99_us\": 1200.5"));
        assert!(json.contains("\"baseline_p99_us\": 4800.0"));
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(json.matches("\"class\":").count(), 2);
    }

    #[test]
    fn bulk_json_matches_schema() {
        let json = bulk_json(&BulkSummary {
            procs: 4,
            shards: 2,
            total_machines: 3,
            baseline_machines: 3,
            requests: 60,
            bulk_requests: 20,
            widest_band: 16384,
            max_bulk_keys: 39000,
            skew_bound: 1.5,
            max_skew: 1.18,
            mean_skew: 1.05,
            splitter_samples: 2560,
            partitions: 60,
            bulk_completed: 20,
            bulk_failed: 0,
            mismatches: 0,
            replay_identical: true,
            bulk_p50_us: 4000.0,
            bulk_p95_us: 9000.0,
            bulk_p99_us: 11000.5,
            baseline_bulk_p99_us: 14000.0,
        });
        assert!(json.contains("\"schema\": \"BULK_1\""));
        assert!(json.contains("\"skew_bound\": 1.500"));
        assert!(json.contains("\"max_skew\": 1.180"));
        assert!(json.contains("\"replay_identical\": true"));
        assert!(json.contains("\"bulk_p99_us\": 11000.5"));
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn net_json_matches_schema() {
        let class = |name: &str, max_keys: usize| NetClassLatency {
            class: name.into(),
            max_keys,
            requests: 50,
            p50_us: 300.0,
            p95_us: 800.0,
            p99_us: 1500.5,
        };
        let json = net_json(&NetSummary {
            procs: 4,
            conns: 8,
            requests: 200,
            total_keys: 40_000,
            frames: 212,
            replies_ok: 212,
            rejected: 0,
            expired: 0,
            failed: 0,
            frame_errors: 0,
            bytes_read: 180_000,
            bytes_written: 181_000,
            throughput_rps: 2200.0,
            p50_us: 400.0,
            p95_us: 1000.0,
            p99_us: 2100.7,
            reconciled: true,
            mismatches: 0,
            classes: vec![class("tiny", 3), class("large", 16384)],
        });
        assert!(json.contains("\"schema\": \"NET_1\""));
        assert!(json.contains("\"conns\": 8"));
        assert!(json.contains("\"class\": \"tiny\""));
        assert!(json.contains("\"p99_us\": 1500.5"));
        assert!(json.contains("\"reconciled\": true"));
        assert!(!json.contains("},\n  ]"), "no trailing comma:\n{json}");
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(json.matches("\"class\":").count(), 2);
    }

    #[test]
    fn kernel_json_matches_schema() {
        let cell = |kernel: &str, vs: f64, selected: bool| KernelRecord {
            width_bits: 64,
            lg_n: 8,
            op: "sort".into(),
            kernel: kernel.into(),
            ns_per_key: 3.21,
            vs_seed: vs,
            selected,
            oracle_ok: true,
        };
        let json = kernel_json(&[cell("radix", 1.0, false), cell("bitonic_net", 0.62, true)]);
        assert!(json.contains("\"schema\": \"KERNEL_1\""));
        assert!(json.contains("\"kernel\": \"bitonic_net\""));
        assert!(json.contains("\"vs_seed\": 0.620"));
        assert!(json.contains("\"selected\": true"));
        assert!(json.contains("\"oracle_ok\": true"));
        assert!(!json.contains("},\n  ]"), "no trailing comma:\n{json}");
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn metrics_json_matches_schema() {
        let reg = obs::Registry::new();
        let c = reg.counter("bitonic_requests_total", "requests", &[("class", "all")]);
        c.add(7);
        let g = reg.gauge("bitonic_queue_depth", "depth", &[("class", "all")]);
        g.set(3.0);
        let h = reg.histogram("bitonic_latency_us", "latency", &[("class", "all")]);
        h.observe(100);
        h.observe(200);
        let json = metrics_json(&reg.snapshot());
        assert!(json.contains("\"schema\": \"METRICS_1\""));
        assert!(json.contains("\"name\": \"bitonic_requests_total\""));
        assert!(json.contains("\"labels\": {\"class\": \"all\"}"));
        assert!(json.contains("\"value\": 7"));
        assert!(json.contains("\"count\": 2, \"sum\": 300"));
        assert!(json.contains("\"buckets\": [["));
        assert!(!json.contains("},\n  ]"), "no trailing comma:\n{json}");
        let mut depth = 0i64;
        for ch in json.chars() {
            match ch {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn bench_json_matches_schema() {
        let records = vec![
            BenchRecord {
                name: "remap_bench/long/flat".into(),
                keys: 1024,
                procs: 16,
                mode: "long".into(),
                ns_per_key: 12.345,
                counters: Some(BenchCounters {
                    remaps: 3,
                    elements_sent: 960,
                    messages_sent: 45,
                }),
            },
            BenchRecord {
                name: "trace/smart".into(),
                keys: 512,
                procs: 8,
                mode: "long".into(),
                ns_per_key: 99.9,
                counters: None,
            },
        ];
        let json = bench_json(&records);
        assert!(json.contains("\"schema\": \"BENCH_1\""));
        assert!(json.contains("\"name\": \"remap_bench/long/flat\""));
        assert!(json.contains("\"ns_per_key\": 12.35"));
        assert!(json.contains("\"counters\": {\"remaps\": 3"));
        assert!(!json.contains("},\n  ]"), "no trailing comma:\n{json}");
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }
}
