//! Tables 5.3/5.4 and Figures 5.5/5.6: short vs long messages and the
//! pack/transfer/unpack breakdown, 16 processors.

use super::{metrics_of, Experiment, Scale};
use crate::paper;
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, run_parallel_sort_traced, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::cost::{loggp_total_us, logp_total_us};
use logp::predict::KEY_BYTES;
use logp::LogGpParams;
use obs::{critical_phase_totals, TraceConfig, TracePhase};
use spmd::runtime::critical_path_stats;
use spmd::{traces_of, MessageMode};

const P: usize = 16;

/// Table 5.3 / Figure 5.5 — communication time per key, short vs long
/// messages. The model column evaluates the *measured* counters of a live
/// run under the Meiko LogP/LogGP parameters; the live column is the
/// thread-machine wall clock (reported for completeness — channel
/// overheads, not network ones).
#[must_use]
pub fn table5_3(scale: Scale) -> Experiment {
    let params = LogGpParams::meiko_cs2(P);
    let mut t = Table::new(vec![
        "keys/proc (K, paper)",
        "short model",
        "short paper",
        "long model",
        "long paper",
        "live short wall",
        "live long wall",
    ]);
    for (i, &(kk, short_paper, long_paper)) in paper::TABLE_5_3.iter().enumerate() {
        let _ = i;
        let n_model = kk * 1024;
        // Live runs: short messages are expensive even on channels, so
        // shrink harder.
        let n_live = (n_model / (scale.shrink * 4)).max(64);
        let keys = uniform_keys(n_live * P, 33);

        let run_long = run_parallel_sort(
            &keys,
            P,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let run_short = run_parallel_sort(
            &keys,
            P,
            MessageMode::Short,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );

        // Model: scale the measured per-key counters up to paper size —
        // V/n and R are size-independent for fixed P (R only moves when
        // lg n changes, which barely affects the per-key cost).
        let m_long = metrics_of(&run_long.ranks[0].stats);
        let m_short = metrics_of(&run_short.ranks[0].stats);
        let scale_up = n_model as f64 / n_live as f64;
        let scaled = |m: logp::CommMetrics, msgs_like_volume: bool| logp::CommMetrics {
            remaps: m.remaps,
            volume: (m.volume as f64 * scale_up) as u64,
            messages: if msgs_like_volume {
                (m.volume as f64 * scale_up) as u64
            } else {
                m.messages
            },
        };
        let short_model = logp_total_us(&params, scaled(m_short, true)) / n_model as f64;
        // The long-message version of Section 5.4 does *not* fuse packing
        // and unpacking into the computation, so its communication time
        // includes both (≈80% of the phase, Table 5.4).
        let model = logp::predict::CostModel::meiko_cs2();
        let long_model = loggp_total_us(&params, scaled(m_long, false), KEY_BYTES) / n_model as f64
            + m_long.remaps as f64 * (model.pack_us + model.unpack_us);

        let crit_s = critical_path_stats(&run_short.ranks);
        let crit_l = critical_path_stats(&run_long.ranks);
        t.row(vec![
            kk.to_string(),
            f2(short_model),
            f2(short_paper),
            f2(long_model),
            f2(long_paper),
            f2(crit_s.communication_time().as_secs_f64() * 1e6 / n_live as f64),
            f2(crit_l.communication_time().as_secs_f64() * 1e6 / n_live as f64),
        ]);
    }
    Experiment {
        id: "table5_3",
        title: "Table 5.3 / Fig 5.5: communication µs/key, short vs long messages, P=16",
        body: t.render(),
    }
}

/// Table 5.4 / Figure 5.6 — pack/transfer/unpack split of the long-message
/// communication phase.
#[must_use]
pub fn table5_4(scale: Scale) -> Experiment {
    let params = LogGpParams::meiko_cs2(P);
    let model = logp::predict::CostModel::meiko_cs2();
    let mut t = Table::new(vec![
        "keys/proc (K, paper)",
        "pack model",
        "pack paper",
        "transfer model",
        "transfer paper",
        "unpack model",
        "unpack paper",
        "live pack %",
        "live transfer %",
        "live unpack %",
    ]);
    for &(kk, pack_paper, transfer_paper, unpack_paper) in &paper::TABLE_5_4 {
        let n_model = kk * 1024;
        let pred = logp::predict::predict(
            logp::predict::StrategyKind::Smart,
            n_model,
            P,
            &params,
            &model,
            logp::predict::Messages::Long { fused: false },
        );
        let n_live = (n_model / scale.shrink).max(64);
        let keys = uniform_keys(n_live * P, 44);
        let run = run_parallel_sort_traced(
            &keys,
            P,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
            TraceConfig::on(),
        );
        // Live split from the span timelines (per-phase critical path over
        // ranks), the same aggregation `experiments trace` reports.
        let crit = critical_phase_totals(&traces_of(&run.ranks));
        let secs = |p: TracePhase| crit.ns[p.index()] as f64 / 1e9;
        let (pk, tr, up) = (
            secs(TracePhase::Pack),
            secs(TracePhase::Transfer),
            secs(TracePhase::Unpack),
        );
        let tot = (pk + tr + up).max(f64::EPSILON);
        t.row(vec![
            kk.to_string(),
            f2(pred.pack_us),
            f2(pack_paper),
            f2(pred.transfer_us),
            f2(transfer_paper),
            f2(pred.unpack_us),
            f2(unpack_paper),
            f2(100.0 * pk / tot),
            f2(100.0 * tr / tot),
            f2(100.0 * up / tot),
        ]);
    }
    Experiment {
        id: "table5_4",
        title: "Table 5.4 / Fig 5.6: long-message communication breakdown, P=16",
        body: t.render(),
    }
}
