//! `experiments bulk` — cross-shard bulk sorts against a single pool.
//!
//! The capacity problem this measures: a banded router refuses any
//! request larger than its widest band, so the biggest sorts a sharded
//! deployment can take is fixed by one shard's admission limit no matter
//! how many machines the fleet holds. The bulk split path lifts that
//! ceiling: a one-round sampled splitter selector partitions the keys
//! into per-shard sub-requests, every shard sorts its partition in-band,
//! and a k-way merge reassembles the ordered reply.
//!
//! The benchmark offers the *same* deterministic load — requests larger
//! than every band interleaved with ordinary in-band sorts — to two
//! services with **equal total machine count**: a bulk-enabled sharded
//! service that must split every oversized request, and a single pool
//! with all the machines whose admission limits are raised so it takes
//! each request whole. Every reply from both is checked against the
//! independent sort oracle.
//!
//! Three properties are gated by `--check`, not just reported:
//!
//! 1. **Correctness** — zero sheds, expiries, failed batches, failed
//!    bulk requests, and oracle mismatches from either service, and the
//!    metrics registry's bulk counters reconcile exactly with the
//!    service's own.
//! 2. **Balance** — the largest observed partition skew (bucket size
//!    over the shard's capacity-fair share) stays within the configured
//!    bound, request by request.
//! 3. **Determinism** — two [`ShardEngine`] virtual-time runs of the
//!    same seed produce bit-for-bit identical event logs and replies
//!    (the scatter/merge twin replays exactly).
//!
//! The report ends with a machine-readable `BULK_1` block
//! ([`crate::report::bulk_json`]); `bench8` wraps the same run into the
//! committed `BENCH_8.json` artifact.

use super::Scale;
use crate::report::{bulk_json, f2, metrics_json, BulkSummary, Table};
use crate::workloads::uniform_keys;
use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use sort_service::{
    split, EngineEvent, Rejection, ServiceConfig, ShardEngine, ShardedConfig, ShardedService,
    SortRequest, SortService, Ticket,
};
use std::time::{Duration, Instant};

/// Default machine size for the subcommand (the acceptance configuration).
pub const DEFAULT_PROCS: usize = 4;

/// Default shard count: the canonical small/bulk split.
pub const DEFAULT_SHARDS: usize = 2;

/// Default offered load for the measured window (each request is offered
/// twice: once to the baseline, once to the bulk-enabled service).
pub const DEFAULT_REQUESTS: usize = 60;

/// Default master seed (fixed so CI runs are replayable).
pub const DEFAULT_SEED: u64 = 220_404_599;

/// Requests offered at a given scale.
#[must_use]
pub fn default_requests(scale: Scale) -> usize {
    if scale.shrink == 1 {
        DEFAULT_REQUESTS * 4
    } else {
        DEFAULT_REQUESTS
    }
}

/// One finished bulk-vs-baseline run.
#[derive(Debug, Clone)]
pub struct BulkRun {
    /// Human-readable report (tables + the `BULK_1` block).
    pub report: String,
    /// The bare `BULK_1` JSON document, for composition into `BENCH_8`.
    pub json: String,
    /// Whether every acceptance check held: correctness, the skew bound,
    /// and bit-for-bit engine replay.
    pub passed: bool,
    /// The sharded service's final registry as a `METRICS_1` document.
    pub metrics_json: Option<String>,
    /// The same registry in Prometheus text exposition format.
    pub prometheus: Option<String>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The deterministic load: `(keys, direction, inter-arrival gap)`. Every
/// third request is a bulk sort strictly larger than the widest band
/// (between 1.2× and ~2.4× its limit, so splitting is mandatory and the
/// oversized-bucket chunking path gets exercised); the rest are ordinary
/// in-band sorts, every fourth duplicate-heavy so splitter ties between
/// equal keys are covered.
fn workload(
    requests: usize,
    procs: usize,
    widest: usize,
    seed: u64,
) -> Vec<(Vec<u32>, Direction, Duration)> {
    let small_sizes = [1, 2, procs, 33, 100, 256, 1024];
    let mut rng = seed | 1;
    (0..requests)
        .map(|i| {
            let n = if i % 3 == 2 {
                widest + widest / 5 + (xorshift(&mut rng) as usize) % (widest + widest / 5)
            } else {
                small_sizes[(xorshift(&mut rng) % small_sizes.len() as u64) as usize]
            };
            let mut keys = uniform_keys(n, seed.wrapping_add(i as u64));
            if i % 4 == 0 {
                for k in &mut keys {
                    *k %= 1024;
                }
            }
            let dir = if xorshift(&mut rng) & 1 == 0 {
                Direction::Ascending
            } else {
                Direction::Descending
            };
            let gap = Duration::from_micros(40 + xorshift(&mut rng) % 160);
            (keys, dir, gap)
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

/// What one open-loop pass over a service produced.
struct Drive {
    /// Per completed bulk request: end-to-end latency in µs.
    bulk_latencies: Vec<f64>,
    /// Human-readable failures: sheds, expiries, oracle mismatches.
    failures: Vec<String>,
    /// Oracle mismatches among the failures.
    mismatches: u64,
}

/// Offer `load` open-loop to `submit`, checking every reply against the
/// oracle and timing the bulk (over-band) requests.
fn drive(
    tag: &str,
    load: &[(Vec<u32>, Direction, Duration)],
    widest: usize,
    submit: &dyn Fn(SortRequest) -> Result<Ticket, Rejection>,
) -> Drive {
    let mut waiters = Vec::with_capacity(load.len());
    let mut failures = Vec::new();
    for (i, (keys, dir, gap)) in load.iter().enumerate() {
        std::thread::sleep(*gap);
        let bulk = keys.len() > widest;
        let expected = sorted_independently(keys, *dir);
        let submitted = Instant::now();
        match submit(SortRequest::new(keys.clone(), *dir)) {
            Ok(ticket) => waiters.push((
                bulk,
                std::thread::spawn(move || {
                    let reply = ticket.wait();
                    let latency = submitted.elapsed();
                    let verdict = match reply {
                        Ok(out) if out == expected => Ok(()),
                        Ok(_) => Err(format!("request {i}: reply differs from the oracle")),
                        Err(e) => Err(format!("request {i}: {e}")),
                    };
                    (latency, verdict)
                }),
            )),
            Err(r) => failures.push(format!("{tag}: request {i} shed: {r}")),
        }
    }
    let mut bulk_latencies = Vec::new();
    let mut mismatches = 0u64;
    for (bulk, w) in waiters {
        let (latency, verdict) = w.join().expect("waiter thread");
        if bulk {
            bulk_latencies.push(latency.as_secs_f64() * 1e6);
        }
        if let Err(e) = verdict {
            if e.contains("differs from the oracle") {
                mismatches += 1;
            }
            failures.push(format!("{tag}: {e}"));
        }
    }
    Drive {
        bulk_latencies,
        failures,
        mismatches,
    }
}

/// Replay the first few requests of `load` through two fresh
/// [`ShardEngine`] twins at identical virtual times and demand
/// bit-for-bit identical event logs and oracle-correct merged replies.
/// Returns human-readable failures (empty on success).
/// One engine-twin run: the full event log plus each request's reply
/// (index, sorted keys or stringified error).
type TwinRun = (Vec<EngineEvent>, Vec<(usize, Result<Vec<u32>, String>)>);

fn replay_twice(cfg: &ShardedConfig, load: &[(Vec<u32>, Direction, Duration)]) -> Vec<String> {
    let slice: Vec<&(Vec<u32>, Direction, Duration)> = load.iter().take(12).collect();
    let mut failures = Vec::new();
    let run = |(): ()| -> TwinRun {
        let mut engine = ShardEngine::new(cfg);
        let mut ids = Vec::new();
        for (i, (keys, dir, _)) in slice.iter().enumerate() {
            match engine.submit(SortRequest::new(keys.clone(), *dir)) {
                Ok(id) => ids.push((i, id)),
                Err(r) => failures_of_submit(i, &r),
            }
            engine.advance(Duration::from_millis(3));
            engine.run_until_idle();
        }
        let replies = ids
            .into_iter()
            .map(|(i, id)| {
                let r = engine
                    .reply(id)
                    .cloned()
                    .unwrap_or(Err(sort_service::SortError::ServiceClosed))
                    .map_err(|e| e.to_string());
                (i, r)
            })
            .collect();
        (engine.events().to_vec(), replies)
    };
    let (events_a, replies_a) = run(());
    let (events_b, replies_b) = run(());
    if events_a != events_b {
        failures.push(format!(
            "engine replay: event logs differ ({} vs {} events)",
            events_a.len(),
            events_b.len()
        ));
    }
    if replies_a != replies_b {
        failures.push("engine replay: replies differ between same-seed runs".into());
    }
    let mut merges = 0usize;
    for ev in &events_a {
        if matches!(ev, EngineEvent::Merged { .. }) {
            merges += 1;
        }
    }
    if merges == 0 {
        failures.push("engine replay: no bulk request reached the merge phase".into());
    }
    for (i, reply) in &replies_a {
        let (keys, dir, _) = slice[*i];
        match reply {
            Ok(out) if *out == sorted_independently(keys, *dir) => {}
            Ok(_) => failures.push(format!(
                "engine replay: request {i} differs from the oracle"
            )),
            Err(e) => failures.push(format!("engine replay: request {i} failed: {e}")),
        }
    }
    failures
}

/// The engine twin admits everything the load offers; a refusal is a
/// configuration bug worth a loud panic, not a tallied failure.
fn failures_of_submit(i: usize, r: &Rejection) {
    panic!("engine replay: request {i} refused: {r}");
}

/// Run the comparison: a bulk-enabled `shards`-way banded service
/// against a single pool holding the same total machine count with its
/// admission limits raised to take each over-band request whole, under
/// the same `requests`-request load. Deterministic in `seed` up to host
/// timing.
///
/// # Panics
/// Panics if `procs` is not a power of two (machine requirement).
#[must_use]
pub fn run_bulk(procs: usize, shards: usize, requests: usize, seed: u64) -> BulkRun {
    assert!(procs.is_power_of_two(), "machine sizes are powers of two");
    let sharded_cfg = ShardedConfig::banded_bulk(procs, shards);
    let total_machines = sharded_cfg.total_machines();
    let bands: Vec<usize> = sharded_cfg
        .classes
        .iter()
        .map(|c| c.pool.max_request_keys)
        .collect();
    let widest = *bands.last().expect("at least one class");
    let load = workload(requests, procs, widest, seed);
    let max_bulk_keys = load.iter().map(|(k, _, _)| k.len()).max().unwrap_or(0);
    let bulk_requests = load.iter().filter(|(k, _, _)| k.len() > widest).count() as u64;

    // The split plan is a pure function of (keys, bands, policy) — the
    // skew the service will see is exactly what we can measure here.
    let mut max_skew = 0.0f64;
    let mut skew_sum = 0.0f64;
    let mut skew_count = 0u64;
    let mut partitions = 0u64;
    let mut splitter_samples = 0u64;
    for (keys, _, _) in load.iter().filter(|(k, _, _)| k.len() > widest) {
        let plan = split::plan(keys, &bands, &sharded_cfg.bulk);
        max_skew = max_skew.max(plan.max_skew());
        for s in &plan.skew {
            skew_sum += s;
            skew_count += 1;
        }
        partitions += plan.parts.len() as u64;
        splitter_samples += plan.samples as u64;
    }
    let mean_skew = if skew_count > 0 {
        skew_sum / skew_count as f64
    } else {
        0.0
    };

    // Baseline first: a single pool with every machine, admission opened
    // wide enough to take the largest bulk request whole.
    let mut baseline_cfg = ServiceConfig::new(procs);
    baseline_cfg.machines = total_machines;
    baseline_cfg.max_request_keys = baseline_cfg.max_request_keys.max(max_bulk_keys);
    baseline_cfg.max_batch_keys = baseline_cfg.max_batch_keys.max(max_bulk_keys);
    baseline_cfg.max_queue_keys = baseline_cfg.max_queue_keys.max(8 * max_bulk_keys);
    let baseline = SortService::start(baseline_cfg);
    let base_drive = drive("baseline", &load, widest, &|r| baseline.submit(r));
    let base_report = baseline.shutdown();

    // Then the bulk-enabled sharded service at equal total machine count.
    let sharded = ShardedService::start(sharded_cfg.clone());
    let bulk_drive = drive("bulk", &load, widest, &|r| sharded.submit(r));
    let shard_metrics = sharded.metrics();
    let shard_report = sharded.shutdown();
    let stats = &shard_report.stats;

    let mut failures = Vec::new();
    failures.extend(base_drive.failures.iter().cloned());
    failures.extend(bulk_drive.failures.iter().cloned());
    if stats.expired() > 0 {
        failures.push(format!("bulk: {} missed deadlines", stats.expired()));
    }
    if stats.failed() > 0 {
        failures.push(format!("bulk: {} lost to failed batches", stats.failed()));
    }
    if stats.unroutable > 0 {
        failures.push(format!(
            "bulk: {} unroutable requests despite the split path",
            stats.unroutable
        ));
    }
    if stats.bulk_failed > 0 {
        failures.push(format!("bulk: {} failed bulk requests", stats.bulk_failed));
    }
    if stats.bulk_submitted != bulk_requests {
        failures.push(format!(
            "bulk: {} requests took the split path, expected {bulk_requests}",
            stats.bulk_submitted
        ));
    }
    if base_report.stats.expired > 0 {
        failures.push(format!(
            "baseline: {} missed deadlines",
            base_report.stats.expired
        ));
    }
    if max_skew > sharded_cfg.bulk.skew_bound {
        failures.push(format!(
            "skew: max partition skew {max_skew:.3} exceeds the bound {:.3}",
            sharded_cfg.bulk.skew_bound
        ));
    }

    // Reconcile the registry's bulk series against the service's own
    // counters: same events, independent tallies, exact agreement.
    let mut metrics_doc = None;
    let mut prometheus_doc = None;
    if let Some(m) = shard_metrics {
        let snap = m.snapshot();
        let pairs: [(&str, &str, u64); 4] = [
            (
                "submitted",
                "bitonic_bulk_requests_total",
                stats.bulk_submitted,
            ),
            (
                "completed",
                "bitonic_bulk_completed_total",
                stats.bulk_completed,
            ),
            ("failed", "bitonic_bulk_failed_total", stats.bulk_failed),
            ("partitions", "bitonic_bulk_partitions_total", partitions),
        ];
        for (label, name, want) in pairs {
            let got = snap.counter_total(name);
            if got != want {
                failures.push(format!(
                    "metrics reconcile: bulk {label} registry={got} stats={want}"
                ));
            }
        }
        metrics_doc = Some(metrics_json(&snap));
        prometheus_doc = Some(obs::encode_prometheus(&snap));
    }

    // The determinism leg: two virtual-time twins, one event log.
    failures.extend(replay_twice(&sharded_cfg, &load));
    let replay_identical = !failures.iter().any(|f| f.starts_with("engine replay"));

    let mut bulk_us = bulk_drive.bulk_latencies.clone();
    bulk_us.sort_by(f64::total_cmp);
    let mut base_us = base_drive.bulk_latencies.clone();
    base_us.sort_by(f64::total_cmp);

    let summary = BulkSummary {
        procs,
        shards,
        total_machines,
        baseline_machines: total_machines,
        requests: requests as u64,
        bulk_requests,
        widest_band: widest,
        max_bulk_keys,
        skew_bound: sharded_cfg.bulk.skew_bound,
        max_skew,
        mean_skew,
        splitter_samples,
        partitions,
        bulk_completed: stats.bulk_completed,
        bulk_failed: stats.bulk_failed,
        mismatches: bulk_drive.mismatches + base_drive.mismatches,
        replay_identical,
        bulk_p50_us: percentile(&bulk_us, 50.0),
        bulk_p95_us: percentile(&bulk_us, 95.0),
        bulk_p99_us: percentile(&bulk_us, 99.0),
        baseline_bulk_p99_us: percentile(&base_us, 99.0),
    };

    let mut t = Table::new(vec!["measure", "value"]);
    t.row(vec![
        "widest band / largest request".to_string(),
        format!("{widest} / {max_bulk_keys} keys"),
    ]);
    t.row(vec![
        "bulk requests (split path)".to_string(),
        format!(
            "{} submitted, {} completed, {} failed",
            stats.bulk_submitted, stats.bulk_completed, stats.bulk_failed
        ),
    ]);
    t.row(vec![
        "partitions / splitter samples".to_string(),
        format!("{partitions} / {splitter_samples}"),
    ]);
    t.row(vec![
        "partition skew (max / mean / bound)".to_string(),
        format!(
            "{} / {} / {}",
            f2(max_skew),
            f2(mean_skew),
            f2(sharded_cfg.bulk.skew_bound)
        ),
    ]);
    t.row(vec![
        "bulk p50/p95/p99 (us)".to_string(),
        format!(
            "{} / {} / {}",
            f2(summary.bulk_p50_us),
            f2(summary.bulk_p95_us),
            f2(summary.bulk_p99_us)
        ),
    ]);
    t.row(vec![
        "single-pool bulk p99 (us)".to_string(),
        f2(summary.baseline_bulk_p99_us),
    ]);
    t.row(vec![
        "engine replay".to_string(),
        if replay_identical {
            "bit-for-bit identical".to_string()
        } else {
            "DIVERGED".to_string()
        },
    ]);

    let json = bulk_json(&summary);
    let passed = failures.is_empty();
    let verdict = if passed {
        format!(
            "All {bulk_requests} over-band requests (largest {max_bulk_keys} keys \
             against a {widest}-key widest band) completed oracle-identical through \
             splitter scatter and k-way merge at equal total machine count \
             ({total_machines}); max partition skew {} stayed within the {} bound; \
             two same-seed engine twins replayed bit for bit.",
            f2(max_skew),
            f2(sharded_cfg.bulk.skew_bound),
        )
    } else {
        let mut v = String::from("FAILED:\n");
        for f in &failures {
            v.push_str("  - ");
            v.push_str(f);
            v.push('\n');
        }
        v
    };
    let report = format!("{}\n{verdict}\n\n```json\n{json}```\n", t.render());
    BulkRun {
        report,
        json,
        passed,
        metrics_json: metrics_doc,
        prometheus: prometheus_doc,
    }
}

/// Run the bulk-sort benchmark and render it as an experiment.
#[must_use]
pub fn bulk(scale: Scale) -> super::Experiment {
    let run = run_bulk(
        DEFAULT_PROCS,
        DEFAULT_SHARDS,
        default_requests(scale),
        DEFAULT_SEED,
    );
    super::Experiment {
        id: "bulk",
        title: "Cross-shard bulk sorts: splitter scatter vs a single pool",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_acceptance_load_passes_every_check() {
        // A smaller offered load than the CI configuration, same checks.
        let run = run_bulk(4, 2, 18, DEFAULT_SEED);
        assert!(run.passed, "{}", run.report);
        assert!(run.json.contains("\"schema\": \"BULK_1\""));
        assert!(run.json.contains("\"replay_identical\": true"));
        assert!(run.json.contains("\"bulk_failed\": 0"));
        let metrics = run.metrics_json.expect("sharded metrics are on");
        assert!(metrics.contains("\"schema\": \"METRICS_1\""));
        assert!(metrics.contains("bitonic_bulk_requests_total"));
        assert!(metrics.contains("bitonic_plan_cache_hit_rate"));
    }

    #[test]
    fn the_workload_offers_over_band_requests() {
        let load = workload(30, 4, 16384, DEFAULT_SEED);
        assert!(
            load.iter().any(|(k, _, _)| k.len() > 16384),
            "over-band requests present"
        );
        assert!(
            load.iter().all(|(k, _, _)| k.len() <= 16384 * 3),
            "bulk sizes stay bounded"
        );
        assert!(load.iter().any(|(k, _, _)| k.len() <= 4), "small present");
        assert!(load.iter().any(|(_, d, _)| *d == Direction::Descending));
        assert_eq!(load, workload(30, 4, 16384, DEFAULT_SEED), "deterministic");
    }
}
