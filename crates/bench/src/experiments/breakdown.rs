//! Figure 5.4: breakdown of communication vs computation, 16 processors.

use super::Experiment;
use super::Scale;
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort_traced, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::predict::{predict, CostModel, Messages, StrategyKind};
use logp::LogGpParams;
use obs::{critical_phase_totals, TraceConfig, TracePhase};
use spmd::{traces_of, MessageMode};

const P: usize = 16;

/// Figure 5.4 — per-key split between computation and communication as the
/// data grows. The thesis's observation: computation's share grows with
/// the per-processor working set (cache effects).
#[must_use]
pub fn fig5_4(scale: Scale) -> Experiment {
    let params = LogGpParams::meiko_cs2(P);
    let model = CostModel::meiko_cs2();
    let mut t = Table::new(vec![
        "keys/proc (K, paper)",
        "model comp µs",
        "model comm µs",
        "model comp %",
        "live comp %",
        "live comm %",
    ]);
    for kk in [16usize, 64, 256, 1024] {
        let n_model = kk * 1024;
        let pred = predict(
            StrategyKind::Smart,
            n_model,
            P,
            &params,
            &model,
            Messages::Long { fused: true },
        );
        let n_live = (n_model / scale.shrink).max(64);
        let keys = uniform_keys(n_live * P, 21);
        let run = run_parallel_sort_traced(
            &keys,
            P,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
            TraceConfig::on(),
        );
        // Live split reconstructed from the per-rank span timelines: the
        // per-phase critical path over ranks, exactly what the stopwatch
        // totals report (the spans reuse the same clock reads).
        let crit = critical_phase_totals(&traces_of(&run.ranks));
        let comp = crit.ns[TracePhase::Compute.index()] as f64 / 1e9;
        let comm = crit.communication_ns() as f64 / 1e9;
        t.row(vec![
            kk.to_string(),
            f2(pred.compute_us),
            f2(pred.comm_us()),
            f2(100.0 * pred.compute_us / pred.total_us()),
            f2(100.0 * comp / (comp + comm)),
            f2(100.0 * comm / (comp + comm)),
        ]);
    }
    Experiment {
        id: "fig5_4",
        title: "Fig 5.4: computation vs communication share, P=16",
        body: t.render(),
    }
}
