//! `experiments trace` — the observability subcommand: run a traced sort,
//! export the Chrome trace, and report predicted-vs-measured LogP drift.
//!
//! One traced run of the smart sort (non-fused, so all five phases show up
//! as spans) produces three artifacts:
//!
//! 1. a Chrome trace-event JSON (one pid per rank) loadable in Perfetto;
//! 2. a per-remap drift table replaying the measured R/V/M counters
//!    through the Section 3.4 remap formulas (`logp_remap_us` /
//!    `loggp_remap_us`) next to the span-measured pack/transfer/unpack
//!    times, plus a machine-readable `DRIFT_1` block;
//! 3. a `BENCH_1` record so the run's throughput lands in the same stream
//!    as `remap_bench`.
//!
//! The drift table's R/V/M columns come from the *trace* counter events;
//! they are checked against [`spmd::CommStats`] and the report says so —
//! if the two pipelines ever disagree the mismatch is printed, not hidden.

use super::{Experiment, Scale};
use crate::report::{bench_json, f2, BenchCounters, BenchRecord, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort_traced, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::cost::{loggp_remap_us, logp_remap_us};
use logp::predict::KEY_BYTES;
use logp::LogGpParams;
use obs::{
    chrome_trace_json, critical_phase_totals, rank_phase_totals, step_breakdowns, RankTrace,
    StepBreakdown, TraceConfig, TracePhase,
};
use spmd::runtime::critical_path_stats;
use spmd::{traces_of, CommStats, MessageMode};

/// Default machine size for the subcommand (the acceptance configuration).
pub const DEFAULT_PROCS: usize = 8;

/// Everything one traced run produces.
#[derive(Debug)]
pub struct TraceRun {
    /// Chrome trace-event JSON (write to disk, open in Perfetto).
    pub chrome_json: String,
    /// Human-readable report: drift table, phase split, `DRIFT_1` and
    /// `BENCH_1` blocks.
    pub report: String,
    /// The raw per-rank traces, for validation.
    pub traces: Vec<RankTrace>,
}

/// Keys per rank at a given scale (the thesis's 64K, shrunk for the host).
#[must_use]
pub fn default_keys_per_rank(scale: Scale) -> usize {
    (65_536 / scale.shrink).max(1024).next_power_of_two()
}

fn mode_name(mode: MessageMode) -> &'static str {
    match mode {
        MessageMode::Short => "short",
        MessageMode::Long => "long",
    }
}

/// Predicted time of one remap from its measured counters (µs).
fn predict_remap_us(params: &LogGpParams, mode: MessageMode, v: u64, m: u64) -> f64 {
    match mode {
        MessageMode::Short => logp_remap_us(params, v),
        MessageMode::Long => loggp_remap_us(params, v, m, KEY_BYTES),
    }
}

/// Check the trace counter events against the stopwatch pipeline: every
/// step's R/V/M from [`step_breakdowns`] must equal the critical-path
/// [`CommStats`] record for the same step exactly.
fn counters_match_stats(rows: &[StepBreakdown], crit: &CommStats) -> Result<(), String> {
    // Spans recorded after the final remap (tail compute, closing barrier)
    // carry the next remap index and produce a trailing counter-less row;
    // only rows with a counter event correspond to CommStats records.
    let counted: Vec<&StepBreakdown> = rows.iter().filter(|r| r.has_counters).collect();
    if counted.len() != crit.remaps.len() {
        return Err(format!(
            "trace has {} counted remap rows, CommStats has {}",
            counted.len(),
            crit.remaps.len()
        ));
    }
    for (row, rec) in counted.into_iter().zip(&crit.remaps) {
        let c = &row.counters;
        if (
            c.elements_sent,
            c.messages_sent,
            c.elements_received,
            c.elements_kept,
        ) != (
            rec.elements_sent,
            rec.messages_sent,
            rec.elements_received,
            rec.elements_kept,
        ) {
            return Err(format!(
                "remap {}: trace counters {c:?} != stats record {rec:?}",
                row.remap_index
            ));
        }
    }
    Ok(())
}

/// Validate a trace set: one trace per rank, at least one span per rank in
/// every phase, and nothing dropped from the rings.
pub fn validate(traces: &[RankTrace], procs: usize) -> Result<(), String> {
    if traces.len() != procs {
        return Err(format!(
            "expected {} rank traces, got {}",
            procs,
            traces.len()
        ));
    }
    for trace in traces {
        if trace.dropped > 0 {
            return Err(format!(
                "rank {}: {} events dropped (ring too small)",
                trace.rank, trace.dropped
            ));
        }
        let totals = rank_phase_totals(trace);
        // Only the five core paper phases are mandatory — Retry/Stall
        // spans appear solely under fault injection.
        for phase in TracePhase::CORE {
            if totals.spans[phase.index()] == 0 {
                return Err(format!("rank {}: no {} spans", trace.rank, phase.name()));
            }
        }
    }
    Ok(())
}

/// Run one traced smart sort and assemble all three artifacts.
///
/// # Panics
/// Panics if `procs` is not a power of two or `keys_per_rank < procs`
/// (forwarded from the sort driver).
#[must_use]
pub fn run_trace(procs: usize, keys_per_rank: usize, mode: MessageMode) -> TraceRun {
    let keys = uniform_keys(keys_per_rank * procs, 77);
    let run = run_parallel_sort_traced(
        &keys,
        procs,
        mode,
        Algorithm::Smart,
        LocalStrategy::Merges,
        TraceConfig::on(),
    );
    let traces = traces_of(&run.ranks);
    let crit_stats = critical_path_stats(&run.ranks);
    let rows = step_breakdowns(&traces);
    let params = LogGpParams::meiko_cs2(procs);

    let match_status = counters_match_stats(&rows, &crit_stats);

    // --- drift table -----------------------------------------------------
    let mut t = Table::new(vec![
        "remap",
        "step",
        "V",
        "M",
        "pred µs",
        "pack µs",
        "transfer µs",
        "unpack µs",
        "drift ×",
    ]);
    let ns = |x: u64| x as f64 / 1e3; // ns -> µs
    let (mut pred_sum, mut meas_sum) = (0.0, 0.0);
    let mut drift_records = String::new();
    for row in rows.iter().filter(|r| r.has_counters) {
        let (v, m) = (row.counters.elements_sent, row.counters.messages_sent);
        let pred = predict_remap_us(&params, mode, v, m);
        let pack = ns(row.phase_ns[TracePhase::Pack.index()]);
        let transfer = ns(row.phase_ns[TracePhase::Transfer.index()]);
        let unpack = ns(row.phase_ns[TracePhase::Unpack.index()]);
        let drift = if pred > 0.0 { transfer / pred } else { 0.0 };
        pred_sum += pred;
        meas_sum += transfer;
        t.row(vec![
            row.remap_index.to_string(),
            row.step.to_string(),
            v.to_string(),
            m.to_string(),
            f2(pred),
            f2(pack),
            f2(transfer),
            f2(unpack),
            f2(drift),
        ]);
        drift_records.push_str(&format!(
            "    {{\"remap\": {}, \"step\": {}, \"elements_sent\": {v}, \
             \"messages_sent\": {m}, \"predicted_us\": {pred:.2}, \
             \"pack_us\": {pack:.2}, \"transfer_us\": {transfer:.2}, \
             \"unpack_us\": {unpack:.2}}},\n",
            row.remap_index, row.step,
        ));
    }
    drift_records.truncate(drift_records.len().saturating_sub(2));
    let total_drift = if pred_sum > 0.0 {
        meas_sum / pred_sum
    } else {
        0.0
    };

    // --- critical-path phase split (Table 5.4 view, from spans) ----------
    let crit = critical_phase_totals(&traces);
    let mut split = Table::new(vec!["phase", "crit µs", "spans", "% of comm"]);
    let comm_ns = crit.communication_ns().max(1) as f64;
    for phase in TracePhase::CORE {
        let i = phase.index();
        let share = if phase == TracePhase::Compute {
            String::from("-")
        } else {
            f2(100.0 * crit.ns[i] as f64 / comm_ns)
        };
        split.row(vec![
            phase.name().to_string(),
            f2(ns(crit.ns[i])),
            crit.spans[i].to_string(),
            share,
        ]);
    }

    // --- machine-readable blocks -----------------------------------------
    let total_keys = keys_per_rank * procs;
    let ns_per_key = run.elapsed.as_secs_f64() * 1e9 / total_keys as f64;
    let bench = bench_json(&[BenchRecord {
        name: "trace/smart".into(),
        keys: keys_per_rank,
        procs,
        mode: mode_name(mode).into(),
        ns_per_key,
        counters: Some(BenchCounters::of(&crit_stats)),
    }]);
    let drift_json = format!(
        "{{\n  \"schema\": \"DRIFT_1\",\n  \"procs\": {procs},\n  \
         \"keys_per_rank\": {keys_per_rank},\n  \"mode\": \"{}\",\n  \
         \"counters_match_stats\": {},\n  \
         \"predicted_total_us\": {pred_sum:.2},\n  \
         \"measured_transfer_total_us\": {meas_sum:.2},\n  \"remaps\": [\n{drift_records}\n  ]\n}}\n",
        mode_name(mode),
        match_status.is_ok(),
    );

    let match_line = match &match_status {
        Ok(()) => format!(
            "R/V/M from trace counters match CommStats exactly \
             (R={}, V={}, M={}).",
            crit_stats.remap_count(),
            crit_stats.elements_sent,
            crit_stats.messages_sent
        ),
        Err(e) => format!("WARNING: trace counters disagree with CommStats: {e}"),
    };
    let report = format!(
        "Traced smart sort (non-fused), P={procs}, {keys_per_rank} keys/rank, \
         {} messages.\n{match_line}\n\n\
         Per-remap drift (predicted transfer from measured V/M under Meiko \
         LogGP vs span-measured times; thread-machine transfer is channel \
         overhead, so drift is the model/host gap, total {}×):\n\n{}\n\
         Critical-path phase split reconstructed from spans:\n\n{}\n\
         ```json\n{drift_json}```\n\n```json\n{bench}```\n",
        mode_name(mode),
        f2(total_drift),
        t.render(),
        split.render(),
    );

    TraceRun {
        chrome_json: chrome_trace_json(&traces),
        report,
        traces,
    }
}

/// The `trace` experiment at default configuration (for `experiments all`).
#[must_use]
pub fn trace(scale: Scale) -> Experiment {
    let run = run_trace(
        DEFAULT_PROCS,
        default_keys_per_rank(scale),
        MessageMode::Long,
    );
    Experiment {
        id: "trace",
        title: "Per-rank tracing: LogP drift report and span aggregation, P=8",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_run_validates_and_counters_match() {
        let run = run_trace(4, 1024, MessageMode::Long);
        validate(&run.traces, 4).expect("every rank spans every phase");
        assert!(
            run.report.contains("match CommStats exactly"),
            "report:\n{}",
            run.report
        );
        assert!(run.report.contains("\"schema\": \"DRIFT_1\""));
        assert!(run.report.contains("\"schema\": \"BENCH_1\""));
        assert!(run.chrome_json.contains("\"traceEvents\""));
    }

    #[test]
    fn short_mode_also_traces() {
        let run = run_trace(4, 512, MessageMode::Short);
        validate(&run.traces, 4).expect("short-message run validates");
        assert!(run.report.contains("short messages"));
    }

    #[test]
    fn validate_rejects_wrong_rank_count() {
        let run = run_trace(2, 512, MessageMode::Long);
        assert!(validate(&run.traces, 4).is_err());
    }
}
