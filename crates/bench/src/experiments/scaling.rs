//! Figure 5.3: total sorting time and speedup for 1M keys on 2–32
//! processors.

use super::{Experiment, Scale};
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::predict::{predict, CostModel, Messages, StrategyKind};
use logp::LogGpParams;
use spmd::MessageMode;

/// Figure 5.3 — fixed total problem size, varying P. The model reproduces
/// the speedup curve; live runs at host scale verify the counters and
/// correctness per machine size (wall-clock speedup is meaningless on a
/// single-core host, so it is reported but not compared).
#[must_use]
pub fn fig5_3(scale: Scale) -> Experiment {
    let model = CostModel::meiko_cs2();
    let total_model = 1usize << 20; // 1M keys as in the figure
    let total_live = (total_model / scale.shrink).max(1024);

    let mut t = Table::new(vec![
        "P",
        "model total (s)",
        "model speedup",
        "live total (s)",
        "live R",
        "live sorted",
    ]);
    let mut base_model = None;
    for p in [2usize, 4, 8, 16, 32] {
        let n_model = total_model / p;
        let params = LogGpParams::meiko_cs2(p);
        let secs = predict(
            StrategyKind::Smart,
            n_model,
            p,
            &params,
            &model,
            Messages::Long { fused: true },
        )
        .total_seconds(n_model);
        let base = *base_model.get_or_insert(secs * 2.0); // P=2 baseline → speedup 2 at P=2
        let keys = uniform_keys(total_live, 11);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let run = run_parallel_sort(
            &keys,
            p,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        t.row(vec![
            p.to_string(),
            format!("{secs:.3}"),
            f2(base / secs),
            format!("{:.3}", run.elapsed.as_secs_f64()),
            run.ranks[0].stats.remap_count().to_string(),
            (run.output == expect).to_string(),
        ]);
    }
    Experiment {
        id: "fig5_3",
        title: "Fig 5.3: sorting 1M keys on 2..32 processors (time + speedup)",
        body: t.render(),
    }
}
