//! `kernels` / `bench6` — the local-kernel matrix, reported as `KERNEL_1`
//! JSON.
//!
//! Times every local-phase kernel on every `(key width, size class)` cell
//! it can legally run on, against the seed kernel for that cell (`radix`
//! for full sorts, `circular_merge` for bitonic merges), and times the
//! dispatched path (`local_sort_with_scratch` /
//! `sort_bitonic_with_scratch`) on the same cells — the calibrated
//! threshold table must never lose to the seed by more than measurement
//! noise, and must win outright where the table says the network is
//! faster. Every timed run is checked against the `slice::sort` oracle;
//! a mismatch poisons the whole run (`passed = false`).
//!
//! `bench6` wraps the matrix into the committed `BENCH_6.json` artifact
//! together with the dispatch table the run calibrated.

use super::Experiment;
use crate::report::{f2, kernel_json, KernelRecord, Table};
use local_sorts::bitonic_merge::sort_circular_with_scratch;
use local_sorts::dispatch::{self, Kernel};
use local_sorts::kernels::{bitonic_merge_iterative, bitonic_sort_iterative};
use local_sorts::radix::radix_sort_with_scratch;
use local_sorts::{
    local_sort_with_scratch, sort_bitonic_with_scratch, Direction, KernelTable, RadixKey,
};
use std::time::Instant;

/// Keys the matrix synthesizes: the four canonical unsigned widths
/// (signed keys share their width class by size).
trait BenchKey: RadixKey {
    const WIDTH_BITS: u32;
    fn from_u64(x: u64) -> Self;
}
impl BenchKey for u16 {
    const WIDTH_BITS: u32 = 16;
    fn from_u64(x: u64) -> Self {
        x as u16
    }
}
impl BenchKey for u32 {
    const WIDTH_BITS: u32 = 32;
    fn from_u64(x: u64) -> Self {
        x as u32
    }
}
impl BenchKey for u64 {
    const WIDTH_BITS: u32 = 64;
    fn from_u64(x: u64) -> Self {
        x
    }
}
impl BenchKey for u128 {
    const WIDTH_BITS: u32 = 128;
    fn from_u64(x: u64) -> Self {
        (u128::from(x) << 64) | u128::from(x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_keys<K: BenchKey>(n: usize, seed: u64) -> Vec<K> {
    let mut s = seed;
    (0..n).map(|_| K::from_u64(splitmix(&mut s))).collect()
}

/// A rotated mountain: bitonic, exercising both merge kernels fairly.
fn bitonic_keys<K: BenchKey>(n: usize, seed: u64) -> Vec<K> {
    let mut v = random_keys::<K>(n, seed);
    let peak = n / 2;
    v[..peak].sort_unstable();
    v[peak..].sort_unstable_by(|a, b| b.cmp(a));
    v.rotate_left(n / 3);
    v
}

/// Timed runs per cell; the minimum is reported. Samples are interleaved
/// across a cell's kernels so a slow scheduling period on a shared host
/// cannot penalize one kernel's whole sample set.
const SAMPLES: usize = 7;

fn reps_for(lg: u32, quick: bool) -> u32 {
    let base = match lg {
        0..=6 => 800,
        7..=9 => 200,
        10..=12 => 64,
        _ => 12,
    };
    if quick {
        (base / 8).max(4)
    } else {
        base
    }
}

/// A kernel under measurement: sorts the slice, may use the scratch.
type KernelFn<'a, K> = &'a mut dyn FnMut(&mut [K], &mut Vec<K>);

/// Min-of-`SAMPLES` nanoseconds per rep of each kernel in `fns`,
/// re-seeding `data` from `input` each rep, plus an oracle check of each
/// kernel's final output. One sample round times every kernel once
/// before taking the next sample, so transient host noise lands on all
/// kernels of the cell alike.
fn time_cell<K: BenchKey>(
    input: &[K],
    oracle: &[K],
    reps: u32,
    fns: &mut [KernelFn<'_, K>],
) -> (Vec<Vec<f64>>, Vec<bool>) {
    let mut data: Vec<K> = Vec::with_capacity(input.len());
    let mut scratch: Vec<K> = Vec::new();
    let mut rounds: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES); fns.len()];
    let mut oks: Vec<bool> = Vec::with_capacity(fns.len());
    for f in fns.iter_mut() {
        // Untimed warm-up rep: fault in buffers, warm the icache, and
        // check the oracle once per kernel.
        data.clear();
        data.extend_from_slice(input);
        f(&mut data, &mut scratch);
        oks.push(data == oracle);
    }
    for s in 0..SAMPLES {
        // Rotate the in-round order so periodic host interference cannot
        // phase-lock onto one kernel's slot in every round.
        for k in 0..fns.len() {
            let i = (k + s) % fns.len();
            let t0 = Instant::now();
            for _ in 0..reps {
                data.clear();
                data.extend_from_slice(input);
                fns[i](&mut data, &mut scratch);
            }
            rounds[i].push(t0.elapsed().as_secs_f64() * 1e9 / f64::from(reps.max(1)));
        }
    }
    (rounds, oks)
}

/// Minimum of one kernel's sample rounds.
fn min_ns(rounds: &[f64]) -> f64 {
    rounds.iter().fold(f64::INFINITY, |a, &b| a.min(b))
}

/// Best same-round ratio of `num` over `den`: each sample round times
/// both kernels back to back, so taking the ratio within a round cancels
/// common-mode host noise, and the min across rounds picks the cleanest
/// one. Used for the dispatch-vs-seed bound, where the two paths are
/// near-equal and a min-of-mins ratio would be dominated by jitter.
fn min_ratio(num: &[f64], den: &[f64]) -> f64 {
    num.iter()
        .zip(den)
        .map(|(n, d)| n / d)
        .fold(f64::INFINITY, f64::min)
}

/// The full-sort rows of one `(width, lg_n)` cell: seed radix, the
/// bitonic network, and the dispatched path, each relative to radix.
fn sort_rows<K: BenchKey>(lg: u32, quick: bool, records: &mut Vec<KernelRecord>) {
    let n = 1usize << lg;
    let input = random_keys::<K>(n, u64::from(K::WIDTH_BITS) * 1000 + u64::from(lg));
    let mut oracle = input.clone();
    oracle.sort_unstable();
    let reps = reps_for(lg, quick);
    let selected = dispatch::select_sort_kernel::<K>(n);

    let (rounds, oks) = time_cell(
        &input,
        &oracle,
        reps,
        &mut [
            &mut |d: &mut [K], s: &mut Vec<K>| radix_sort_with_scratch(d, s),
            &mut |d: &mut [K], _: &mut Vec<K>| bitonic_sort_iterative(d, Direction::Ascending),
            &mut |d: &mut [K], s: &mut Vec<K>| local_sort_with_scratch(d, s, Direction::Ascending),
        ],
    );
    let radix_ns = min_ns(&rounds[0]);

    let row = |kernel: &str, ns: f64, vs_seed: f64, selected: bool, ok: bool| KernelRecord {
        width_bits: K::WIDTH_BITS,
        lg_n: lg,
        op: "sort".into(),
        kernel: kernel.into(),
        ns_per_key: ns / n as f64,
        vs_seed,
        selected,
        oracle_ok: ok,
    };
    records.push(row(
        "radix",
        radix_ns,
        1.0,
        selected == Kernel::Radix,
        oks[0],
    ));
    records.push(row(
        "bitonic_net",
        min_ns(&rounds[1]),
        min_ns(&rounds[1]) / radix_ns,
        selected == Kernel::BitonicNetwork,
        oks[1],
    ));
    records.push(row(
        "dispatch",
        min_ns(&rounds[2]),
        min_ratio(&rounds[2], &rounds[0]),
        true,
        oks[2],
    ));
}

/// The bitonic-merge rows of one cell: seed circular merge, the
/// comparator network, and the dispatched path, relative to circular.
fn merge_rows<K: BenchKey>(lg: u32, quick: bool, records: &mut Vec<KernelRecord>) {
    let n = 1usize << lg;
    let input = bitonic_keys::<K>(n, u64::from(K::WIDTH_BITS) * 2000 + u64::from(lg));
    let mut oracle = input.clone();
    oracle.sort_unstable();
    let reps = reps_for(lg, quick);
    let selected = dispatch::select_merge_kernel::<K>(n);

    let (rounds, oks) = time_cell(
        &input,
        &oracle,
        reps,
        &mut [
            &mut |d: &mut [K], s: &mut Vec<K>| {
                sort_circular_with_scratch(d, s, Direction::Ascending)
            },
            &mut |d: &mut [K], _: &mut Vec<K>| bitonic_merge_iterative(d, Direction::Ascending),
            &mut |d: &mut [K], s: &mut Vec<K>| {
                sort_bitonic_with_scratch(d, s, Direction::Ascending)
            },
        ],
    );
    let circ_ns = min_ns(&rounds[0]);

    let row = |kernel: &str, ns: f64, vs_seed: f64, selected: bool, ok: bool| KernelRecord {
        width_bits: K::WIDTH_BITS,
        lg_n: lg,
        op: "merge".into(),
        kernel: kernel.into(),
        ns_per_key: ns / n as f64,
        vs_seed,
        selected,
        oracle_ok: ok,
    };
    records.push(row(
        "circular_merge",
        circ_ns,
        1.0,
        selected == Kernel::CircularMerge,
        oks[0],
    ));
    records.push(row(
        "network_merge",
        min_ns(&rounds[1]),
        min_ns(&rounds[1]) / circ_ns,
        selected == Kernel::NetworkMerge,
        oks[1],
    ));
    records.push(row(
        "dispatch",
        min_ns(&rounds[2]),
        min_ratio(&rounds[2], &rounds[0]),
        true,
        oks[2],
    ));
}

/// What one kernel-matrix run produced.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Rendered report (calibrated table + matrix + verdicts).
    pub report: String,
    /// The bare `KERNEL_1` JSON document.
    pub json: String,
    /// The table the run calibrated and dispatched on.
    pub table: KernelTable,
    /// Per-width flag: the selected kernel beat the seed on at least one
    /// sort size class of that width.
    pub sort_win_per_width: [bool; 4],
    /// Every oracle check passed.
    pub oracles_ok: bool,
    /// The dispatched path never lost more than 5% to the seed kernel on
    /// any measured cell.
    pub dispatch_within_bound: bool,
    /// `oracles_ok && dispatch_within_bound && sort_win_per_width.all()`.
    pub passed: bool,
}

/// Size classes measured per width: quick (CI) vs full (committed
/// artifact) — always at least one cell on each side of the default
/// crossovers.
fn size_classes(quick: bool) -> Vec<u32> {
    if quick {
        vec![3, 4, 8]
    } else {
        vec![3, 4, 5, 6, 7, 8, 10, 12, 14]
    }
}

/// Run the matrix. Calibrates (and installs) the dispatch table first so
/// `selected` and the dispatched-path rows reflect this host.
#[must_use]
pub fn run_kernels(quick: bool) -> KernelRun {
    dispatch::ensure_calibrated();
    let table = dispatch::current();
    let mut records: Vec<KernelRecord> = Vec::new();
    for lg in size_classes(quick) {
        sort_rows::<u16>(lg, quick, &mut records);
        sort_rows::<u32>(lg, quick, &mut records);
        sort_rows::<u64>(lg, quick, &mut records);
        sort_rows::<u128>(lg, quick, &mut records);
        merge_rows::<u16>(lg, quick, &mut records);
        merge_rows::<u32>(lg, quick, &mut records);
        merge_rows::<u64>(lg, quick, &mut records);
        merge_rows::<u128>(lg, quick, &mut records);
    }

    let oracles_ok = records.iter().all(|r| r.oracle_ok);
    // Dispatch may not regress the seed: 5% bound per the acceptance
    // criterion, with a small absolute floor so sub-microsecond cells
    // aren't judged on scheduler jitter.
    let dispatch_within_bound = records
        .iter()
        .filter(|r| r.kernel == "dispatch")
        .all(|r| r.vs_seed <= 1.05 || r.ns_per_key * (1 << r.lg_n) as f64 <= 2000.0);
    let mut sort_win_per_width = [false; 4];
    for r in &records {
        if r.op == "sort" && r.kernel != "dispatch" && r.selected && r.vs_seed < 1.0 {
            let w = match r.width_bits {
                16 => 0,
                32 => 1,
                64 => 2,
                _ => 3,
            };
            sort_win_per_width[w] = true;
        }
    }
    let passed = oracles_ok && dispatch_within_bound && sort_win_per_width.iter().all(|&b| b);

    let mut t = Table::new(vec![
        "width", "lg n", "op", "kernel", "ns/key", "vs seed", "sel", "oracle",
    ]);
    for r in &records {
        t.row(vec![
            r.width_bits.to_string(),
            r.lg_n.to_string(),
            r.op.clone(),
            r.kernel.clone(),
            f2(r.ns_per_key),
            f2(r.vs_seed),
            if r.selected { "*" } else { "" }.to_string(),
            if r.oracle_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    let report = format!(
        "Calibrated dispatch table (max lg n for the network, per width \
         class):\n  sort:  {:?}\n  merge: {:?}\n\n{}\n\
         selected-kernel sort win per width (16/32/64/128): {:?}\n\
         all oracles ok: {oracles_ok}; dispatch within 5% of seed \
         everywhere: {dispatch_within_bound}\n",
        table.sort_bitonic_max_lg,
        table.merge_network_max_lg,
        t.render(),
        sort_win_per_width,
    );
    let json = kernel_json(&records);
    KernelRun {
        report,
        json,
        table,
        sort_win_per_width,
        oracles_ok,
        dispatch_within_bound,
        passed,
    }
}

/// Compose the committed `BENCH_6` document: the calibrated table plus
/// the bare `KERNEL_1` matrix.
#[must_use]
pub fn bench6_doc(run: &KernelRun) -> String {
    format!(
        "{{\n\"schema\": \"BENCH_6\",\n\
         \"sort_bitonic_max_lg\": {:?},\n\
         \"merge_network_max_lg\": {:?},\n\
         \"sort_win_per_width\": {:?},\n\
         \"kernels\": {}}}\n",
        run.table.sort_bitonic_max_lg,
        run.table.merge_network_max_lg,
        run.sort_win_per_width,
        run.json
    )
}

/// Run the matrix at quick scale and render it as an experiment.
#[must_use]
pub fn kernels(_scale: super::Scale) -> Experiment {
    let run = run_kernels(true);
    Experiment {
        id: "kernels",
        title: "Local kernels: branch-free networks vs radix/circular, per size class",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_synthesis_is_deterministic_and_bitonic() {
        let a = random_keys::<u32>(64, 7);
        let b = random_keys::<u32>(64, 7);
        assert_eq!(a, b);
        let m = bitonic_keys::<u64>(128, 3);
        // A rotation of a mountain sorts correctly under the circular
        // kernel — the cheap structural check that it is bitonic.
        let mut v = m.clone();
        let mut s = Vec::new();
        sort_circular_with_scratch(&mut v, &mut s, Direction::Ascending);
        let mut oracle = m;
        oracle.sort_unstable();
        assert_eq!(v, oracle);
    }

    #[test]
    fn quick_matrix_is_complete_and_oracle_clean() {
        let run = run_kernels(true);
        assert!(run.oracles_ok, "{}", run.report);
        // 4 widths x 2 ops x 3 rows per measured size class.
        let per_lg = 4 * 2 * 3;
        assert_eq!(
            run.json.matches("\"width_bits\"").count(),
            per_lg * size_classes(true).len()
        );
        let doc = bench6_doc(&run);
        assert!(doc.contains("\"schema\": \"BENCH_6\""));
        assert!(doc.contains("\"schema\": \"KERNEL_1\""));
        let mut depth = 0i64;
        for c in doc.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }
}
