//! `experiments chaos` — the fault-injection conformance sweep: every
//! bitonic variant against every fault class, on one seeded chaotic mesh.
//!
//! Each cell of the sweep runs a full sort under one fault class (latency
//! jitter, bounded reordering, duplication, drops, a stalled rank, or all
//! of them at once) and checks the output is *exactly* the sorted input —
//! sortedness and multiset preservation in one comparison. The fault plan
//! is a pure function of the seed, so any failure reported here can be
//! replayed bit-for-bit with `bitonic-sort --chaos-seed`.
//!
//! The report ends with a machine-readable `CHAOS_1` block carrying the
//! per-run injected/recovery counters plus a determinism verdict (the
//! smart sort is run twice on the same seed and must inject identically).

use super::{Experiment, Scale};
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort_chaos, Algorithm};
use bitonic_core::local::LocalStrategy;
use spmd::runtime::critical_path_stats;
use spmd::{FaultConfig, FaultStats, MessageMode, TraceConfig};
use std::time::Duration;

/// Default machine size for the subcommand (the acceptance configuration).
pub const DEFAULT_PROCS: usize = 4;

/// Default master seed (any value works; fixed so CI runs are replayable).
pub const DEFAULT_SEED: u64 = 805_381;

/// Keys per rank at a given scale. Chaos runs pay for injected sleeps and
/// retransmission round-trips, so the sweep uses a smaller working set
/// than the throughput experiments.
#[must_use]
pub fn default_keys_per_rank(scale: Scale) -> usize {
    (16_384 / scale.shrink).max(256).next_power_of_two()
}

const ALGOS: [Algorithm; 4] = [
    Algorithm::Smart,
    Algorithm::SmartFused,
    Algorithm::CyclicBlocked,
    Algorithm::BlockedMerge,
];

/// One fault class of the sweep: a label and the config it arms.
fn classes(seed: u64, procs: usize) -> Vec<(&'static str, FaultConfig)> {
    let base = FaultConfig {
        seed,
        retry_tick: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(4),
        watchdog: Some(Duration::from_secs(20)),
        ..FaultConfig::off()
    };
    vec![
        (
            "jitter",
            FaultConfig {
                jitter_us: 20,
                ..base
            },
        ),
        (
            "reorder",
            FaultConfig {
                reorder_rate: 0.15,
                ..base
            },
        ),
        (
            "duplicate",
            FaultConfig {
                dup_rate: 0.08,
                ..base
            },
        ),
        (
            "drop",
            FaultConfig {
                drop_rate: 0.05,
                ..base
            },
        ),
        (
            "stall",
            FaultConfig {
                stall_rank: Some(procs - 1),
                stall_us: 200,
                ..base
            },
        ),
        (
            "mixed",
            FaultConfig {
                drop_rate: 0.02,
                dup_rate: 0.02,
                reorder_rate: 0.05,
                jitter_us: 10,
                ..base
            },
        ),
    ]
}

/// One completed cell of the sweep.
struct Cell {
    class: &'static str,
    algo: Algorithm,
    sorted: bool,
    faults: FaultStats,
    ns_per_key: f64,
}

/// Everything one chaos sweep produces.
#[derive(Debug)]
pub struct ChaosRun {
    /// Human-readable report ending in the `CHAOS_1` JSON block.
    pub report: String,
    /// Whether every cell sorted correctly and determinism held.
    pub passed: bool,
}

/// Run the full sweep: every fault class × every bitonic variant at `P =
/// procs`, plus a same-seed determinism replay of the smart sort.
///
/// # Panics
/// Panics if `procs` is not a power of two (forwarded from the drivers).
#[must_use]
pub fn run_chaos(procs: usize, keys_per_rank: usize, seed: u64) -> ChaosRun {
    let input = uniform_keys(keys_per_rank * procs, seed ^ 0x5EED);
    let mut expect = input.clone();
    expect.sort_unstable();

    let mut cells: Vec<Cell> = Vec::new();
    for (class, fault) in classes(seed, procs) {
        for algo in ALGOS {
            let run = run_parallel_sort_chaos(
                &input,
                procs,
                MessageMode::Long,
                algo,
                LocalStrategy::Merges,
                TraceConfig::off(),
                fault,
            );
            let cell = match run {
                Ok(run) => Cell {
                    class,
                    algo,
                    sorted: run.output == expect,
                    faults: critical_path_stats(&run.ranks).faults,
                    ns_per_key: run.elapsed.as_secs_f64() * 1e9 / (keys_per_rank * procs) as f64,
                },
                Err(_) => Cell {
                    class,
                    algo,
                    sorted: false,
                    faults: FaultStats::default(),
                    ns_per_key: f64::NAN,
                },
            };
            cells.push(cell);
        }
    }

    // Determinism replay: same seed, same traffic → identical injected
    // counters and identical output.
    let replay = |()| {
        run_parallel_sort_chaos(
            &input,
            procs,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
            TraceConfig::off(),
            classes(seed, procs)[5].1, // mixed
        )
        .ok()
    };
    let deterministic = match (replay(()), replay(())) {
        (Some(a), Some(b)) => {
            a.output == b.output
                && a.ranks
                    .iter()
                    .zip(&b.ranks)
                    .all(|(ra, rb)| ra.stats.faults.injected() == rb.stats.faults.injected())
        }
        _ => false,
    };

    let all_sorted = cells.iter().all(|c| c.sorted);
    let passed = all_sorted && deterministic;

    // --- table -----------------------------------------------------------
    let mut t = Table::new(vec![
        "class",
        "algorithm",
        "sorted",
        "drops",
        "dups",
        "reorders",
        "jittered",
        "stalls",
        "retries",
        "nacks",
        "ns/key",
    ]);
    for c in &cells {
        let f = &c.faults;
        t.row(vec![
            c.class.to_string(),
            c.algo.name().to_string(),
            if c.sorted { "yes" } else { "NO" }.to_string(),
            f.drops_injected.to_string(),
            f.dups_injected.to_string(),
            f.reorders_injected.to_string(),
            f.jitter_events.to_string(),
            f.stalls_injected.to_string(),
            f.retries.to_string(),
            f.nacks_sent.to_string(),
            f2(c.ns_per_key),
        ]);
    }

    // --- CHAOS_1 block ---------------------------------------------------
    let mut runs_json = String::new();
    for c in &cells {
        let f = &c.faults;
        runs_json.push_str(&format!(
            "    {{\"class\": \"{}\", \"algorithm\": \"{}\", \"sorted\": {}, \
             \"drops\": {}, \"dups\": {}, \"reorders\": {}, \"jittered\": {}, \
             \"stalls\": {}, \"retries\": {}, \"nacks\": {}, \
             \"dups_suppressed\": {}}},\n",
            c.class,
            c.algo.name(),
            c.sorted,
            f.drops_injected,
            f.dups_injected,
            f.reorders_injected,
            f.jitter_events,
            f.stalls_injected,
            f.retries,
            f.nacks_sent,
            f.dups_suppressed,
        ));
    }
    runs_json.truncate(runs_json.len().saturating_sub(2));
    let chaos_json = format!(
        "{{\n  \"schema\": \"CHAOS_1\",\n  \"procs\": {procs},\n  \
         \"keys_per_rank\": {keys_per_rank},\n  \"seed\": {seed},\n  \
         \"all_sorted\": {all_sorted},\n  \"deterministic\": {deterministic},\n  \
         \"runs\": [\n{runs_json}\n  ]\n}}\n"
    );

    let verdict = if passed {
        "PASS: every variant sorted correctly under every fault class, and \
         equal seeds injected equal faults."
            .to_string()
    } else {
        format!(
            "FAIL: all_sorted={all_sorted}, deterministic={deterministic} — \
             replay with bitonic-sort --chaos-seed {seed}."
        )
    };
    let report = format!(
        "Chaos conformance sweep, P={procs}, {keys_per_rank} keys/rank, \
         seed {seed}, long messages.\n\
         Output is compared against the fully sorted input, so a \"yes\" \
         certifies sortedness *and* exactly-once delivery (nothing lost to \
         drops, nothing doubled by duplicates).\n{verdict}\n\n{}\n\
         ```json\n{chaos_json}```\n",
        t.render(),
    );

    ChaosRun { report, passed }
}

/// The `chaos` experiment at default configuration (for `experiments all`).
#[must_use]
pub fn chaos(scale: Scale) -> Experiment {
    let run = run_chaos(DEFAULT_PROCS, default_keys_per_rank(scale), DEFAULT_SEED);
    Experiment {
        id: "chaos",
        title: "Fault-injection conformance: sorts survive a misbehaving mesh, P=4",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_passes_at_small_scale() {
        let run = run_chaos(4, 256, DEFAULT_SEED);
        assert!(run.passed, "report:\n{}", run.report);
        assert!(run.report.contains("\"schema\": \"CHAOS_1\""));
        assert!(run.report.contains("\"all_sorted\": true"));
        assert!(run.report.contains("\"deterministic\": true"));
    }

    #[test]
    fn sweep_covers_every_class_and_algorithm() {
        let run = run_chaos(2, 256, 9);
        for class in ["jitter", "reorder", "duplicate", "drop", "stall", "mixed"] {
            assert!(
                run.report.contains(&format!("\"class\": \"{class}\"")),
                "{class} missing"
            );
        }
        for algo in ALGOS {
            assert!(run.report.contains(algo.name()), "{algo:?} missing");
        }
    }
}
