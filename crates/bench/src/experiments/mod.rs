//! One module per Chapter 5 table/figure group.

pub mod breakdown;
pub mod bulk_bench;
pub mod chaos;
pub mod extensions;
pub mod kernels;
pub mod messages;
pub mod net_bench;
pub mod other_sorts;
pub mod record_bench;
pub mod remap_bench;
pub mod scaling;
pub mod serve_bench;
pub mod shard_bench;
pub mod strategies;
pub mod trace;

use spmd::CommStats;

/// A rendered experiment, ready to print or paste into EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier matching the thesis ("table5_1", "fig5_3", …).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// Rendered body (tables + notes).
    pub body: String,
}

/// Scale at which *measured* runs execute (the model always runs at paper
/// scale).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Divide the paper's keys-per-processor by this factor for live runs.
    pub shrink: usize,
}

impl Scale {
    /// Default for CI-class hosts: 1/64 of the paper's keys per processor.
    #[must_use]
    pub fn default_host() -> Self {
        Scale { shrink: 64 }
    }

    /// Paper scale (use only on a machine with memory and patience).
    #[must_use]
    pub fn full() -> Self {
        Scale { shrink: 1 }
    }
}

/// Convert a rank's measured remap records into a simulator trace row.
#[must_use]
pub fn trace_of(stats: &CommStats) -> Vec<logp::simulate::StepTrace> {
    stats
        .remaps
        .iter()
        .map(|r| logp::simulate::StepTrace {
            sent: r.elements_sent,
            messages: r.messages_sent,
            received: r.elements_received,
            kept: r.elements_kept,
        })
        .collect()
}

/// Convert measured SPMD counters into the LogP/LogGP metric triple.
#[must_use]
pub fn metrics_of(stats: &CommStats) -> logp::CommMetrics {
    logp::CommMetrics {
        remaps: stats.remap_count(),
        volume: stats.elements_sent,
        messages: stats.messages_sent,
    }
}

/// Run every experiment in thesis order.
#[must_use]
pub fn all(scale: Scale) -> Vec<Experiment> {
    vec![
        strategies::table5_1(),
        strategies::table5_2(),
        strategies::measured(scale),
        scaling::fig5_3(scale),
        breakdown::fig5_4(scale),
        messages::table5_3(scale),
        messages::table5_4(scale),
        other_sorts::fig5_7(scale),
        other_sorts::fig5_8(scale),
        extensions::ext_fattree(),
        extensions::ext_fusion(scale),
        extensions::ext_shifting(),
        extensions::ext_simulated(scale),
        remap_bench::remap_bench(scale),
        kernels::kernels(scale),
        trace::trace(scale),
        chaos::chaos(scale),
        serve_bench::serve(scale),
        shard_bench::shard(scale),
        bulk_bench::bulk(scale),
        net_bench::net(scale),
        record_bench::records(scale),
    ]
}

/// Look an experiment up by id.
#[must_use]
pub fn by_id(id: &str, scale: Scale) -> Option<Experiment> {
    match id {
        "table5_1" | "fig5_2" => Some(strategies::table5_1()),
        "table5_2" | "fig5_1" => Some(strategies::table5_2()),
        "strategies_measured" => Some(strategies::measured(scale)),
        "fig5_3" => Some(scaling::fig5_3(scale)),
        "fig5_4" => Some(breakdown::fig5_4(scale)),
        "table5_3" | "fig5_5" => Some(messages::table5_3(scale)),
        "table5_4" | "fig5_6" => Some(messages::table5_4(scale)),
        "fig5_7" => Some(other_sorts::fig5_7(scale)),
        "fig5_8" => Some(other_sorts::fig5_8(scale)),
        "ext_fattree" => Some(extensions::ext_fattree()),
        "ext_fusion" => Some(extensions::ext_fusion(scale)),
        "ext_shifting" => Some(extensions::ext_shifting()),
        "ext_simulated" => Some(extensions::ext_simulated(scale)),
        "remap_bench" => Some(remap_bench::remap_bench(scale)),
        "kernels" => Some(kernels::kernels(scale)),
        "trace" => Some(trace::trace(scale)),
        "chaos" => Some(chaos::chaos(scale)),
        "serve" => Some(serve_bench::serve(scale)),
        "shard" => Some(shard_bench::shard(scale)),
        "bulk" => Some(bulk_bench::bulk(scale)),
        "net" => Some(net_bench::net(scale)),
        "records" => Some(record_bench::records(scale)),
        _ => None,
    }
}

/// All experiment ids accepted by [`by_id`].
pub const IDS: [&str; 22] = [
    "table5_1",
    "table5_2",
    "strategies_measured",
    "fig5_3",
    "fig5_4",
    "table5_3",
    "table5_4",
    "fig5_7",
    "fig5_8",
    "ext_fattree",
    "ext_fusion",
    "ext_shifting",
    "ext_simulated",
    "remap_bench",
    "kernels",
    "trace",
    "chaos",
    "serve",
    "shard",
    "bulk",
    "net",
    "records",
];
