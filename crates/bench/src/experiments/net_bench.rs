//! `experiments net` / `bench7` — open-loop load over real TCP sockets.
//!
//! Where `serve_bench` drives the service in-process, this benchmark
//! sends every request through the `SORT_1` wire codec, a loopback
//! `TcpListener`, and back: the latency numbers include framing, socket
//! I/O, and the per-connection reader threads — the end-to-end cost a
//! real client would see. The offered mix is byte-identical to the
//! serving benchmark's (`serve_bench::workload`), striped
//! round-robin across `conns` concurrent connections; each connection
//! paces its own slice with the workload's inter-arrival gaps and never
//! waits on another connection, so a slow server builds queue depth
//! instead of slowing the generator (open loop across connections).
//!
//! Every reply is checked against the independent-sort oracle, and the
//! run ends with a three-way reconciliation: the server's
//! [`sort_service::WireStats`]
//! must match the service's own `ServiceStats` *and* the metrics
//! registry counter-for-counter — frames vs submissions, `ok` replies vs
//! completions, per-reason rejection replies vs per-reason sheds. The
//! `--check` gate demands all of it, plus zero sheds/expiries/failures/
//! frame errors and all-clean disconnects under the nominal load.
//!
//! The report ends with a machine-readable `NET_1` block
//! ([`crate::report::net_json`]) carrying throughput and per-size-class
//! p50/p95/p99; `bench7` wraps it into the committed `BENCH_7.json`.

use super::serve_bench::{percentile, workload, DEFAULT_PROCS, DEFAULT_SEED};
use super::{Experiment, Scale};
use crate::report::{f2, metrics_json, net_json, NetClassLatency, NetSummary, Table};
use crate::workloads::uniform_keys;
use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use sort_service::{ReplyFrame, ServiceConfig, WireClient, WireConfig, WireServer};
use std::time::{Duration, Instant};

/// Default concurrent client connections (the acceptance configuration).
pub const DEFAULT_CONNS: usize = 8;

/// One connection's share of the workload: `(request index, keys,
/// direction, inter-arrival gap)` in offered order.
type Script = Vec<(usize, Vec<u32>, Direction, Duration)>;

/// One connection's results: `(request keys, latency µs, verdict)` where
/// `None` means the reply matched the oracle.
type WorkerOut = Vec<(usize, f64, Option<String>)>;

/// Requests offered at a given scale.
#[must_use]
pub fn default_requests(scale: Scale) -> usize {
    super::serve_bench::default_requests(scale)
}

/// One finished wire-load run.
#[derive(Debug, Clone)]
pub struct NetRun {
    /// Human-readable report (tables + the `NET_1` block).
    pub report: String,
    /// The bare `NET_1` JSON document, for composition into `BENCH_7`.
    pub json: String,
    /// The final registry as a `METRICS_1` document.
    pub metrics_json: Option<String>,
    /// The final registry in Prometheus text exposition format.
    pub prometheus: Option<String>,
    /// Whether every acceptance check held.
    pub passed: bool,
}

/// Size-class bands for the latency breakdown: `(name, max_keys)` with
/// `tiny` covering n < P.
fn class_bands(procs: usize, max_request_keys: usize) -> [(&'static str, usize); 4] {
    [
        ("tiny", procs - 1),
        ("small", 64),
        ("medium", 1024),
        ("large", max_request_keys),
    ]
}

fn class_of(bands: &[(&'static str, usize); 4], n: usize) -> usize {
    bands
        .iter()
        .position(|(_, max)| n <= *max)
        .unwrap_or(bands.len() - 1)
}

/// Warm every padded batch shape over the wire — same shapes as
/// `serve_bench::warm_shapes`, but each request crosses the socket.
fn warm_shapes_wire(srv: &WireServer, cfg: &ServiceConfig) -> u64 {
    let mut client = WireClient::connect(srv.local_addr()).expect("loopback connect");
    let mut warmed = 0u64;
    let mut per_rank = 2usize;
    while per_rank * cfg.procs <= cfg.max_request_keys {
        let keys = uniform_keys(per_rank * cfg.procs, 7 + per_rank as u64);
        match client.sort(&keys, Direction::Ascending, None) {
            Ok(ReplyFrame::Sorted(_)) => {}
            other => panic!("warm-up request must sort, got {other:?}"),
        }
        warmed += 1;
        per_rank *= 2;
    }
    drop(client);
    // The dispatcher publishes pool counters after it replies; wait for
    // the last warm-up batch's counters before the measured window.
    let t = Instant::now();
    while srv.service_stats().batches < warmed && t.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    warmed
}

/// Drive the wire server at `procs` ranks with `requests` requests over
/// `conns` loopback connections and render the report. Deterministic in
/// `seed` up to host timing.
///
/// # Panics
/// Panics if `procs` is not a power of two, `conns` is zero, or the
/// loopback listener cannot bind.
#[must_use]
pub fn run_net(procs: usize, requests: usize, conns: usize, seed: u64) -> NetRun {
    assert!(procs.is_power_of_two(), "machine sizes are powers of two");
    assert!(conns >= 1, "at least one connection");
    let mut cfg = ServiceConfig::new(procs);
    // Cap batches at one max-size request so warm-up (which is bounded by
    // the per-request limit) can visit every padded shape batches reach.
    cfg.max_batch_keys = cfg.max_request_keys;
    cfg.validate();
    let bands = class_bands(procs, cfg.max_request_keys);

    let srv = WireServer::start(cfg, WireConfig::default(), "127.0.0.1:0")
        .expect("bind loopback listener");
    let addr = srv.local_addr();
    let handle = srv.metrics();
    let warm = {
        let warmup_batches = warm_shapes_wire(&srv, &cfg);
        let s = srv.service_stats();
        assert_eq!(s.batches, warmup_batches, "one batch per warm-up shape");
        s
    };

    let load = workload(requests, procs, seed);
    let total_keys: u64 = load.iter().map(|(k, _, _)| k.len() as u64).sum();
    let mut scripts: Vec<Script> = (0..conns).map(|_| Vec::new()).collect();
    for (i, (keys, dir, gap)) in load.into_iter().enumerate() {
        scripts[i % conns].push((i, keys, dir, gap));
    }

    let started = Instant::now();
    let workers: Vec<std::thread::JoinHandle<WorkerOut>> = scripts
        .into_iter()
        .map(|script| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("loopback connect");
                let mut out = Vec::with_capacity(script.len());
                for (i, keys, dir, gap) in script {
                    std::thread::sleep(gap);
                    let class = keys.len();
                    let expected = sorted_independently(&keys, dir);
                    let sent = Instant::now();
                    let verdict = match client.sort(&keys, dir, None) {
                        Ok(ReplyFrame::Sorted(got)) if got == expected => None,
                        Ok(ReplyFrame::Sorted(_)) => {
                            Some(format!("request {i}: reply differs from the oracle"))
                        }
                        Ok(other) => Some(format!("request {i}: {} reply", other.label())),
                        Err(e) => Some(format!("request {i}: {e}")),
                    };
                    out.push((class, sent.elapsed().as_secs_f64() * 1e6, verdict));
                }
                out
            })
        })
        .collect();

    let mut failures: Vec<String> = Vec::new();
    let mut per_class: Vec<Vec<f64>> = vec![Vec::new(); bands.len()];
    let mut all_us: Vec<f64> = Vec::new();
    for w in workers {
        for (n, latency_us, verdict) in w.join().expect("client thread") {
            match verdict {
                None => {
                    per_class[class_of(&bands, n)].push(latency_us);
                    all_us.push(latency_us);
                }
                Some(e) => failures.push(e),
            }
        }
    }
    let wall = started.elapsed().as_secs_f64();

    // Let the server observe every client's clean close before the final
    // snapshot, so the disconnect tally is complete.
    let t = Instant::now();
    while t.elapsed() < Duration::from_secs(5) {
        let w = srv.wire_stats();
        if w.connections_closed == w.connections_opened {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;
    let mismatches = failures
        .iter()
        .filter(|f| f.contains("differs from the oracle"))
        .count() as u64;

    // Three-way reconciliation: the wire's own tallies, the service's
    // counters, and the metrics registry must agree event-for-event.
    let mut reconcile_failures: Vec<String> = Vec::new();
    let mut check = |name: &str, a: u64, b: u64| {
        if a != b {
            reconcile_failures.push(format!("wire reconcile: {name}: {a} != {b}"));
        }
    };
    check("frames vs submitted", wire.frames_read, stats.submitted);
    check("ok replies vs completed", wire.replies_ok, stats.completed);
    check("expired replies vs expired", wire.expired, stats.expired);
    check("failed replies vs failed", wire.failed, stats.failed);
    check("rejections vs shed", wire.rejected_total(), stats.shed);
    check(
        "connections closed vs opened",
        wire.connections_closed,
        wire.connections_opened,
    );
    check(
        "clean disconnects vs connections",
        wire.disconnect("clean_eof"),
        wire.connections_opened,
    );

    let mut metrics_doc = None;
    let mut prometheus_doc = None;
    if let Some(m) = handle {
        let snap = m.snapshot();
        let mut check = |name: &str, a: u64, b: u64| {
            if a != b {
                reconcile_failures.push(format!("registry reconcile: {name}: {a} != {b}"));
            }
        };
        check(
            "wire frames",
            snap.counter_total("bitonic_wire_frames_total"),
            wire.frames_read,
        );
        check(
            "wire connections",
            snap.counter_total("bitonic_wire_connections_total"),
            wire.connections_opened,
        );
        check(
            "ok replies",
            snap.counter_labeled("bitonic_wire_replies_total", "status", "ok"),
            wire.replies_ok,
        );
        check(
            "submitted",
            snap.counter_total("bitonic_requests_submitted_total"),
            stats.submitted,
        );
        check(
            "completed",
            snap.counter_total("bitonic_requests_completed_total"),
            stats.completed,
        );
        for reason in sort_service::net::REJECTION_LABELS {
            check(
                &format!("wire rejections[{reason}] vs registry sheds"),
                snap.counter_labeled("bitonic_wire_rejections_total", "reason", reason),
                snap.counter_labeled("bitonic_requests_shed_total", "reason", reason),
            );
            check(
                &format!("wire stats rejections[{reason}]"),
                wire.rejection(reason),
                snap.counter_labeled("bitonic_wire_rejections_total", "reason", reason),
            );
        }
        for label in sort_service::net::DISCONNECT_LABELS {
            check(
                &format!("disconnects[{label}]"),
                snap.counter_labeled("bitonic_wire_disconnects_total", "reason", label),
                wire.disconnect(label),
            );
        }
        metrics_doc = Some(metrics_json(&snap));
        prometheus_doc = Some(obs::encode_prometheus(&snap));
    }
    let reconciled = reconcile_failures.is_empty();
    failures.extend(reconcile_failures);

    if stats.shed > 0 {
        failures.push(format!("{} requests shed at nominal load", stats.shed));
    }
    if stats.expired > 0 {
        failures.push(format!("{} requests expired", stats.expired));
    }
    if stats.failed > 0 {
        failures.push(format!("{} requests lost to failed batches", stats.failed));
    }
    if wire.frame_errors > 0 {
        failures.push(format!(
            "{} malformed frames under a clean load",
            wire.frame_errors
        ));
    }

    all_us.sort_by(f64::total_cmp);
    let classes: Vec<NetClassLatency> = bands
        .iter()
        .zip(&mut per_class)
        .map(|((name, max_keys), us)| {
            us.sort_by(f64::total_cmp);
            NetClassLatency {
                class: (*name).to_string(),
                max_keys: *max_keys,
                requests: us.len() as u64,
                p50_us: percentile(us, 50.0),
                p95_us: percentile(us, 95.0),
                p99_us: percentile(us, 99.0),
            }
        })
        .collect();
    if classes.iter().all(|c| c.requests == 0 || c.p99_us <= 0.0) {
        failures.push("no per-class p99 latency reported".into());
    }

    let completed = stats.completed.saturating_sub(warm.completed);
    let summary = NetSummary {
        procs,
        conns,
        requests: requests as u64,
        total_keys,
        frames: wire.frames_read,
        replies_ok: wire.replies_ok,
        rejected: wire.rejected_total(),
        expired: wire.expired,
        failed: wire.failed,
        frame_errors: wire.frame_errors,
        bytes_read: wire.bytes_read,
        bytes_written: wire.bytes_written,
        throughput_rps: completed as f64 / wall,
        p50_us: percentile(&all_us, 50.0),
        p95_us: percentile(&all_us, 95.0),
        p99_us: percentile(&all_us, 99.0),
        reconciled,
        mismatches,
        classes,
    };

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["connections".into(), summary.conns.to_string()]);
    t.row(vec!["requests".into(), summary.requests.to_string()]);
    t.row(vec!["keys".into(), summary.total_keys.to_string()]);
    t.row(vec![
        "frames (incl. warm-up)".into(),
        summary.frames.to_string(),
    ]);
    t.row(vec![
        "bytes read / written".into(),
        format!("{} / {}", summary.bytes_read, summary.bytes_written),
    ]);
    t.row(vec![
        "throughput (req/s)".into(),
        format!("{:.0}", summary.throughput_rps),
    ]);
    t.row(vec!["p50 (us)".into(), f2(summary.p50_us)]);
    t.row(vec!["p95 (us)".into(), f2(summary.p95_us)]);
    t.row(vec!["p99 (us)".into(), f2(summary.p99_us)]);
    t.row(vec![
        "rejected / expired / failed".into(),
        format!(
            "{} / {} / {}",
            summary.rejected, summary.expired, summary.failed
        ),
    ]);
    t.row(vec![
        "frame errors".into(),
        summary.frame_errors.to_string(),
    ]);
    let mut ct = Table::new(vec![
        "class", "max keys", "requests", "p50 us", "p95 us", "p99 us",
    ]);
    for c in &summary.classes {
        ct.row(vec![
            c.class.clone(),
            c.max_keys.to_string(),
            c.requests.to_string(),
            f2(c.p50_us),
            f2(c.p95_us),
            f2(c.p99_us),
        ]);
    }

    let json = net_json(&summary);
    let passed = failures.is_empty();
    let verdict = if passed {
        format!(
            "All {requests} wire replies match the independent-sort oracle \
             over {conns} connections; zero sheds, expiries, failures, and \
             frame errors; WireStats, ServiceStats, and the metrics \
             registry reconcile exactly."
        )
    } else {
        let mut v = String::from("FAILED:\n");
        for f in &failures {
            v.push_str("  - ");
            v.push_str(f);
            v.push('\n');
        }
        v
    };
    let report = format!(
        "{}\nPer-size-class end-to-end latency:\n\n{}\n{verdict}\n\n```json\n{json}```\n",
        t.render(),
        ct.render()
    );
    NetRun {
        report,
        json,
        metrics_json: metrics_doc,
        prometheus: prometheus_doc,
        passed,
    }
}

/// Run the wire benchmark and render it as an experiment.
#[must_use]
pub fn net(scale: Scale) -> Experiment {
    let run = run_net(
        DEFAULT_PROCS,
        default_requests(scale),
        DEFAULT_CONNS,
        DEFAULT_SEED,
    );
    Experiment {
        id: "net",
        title: "TCP wire frontend: loopback load over real sockets",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_wire_acceptance_load_passes_every_check() {
        // Smaller than the CI configuration, same checks — including the
        // three-way WireStats / ServiceStats / registry reconciliation.
        let run = run_net(4, 48, 4, DEFAULT_SEED);
        assert!(run.passed, "{}", run.report);
        assert!(run.json.contains("\"schema\": \"NET_1\""));
        assert!(run.json.contains("\"reconciled\": true"));
        assert!(run.report.contains("p99 (us)"));
        let metrics = run.metrics_json.expect("metrics are on");
        assert!(metrics.contains("bitonic_wire_frames_total"));
    }

    #[test]
    fn size_classes_cover_the_workload() {
        let bands = class_bands(4, 1 << 14);
        assert_eq!(class_of(&bands, 1), 0);
        assert_eq!(class_of(&bands, 3), 0);
        assert_eq!(class_of(&bands, 4), 1);
        assert_eq!(class_of(&bands, 64), 1);
        assert_eq!(class_of(&bands, 777), 2);
        assert_eq!(class_of(&bands, 2048), 3);
        assert_eq!(class_of(&bands, 1 << 20), 3);
    }
}
