//! Extension experiments beyond the Chapter 5 figures: the fat-tree
//! contention claim (Section 3.2.1, footnote 2), the Section 4.3 fusion,
//! and the Lemma 5 remap-shifting strategies.

use super::{Experiment, Scale};
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use bitonic_core::shift::{remaining_steps, ShiftStrategy, ShiftedSchedule};
use logp::fattree::{cyclic_blocked_root_traffic, smart_root_traffic, FatTree};
use spmd::runtime::critical_path_stats;
use spmd::{MessageMode, Phase};

/// Fat-tree link loads per remap: the smart schedule's aligned groups keep
/// all but the widest remaps off the top of the tree.
#[must_use]
pub fn ext_fattree() -> Experiment {
    let (n, p) = (1usize << 16, 16usize);
    let tree = FatTree::new(p);
    let mut t = Table::new(vec!["remap", "group size", "level-1 load", "root load"]);
    for (i, info) in logp::metrics::smart_schedule(n, p).iter().enumerate() {
        t.row(vec![
            i.to_string(),
            (1u64 << info.bits_changed).to_string(),
            f2(tree.group_exchange_load(n, info.bits_changed, 1)),
            f2(tree.root_load_group(n, info.bits_changed)),
        ]);
    }
    let mut body = t.render();
    body.push_str(&format!(
        "\nTotal root traffic (elements/uplink): smart {:.0} vs cyclic-blocked {:.0} ({:.1}x less)\n",
        smart_root_traffic(n, p),
        cyclic_blocked_root_traffic(n, p),
        cyclic_blocked_root_traffic(n, p) / smart_root_traffic(n, p).max(1.0),
    ));
    Experiment {
        id: "ext_fattree",
        title: "Extension: fat-tree top-switch contention (§3.2.1 fn.2)",
        body,
    }
}

/// Section 4.3 fusion and Figure 4.5 fast path, measured live: identical
/// R/V/M, but the pack/unpack wall-clock migrates into computation.
#[must_use]
pub fn ext_fusion(scale: Scale) -> Experiment {
    let p = 16;
    let n = (1usize << 18) / scale.shrink.max(1);
    let n = n.max(1 << 10);
    let keys = uniform_keys(n * p, 77);
    let mut expect = keys.clone();
    expect.sort_unstable();
    let mut t = Table::new(vec![
        "pipeline",
        "R",
        "V/n",
        "pack ms",
        "unpack ms",
        "compute ms",
        "sorted",
    ]);
    let configs: [(&str, Algorithm, LocalStrategy); 4] = [
        ("merges (Thm 2-3)", Algorithm::Smart, LocalStrategy::Merges),
        (
            "one sort/phase (Fig 4.5)",
            Algorithm::Smart,
            LocalStrategy::FullSort,
        ),
        (
            "canonical steps",
            Algorithm::Smart,
            LocalStrategy::Canonical,
        ),
        (
            "fused pack+merge (§4.3)",
            Algorithm::SmartFused,
            LocalStrategy::Merges,
        ),
    ];
    for (label, algo, strategy) in configs {
        let run = run_parallel_sort(&keys, p, MessageMode::Long, algo, strategy);
        let crit = critical_path_stats(&run.ranks);
        t.row(vec![
            label.to_string(),
            crit.remap_count().to_string(),
            format!("{:.2}", crit.elements_sent as f64 / n as f64),
            f2(crit.time(Phase::Pack).as_secs_f64() * 1e3),
            f2(crit.time(Phase::Unpack).as_secs_f64() * 1e3),
            f2(crit.time(Phase::Compute).as_secs_f64() * 1e3),
            (run.output == expect).to_string(),
        ]);
    }
    Experiment {
        id: "ext_fusion",
        title: "Extension: fusing pack/unpack into computation (§4.3, Fig 4.5)",
        body: t.render(),
    }
}

/// Lemma 5: total volume under the four remap-shifting strategies.
#[must_use]
pub fn ext_shifting() -> Experiment {
    let mut t = Table::new(vec![
        "lg n",
        "lg P",
        "V_Head/n",
        "V_Tail/n",
        "V_Middle1/n",
        "V_Middle2/n",
    ]);
    for (lgn, lgp) in [(4u32, 3u32), (5, 4), (6, 4), (8, 5), (10, 5)] {
        let n_total = 1usize << (lgn + lgp);
        let p = 1usize << lgp;
        let n = (n_total / p) as f64;
        let rem = remaining_steps(lgn, lgp);
        let vol =
            |s: ShiftStrategy| ShiftedSchedule::new(n_total, p, s).metrics().volume as f64 / n;
        let m1 = if rem >= 2 {
            f2(vol(ShiftStrategy::Middle1 { head: rem / 2 }))
        } else {
            "n/a".to_string()
        };
        let m2 = if lgn >= 2 && rem >= 1 {
            f2(vol(ShiftStrategy::Middle2 {
                head: (lgn - 1).min(rem.max(1)),
            }))
        } else {
            "n/a".to_string()
        };
        t.row(vec![
            lgn.to_string(),
            lgp.to_string(),
            f2(vol(ShiftStrategy::Head)),
            f2(vol(ShiftStrategy::Tail)),
            m1,
            m2,
        ]);
    }
    Experiment {
        id: "ext_shifting",
        title: "Extension: Lemma 5 remap shifting — volume per strategy",
        body: t.render(),
    }
}

/// Trace-driven LogGP simulation: replay each live run's per-rank
/// communication records through the cost model. Unlike the closed forms,
/// this makes sample sort's input sensitivity visible as *time* while the
/// oblivious bitonic sort is flat across distributions (Section 5.5).
#[must_use]
pub fn ext_simulated(scale: Scale) -> Experiment {
    use crate::workloads::{keys, Distribution};
    use baselines::{run_baseline, Baseline};
    let p = 16;
    let n = ((1usize << 18) / scale.shrink.max(1)).max(1 << 10);
    let params = logp::LogGpParams::meiko_cs2(p);
    let compute = 0.05; // µs per held key per phase — one O(n) pass
    let mut t = Table::new(vec!["algorithm", "input", "sim µs/key", "max recv skew"]);
    for dist in [Distribution::Uniform31, Distribution::LowEntropy] {
        let input = keys(n * p, dist, 123);
        let runs: Vec<(&str, Vec<Vec<logp::simulate::StepTrace>>)> = vec![
            (
                "Smart bitonic",
                run_parallel_sort(
                    &input,
                    p,
                    MessageMode::Long,
                    Algorithm::Smart,
                    LocalStrategy::Merges,
                )
                .ranks
                .iter()
                .map(|r| super::trace_of(&r.stats))
                .collect(),
            ),
            (
                "Sample",
                run_baseline(&input, p, MessageMode::Long, Baseline::Sample)
                    .ranks
                    .iter()
                    .map(|r| super::trace_of(&r.stats))
                    .collect(),
            ),
            (
                "Radix",
                run_baseline(&input, p, MessageMode::Long, Baseline::Radix)
                    .ranks
                    .iter()
                    .map(|r| super::trace_of(&r.stats))
                    .collect(),
            ),
        ];
        for (name, trace) in runs {
            let sim = logp::simulate::makespan_us_per_key(&trace, &params, compute, n * p);
            let max_recv = trace
                .iter()
                .flat_map(|rank| rank.iter().map(|s| s.received))
                .max()
                .unwrap_or(0);
            let mean_recv = {
                let (sum, cnt) = trace
                    .iter()
                    .flatten()
                    .fold((0u64, 0u64), |(s, c), st| (s + st.received, c + 1));
                (sum as f64 / cnt.max(1) as f64).max(1.0)
            };
            t.row(vec![
                name.to_string(),
                dist.name().to_string(),
                format!("{sim:.3}"),
                format!("{:.1}x", max_recv as f64 / mean_recv),
            ]);
        }
    }
    Experiment {
        id: "ext_simulated",
        title: "Extension: trace-driven LogGP simulation (skew becomes time)",
        body: t.render(),
    }
}
