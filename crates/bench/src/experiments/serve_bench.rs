//! `experiments serve` — open-loop load against the sort service.
//!
//! A deterministic client offers ~200 requests at a paced schedule that
//! does not depend on completions (open loop: a slow service builds a
//! queue instead of slowing the generator down). The mix deliberately
//! includes tiny requests (n < P), duplicate-heavy key sets, and both
//! sort directions, so the coalescer has real batching work to do.
//! Every reply is checked against an independently sorted oracle.
//!
//! Before the measured window the service is warmed with one request per
//! padded batch shape it can produce, so the measured window exercises
//! the steady state the warm pool is built for: the `--check` gate
//! demands *zero* plan-cache misses there, along with zero sheds, zero
//! expiries, zero failures, and a reported p99.
//!
//! The report ends with a machine-readable `SERVE_1` block
//! ([`crate::report::serve_json`]) carrying throughput and the
//! p50/p95/p99 reply latencies.

use super::{Experiment, Scale};
use crate::report::{f2, metrics_json, serve_json, ServeSummary, Table};
use crate::workloads::uniform_keys;
use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use sort_service::{ServiceConfig, SortRequest, SortService};
use std::time::{Duration, Instant};

/// Default machine size for the subcommand (the acceptance configuration).
pub const DEFAULT_PROCS: usize = 4;

/// Default offered load for the measured window.
pub const DEFAULT_REQUESTS: usize = 200;

/// Default master seed (fixed so CI runs are replayable).
pub const DEFAULT_SEED: u64 = 271_828;

/// Requests offered at a given scale (the load is cheap; only the paper
/// scale bothers raising it).
#[must_use]
pub fn default_requests(scale: Scale) -> usize {
    if scale.shrink == 1 {
        DEFAULT_REQUESTS * 4
    } else {
        DEFAULT_REQUESTS
    }
}

/// One finished load-generation run.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Human-readable report (tables + the `SERVE_1` block).
    pub report: String,
    /// The bare `SERVE_1` JSON document, for composition into `BENCH_4`.
    pub json: String,
    /// The final registry as a `METRICS_1` document (absent when the run
    /// was started with metrics off).
    pub metrics_json: Option<String>,
    /// The final registry in Prometheus text exposition format.
    pub prometheus: Option<String>,
    /// The run's 99th-percentile reply latency, for A/B comparisons.
    pub p99_us: f64,
    /// Whether every acceptance check held.
    pub passed: bool,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The deterministic request mix: `(keys, direction, inter-arrival gap)`.
/// Sizes span n < P through a few thousand keys; every fourth request is
/// duplicate-heavy; directions alternate pseudo-randomly. Shared with
/// the wire benchmark (`net_bench`), which drives the same mix through
/// real sockets.
pub(crate) fn workload(
    requests: usize,
    procs: usize,
    seed: u64,
) -> Vec<(Vec<u32>, Direction, Duration)> {
    let sizes = [
        1,
        2,
        procs - 1,
        procs,
        7,
        16,
        33,
        64,
        100,
        256,
        777,
        1024,
        2048,
    ];
    let mut rng = seed | 1;
    (0..requests)
        .map(|i| {
            let n = sizes[(xorshift(&mut rng) % sizes.len() as u64) as usize];
            let mut keys = uniform_keys(n, seed.wrapping_add(i as u64));
            if i % 4 == 0 {
                // Duplicate-heavy: tag-partitioned batching must keep the
                // right *count* of each duplicate per request.
                for k in &mut keys {
                    *k %= 8;
                }
            }
            let dir = if xorshift(&mut rng) & 1 == 0 {
                Direction::Ascending
            } else {
                Direction::Descending
            };
            let gap = Duration::from_micros(20 + xorshift(&mut rng) % 100);
            (keys, dir, gap)
        })
        .collect()
}

pub(crate) fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

/// Warm every padded batch shape the service can produce: one request of
/// `per_rank * procs` keys per power-of-two `per_rank`, each waited on
/// before the next so each forms its own batch on the (single) machine.
fn warm_shapes(service: &SortService, cfg: &ServiceConfig) -> u64 {
    let mut warmed = 0;
    let mut per_rank = 2usize;
    while per_rank * cfg.procs <= cfg.max_request_keys {
        let keys = uniform_keys(per_rank * cfg.procs, 7 + per_rank as u64);
        let ticket = service
            .submit(SortRequest::ascending(keys))
            .expect("warm-up request admitted");
        ticket.wait().expect("warm-up request sorts");
        warmed += 1;
        per_rank *= 2;
    }
    // The dispatcher publishes pool counters after it replies; wait for
    // the last warm-up batch's counters before snapshotting.
    let t = Instant::now();
    while service.stats().batches < warmed && t.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(1));
    }
    warmed
}

/// Drive the service at `procs` ranks with `requests` offered requests
/// and render the report. Deterministic in `seed` up to host timing.
/// Metrics are on; when the run finishes, the registry must reconcile
/// exactly with the service's own `ServiceStats` or the run fails.
///
/// # Panics
/// Panics if `procs` is not a power of two (machine requirement).
#[must_use]
pub fn run_serve(procs: usize, requests: usize, seed: u64) -> ServeRun {
    run_serve_metrics(procs, requests, seed, true)
}

/// [`run_serve`] with the metrics plane switchable, for A/B overhead
/// measurements (`metrics: false` skips registration, instrumentation,
/// and the reconciliation gate).
#[must_use]
pub fn run_serve_metrics(procs: usize, requests: usize, seed: u64, metrics: bool) -> ServeRun {
    assert!(procs.is_power_of_two(), "machine sizes are powers of two");
    let mut cfg = ServiceConfig::new(procs);
    // Cap batches at one max-size request so warm-up (which is bounded by
    // the per-request limit) can visit every padded shape batches reach.
    cfg.max_batch_keys = cfg.max_request_keys;
    cfg.metrics = metrics;
    cfg.validate();

    let service = SortService::start(cfg);
    let handle = service.metrics();
    let warmup_batches = warm_shapes(&service, &cfg);
    let warm = service.stats();

    let load = workload(requests, procs, seed);
    let total_keys: u64 = load.iter().map(|(k, _, _)| k.len() as u64).sum();
    let started = Instant::now();
    let mut waiters = Vec::with_capacity(requests);
    let mut shed_details: Vec<String> = Vec::new();
    for (i, (keys, dir, gap)) in load.into_iter().enumerate() {
        std::thread::sleep(gap);
        let expected = sorted_independently(&keys, dir);
        let submitted = Instant::now();
        match service.submit(SortRequest::new(keys, dir)) {
            Ok(ticket) => waiters.push(std::thread::spawn(move || {
                let reply = ticket.wait();
                let latency = submitted.elapsed();
                let verdict = match reply {
                    Ok(out) if out == expected => Ok(()),
                    Ok(_) => Err(format!("request {i}: reply differs from the oracle")),
                    Err(e) => Err(format!("request {i}: {e}")),
                };
                (latency, verdict)
            })),
            Err(r) => shed_details.push(format!("request {i} shed: {r}")),
        }
    }

    let mut failures = shed_details;
    let mut latencies_us: Vec<f64> = Vec::with_capacity(waiters.len());
    for w in waiters {
        let (latency, verdict) = w.join().expect("waiter thread");
        latencies_us.push(latency.as_secs_f64() * 1e6);
        if let Err(e) = verdict {
            failures.push(e);
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let report = service.shutdown();
    let stats = report.stats;

    // Reconcile the metrics registry against the service's own counters:
    // two independent tallies of the same events must agree exactly.
    let mut metrics_doc = None;
    let mut prometheus_doc = None;
    if let Some(m) = handle {
        let snap = m.snapshot();
        let pairs: [(&str, u64, u64); 9] = [
            (
                "submitted",
                snap.counter_total("bitonic_requests_submitted_total"),
                stats.submitted,
            ),
            (
                "admitted",
                snap.counter_total("bitonic_requests_admitted_total"),
                stats.admitted,
            ),
            (
                "shed",
                snap.counter_total("bitonic_requests_shed_total"),
                stats.shed,
            ),
            (
                "expired",
                snap.counter_total("bitonic_requests_expired_total"),
                stats.expired,
            ),
            (
                "failed",
                snap.counter_total("bitonic_requests_failed_total"),
                stats.failed,
            ),
            (
                "completed",
                snap.counter_total("bitonic_requests_completed_total"),
                stats.completed,
            ),
            (
                "batches",
                snap.counter_total("bitonic_batches_total"),
                stats.batches,
            ),
            (
                "plan hits",
                snap.counter_total("bitonic_plan_cache_hits_total"),
                stats.pool.plan_hits,
            ),
            (
                "plan misses",
                snap.counter_total("bitonic_plan_cache_misses_total"),
                stats.pool.plan_misses,
            ),
        ];
        for (name, registry, stat) in pairs {
            if registry != stat {
                failures.push(format!(
                    "metrics reconcile: {name} registry={registry} stats={stat}"
                ));
            }
        }
        let latency_count = snap.histogram_count("bitonic_request_latency_us");
        if latency_count != stats.completed {
            failures.push(format!(
                "metrics reconcile: latency histogram holds {latency_count} samples, \
                 {} requests completed",
                stats.completed
            ));
        }
        metrics_doc = Some(metrics_json(&snap));
        prometheus_doc = Some(obs::encode_prometheus(&snap));
    }

    latencies_us.sort_by(f64::total_cmp);
    let completed = stats.completed.saturating_sub(warm.completed);
    let summary = ServeSummary {
        procs,
        machines: cfg.machines,
        requests: requests as u64,
        total_keys,
        batches: stats.batches.saturating_sub(warmup_batches),
        shed: stats.shed,
        expired: stats.expired,
        failed: stats.failed,
        throughput_rps: completed as f64 / wall,
        throughput_keys: total_keys as f64 / wall,
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        plan_hit_rate: stats.pool.plan_hit_rate(),
        steady_plan_misses: stats.pool.plan_misses - warm.pool.plan_misses,
    };

    if summary.shed > 0 {
        failures.push(format!("{} requests shed at nominal load", summary.shed));
    }
    if summary.expired > 0 {
        failures.push(format!("{} requests expired", summary.expired));
    }
    if summary.failed > 0 {
        failures.push(format!(
            "{} requests lost to failed batches",
            summary.failed
        ));
    }
    if summary.steady_plan_misses > 0 {
        failures.push(format!(
            "{} plan-cache misses after warm-up (steady state must hit 100%)",
            summary.steady_plan_misses
        ));
    }
    if summary.p99_us <= 0.0 {
        failures.push("no p99 latency reported".into());
    }

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["requests".into(), summary.requests.to_string()]);
    t.row(vec!["keys".into(), summary.total_keys.to_string()]);
    t.row(vec!["batches".into(), summary.batches.to_string()]);
    t.row(vec![
        "requests / batch".into(),
        f2(summary.requests as f64 / summary.batches.max(1) as f64),
    ]);
    t.row(vec![
        "throughput (req/s)".into(),
        format!("{:.0}", summary.throughput_rps),
    ]);
    t.row(vec!["p50 (us)".into(), f2(summary.p50_us)]);
    t.row(vec!["p95 (us)".into(), f2(summary.p95_us)]);
    t.row(vec!["p99 (us)".into(), f2(summary.p99_us)]);
    t.row(vec![
        "shed / expired / failed".into(),
        format!(
            "{} / {} / {}",
            summary.shed, summary.expired, summary.failed
        ),
    ]);
    t.row(vec![
        "plan-cache hit rate".into(),
        format!("{:.1}%", summary.plan_hit_rate * 100.0),
    ]);
    t.row(vec![
        "steady-state plan misses".into(),
        summary.steady_plan_misses.to_string(),
    ]);

    let json = serve_json(&summary);
    let passed = failures.is_empty();
    let verdict = if passed {
        format!(
            "All {requests} replies match the independent-sort oracle; \
             zero sheds, zero expiries, zero failed batches; steady-state \
             plan-cache hit rate 100% ({warmup_batches} warm-up shapes)."
        )
    } else {
        let mut v = String::from("FAILED:\n");
        for f in &failures {
            v.push_str("  - ");
            v.push_str(f);
            v.push('\n');
        }
        v
    };
    let report = format!("{}\n{verdict}\n\n```json\n{json}```\n", t.render());
    ServeRun {
        report,
        json,
        metrics_json: metrics_doc,
        prometheus: prometheus_doc,
        p99_us: summary.p99_us,
        passed,
    }
}

/// Run the serving benchmark and render it as an experiment.
#[must_use]
pub fn serve(scale: Scale) -> Experiment {
    let run = run_serve(DEFAULT_PROCS, default_requests(scale), DEFAULT_SEED);
    Experiment {
        id: "serve",
        title: "Sort-as-a-service: open-loop load, batching, and latency SLOs",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_acceptance_load_passes_every_check() {
        // A smaller offered load than the CI configuration, same checks —
        // including the registry-vs-ServiceStats reconciliation gate.
        let run = run_serve(4, 60, DEFAULT_SEED);
        assert!(run.passed, "{}", run.report);
        assert!(run.json.contains("\"schema\": \"SERVE_1\""));
        assert!(run.report.contains("p99 (us)"));
        let metrics = run.metrics_json.expect("metrics are on by default");
        assert!(metrics.contains("\"schema\": \"METRICS_1\""));
        assert!(metrics.contains("bitonic_requests_completed_total"));
        let prom = run.prometheus.expect("prometheus view present");
        assert!(prom.contains("# TYPE bitonic_request_latency_us histogram"));
    }

    #[test]
    fn metrics_off_still_passes_and_emits_no_registry() {
        let run = run_serve_metrics(4, 40, DEFAULT_SEED, false);
        assert!(run.passed, "{}", run.report);
        assert!(run.metrics_json.is_none());
        assert!(run.prometheus.is_none());
    }

    #[test]
    fn the_workload_mixes_directions_and_tiny_requests() {
        let load = workload(64, 4, DEFAULT_SEED);
        assert!(load.iter().any(|(k, _, _)| k.len() < 4), "n < P present");
        assert!(load.iter().any(|(_, d, _)| *d == Direction::Ascending));
        assert!(load.iter().any(|(_, d, _)| *d == Direction::Descending));
        // Deterministic: the same seed reproduces the same mix.
        let again = workload(64, 4, DEFAULT_SEED);
        assert_eq!(load, again);
    }

    #[test]
    fn percentiles_interpolate_the_sorted_tail() {
        let us: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&us, 50.0), 51.0);
        assert_eq!(percentile(&us, 99.0), 99.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
    }
}
