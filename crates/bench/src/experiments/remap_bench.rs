//! `remap_bench` — flat vs legacy remap engine, reported as `BENCH_1` JSON.
//!
//! Measures the remap engine's hot-path claim directly: blocked↔cyclic
//! round trips (the access pattern every sort in the workspace reduces to)
//! through the allocation-free flat path ([`SortContext`]) and through the
//! legacy nested-Vec path (a fresh [`RemapPlan`] plus [`RemapPlan::apply`]
//! per remap, exactly as the pre-context sorts ran), in both message
//! modes, at the thesis's P = 16 with 64K keys per rank (shrunk by the
//! host scale). The body is a [`crate::report::bench_json`] document —
//! the stable `BENCH_1` schema — so external tooling can track the
//! throughput and the R/V/M counters of each configuration.

use super::{Experiment, Scale};
use crate::report::{bench_json, f2, BenchCounters, BenchRecord};
use bitonic_core::layout::{blocked, cyclic};
use bitonic_core::{RemapPlan, SortContext};
use spmd::runtime::critical_path_stats;
use spmd::{run_spmd, CommStats, MessageMode};
use std::time::Instant;

const P: usize = 16;
/// Blocked↔cyclic round trips per timed run (2 remaps each).
const ROUNDS: usize = 8;
/// Timed runs per configuration; the minimum is reported.
const SAMPLES: usize = 3;

/// Critical-path seconds for `ROUNDS` round trips at `n` keys per rank
/// (slowest rank wins; one untimed warm-up round trip first), plus the
/// run's critical-path counters (which include the warm-up remaps).
fn run_once(n: usize, mode: MessageMode, flat: bool) -> (f64, CommStats) {
    let lg_n = n.trailing_zeros();
    let lg_p = P.trailing_zeros();
    let results = run_spmd::<u64, _, _>(P, mode, move |comm| {
        let me = comm.rank();
        let b = blocked(lg_n + lg_p, lg_n);
        let c = cyclic(lg_n + lg_p, lg_n);
        let mut data: Vec<u64> = (0..n).map(|x| (me * n + x) as u64).collect();
        if flat {
            let mut ctx = SortContext::new();
            ctx.remap(comm, &b, &c, &mut data);
            ctx.remap(comm, &c, &b, &mut data);
            comm.barrier();
            let t = Instant::now();
            for _ in 0..ROUNDS {
                ctx.remap(comm, &b, &c, &mut data);
                ctx.remap(comm, &c, &b, &mut data);
            }
            comm.barrier();
            t.elapsed().as_secs_f64()
        } else {
            // Pre-context hot path: every remap rebuilt its plan from a
            // layout walk and packed into freshly allocated nested Vecs —
            // exactly what the sorts did before [`SortContext`] existed.
            data = RemapPlan::new(&b, &c, me).apply(comm, &data);
            data = RemapPlan::new(&c, &b, me).apply(comm, &data);
            comm.barrier();
            let t = Instant::now();
            for _ in 0..ROUNDS {
                data = RemapPlan::new(&b, &c, me).apply(comm, &data);
                data = RemapPlan::new(&c, &b, me).apply(comm, &data);
            }
            comm.barrier();
            t.elapsed().as_secs_f64()
        }
    });
    let secs = results.iter().map(|r| r.output).fold(0.0, f64::max);
    (secs, critical_path_stats(&results))
}

fn best_of(n: usize, mode: MessageMode, flat: bool) -> (f64, CommStats) {
    (0..SAMPLES)
        .map(|_| run_once(n, mode, flat))
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("SAMPLES > 0")
}

/// Run the benchmark and return the raw `BENCH_1` records plus the
/// rendered speedup note (also used to compose `BENCH_4.json`).
#[must_use]
pub fn records(scale: Scale) -> (Vec<BenchRecord>, String) {
    // Thesis configuration: 64K keys per rank; short messages pay per
    // element, so they get the same extra 4x shrink as Table 5.3.
    let n_long = (65_536 / scale.shrink).max(256).next_power_of_two();
    let n_short = (n_long / 4).max(256).next_power_of_two();

    let mut records = Vec::new();
    let mut speedups = String::new();
    for (mode_label, mode, n) in [
        ("long", MessageMode::Long, n_long),
        ("short", MessageMode::Short, n_short),
    ] {
        let (legacy, legacy_stats) = best_of(n, mode, false);
        let (flat, flat_stats) = best_of(n, mode, true);
        for (path, secs, stats) in [
            ("legacy", legacy, &legacy_stats),
            ("flat", flat, &flat_stats),
        ] {
            // Keys remapped per rank inside the timed region.
            let keys_moved = n * 2 * ROUNDS;
            records.push(BenchRecord {
                name: format!("remap_bench/{mode_label}/{path}"),
                keys: n,
                procs: P,
                mode: mode_label.into(),
                ns_per_key: secs * 1e9 / keys_moved as f64,
                counters: Some(BenchCounters::of(stats)),
            });
        }
        speedups.push_str(&format!("{mode_label} {}x", f2(legacy / flat)));
        if mode_label == "long" {
            speedups.push_str(", ");
        }
    }
    (records, speedups)
}

/// Run the benchmark and render its `BENCH_1` report.
#[must_use]
pub fn remap_bench(scale: Scale) -> Experiment {
    let (records, speedups) = records(scale);
    let body = format!(
        "Flat-path speedup over legacy: {speedups} (rounds={ROUNDS}, \
         samples={SAMPLES}, min-of reported; counters include the warm-up \
         round trip).\n\n```json\n{}```\n",
        bench_json(&records)
    );
    Experiment {
        id: "remap_bench",
        title: "Remap engine: flat apply_into vs legacy apply, P=16",
        body,
    }
}
