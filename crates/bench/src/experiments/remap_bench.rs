//! `remap_bench` — flat vs legacy remap engine, reported as JSON.
//!
//! Measures the PR's hot-path claim directly: blocked↔cyclic round trips
//! (the access pattern every sort in the workspace reduces to) through
//! the allocation-free flat path ([`SortContext`]) and through the legacy
//! nested-Vec path (a fresh [`RemapPlan`] plus [`RemapPlan::apply`] per
//! remap, exactly as the pre-PR sorts ran), in both message modes, at
//! the thesis's P = 16 with 64K keys per rank (shrunk by the host scale).
//! The body is a JSON object so external tooling can track the speedup.

use super::{Experiment, Scale};
use bitonic_core::layout::{blocked, cyclic};
use bitonic_core::{RemapPlan, SortContext};
use spmd::{run_spmd, MessageMode};
use std::time::Instant;

const P: usize = 16;
/// Blocked↔cyclic round trips per timed run (2 remaps each).
const ROUNDS: usize = 8;
/// Timed runs per configuration; the minimum is reported.
const SAMPLES: usize = 3;

/// Critical-path seconds for `ROUNDS` round trips at `n` keys per rank
/// (slowest rank wins; one untimed warm-up round trip first).
fn run_once(n: usize, mode: MessageMode, flat: bool) -> f64 {
    let lg_n = n.trailing_zeros();
    let lg_p = P.trailing_zeros();
    let results = run_spmd::<u64, _, _>(P, mode, move |comm| {
        let me = comm.rank();
        let b = blocked(lg_n + lg_p, lg_n);
        let c = cyclic(lg_n + lg_p, lg_n);
        let mut data: Vec<u64> = (0..n).map(|x| (me * n + x) as u64).collect();
        if flat {
            let mut ctx = SortContext::new();
            ctx.remap(comm, &b, &c, &mut data);
            ctx.remap(comm, &c, &b, &mut data);
            comm.barrier();
            let t = Instant::now();
            for _ in 0..ROUNDS {
                ctx.remap(comm, &b, &c, &mut data);
                ctx.remap(comm, &c, &b, &mut data);
            }
            comm.barrier();
            t.elapsed().as_secs_f64()
        } else {
            // Pre-PR hot path: every remap rebuilt its plan from a layout
            // walk and packed into freshly allocated nested Vecs — exactly
            // what the sorts did before [`SortContext`] existed.
            data = RemapPlan::new(&b, &c, me).apply(comm, &data);
            data = RemapPlan::new(&c, &b, me).apply(comm, &data);
            comm.barrier();
            let t = Instant::now();
            for _ in 0..ROUNDS {
                data = RemapPlan::new(&b, &c, me).apply(comm, &data);
                data = RemapPlan::new(&c, &b, me).apply(comm, &data);
            }
            comm.barrier();
            t.elapsed().as_secs_f64()
        }
    });
    results.iter().map(|r| r.output).fold(0.0, f64::max)
}

fn best_of(n: usize, mode: MessageMode, flat: bool) -> f64 {
    (0..SAMPLES)
        .map(|_| run_once(n, mode, flat))
        .fold(f64::INFINITY, f64::min)
}

/// Run the benchmark and render its JSON report.
#[must_use]
pub fn remap_bench(scale: Scale) -> Experiment {
    // Thesis configuration: 64K keys per rank; short messages pay per
    // element, so they get the same extra 4x shrink as Table 5.3.
    let n_long = (65_536 / scale.shrink).max(256).next_power_of_two();
    let n_short = (n_long / 4).max(256).next_power_of_two();

    let mut entries = String::new();
    let mut speedups = String::new();
    for (mode_label, mode, n) in [
        ("long", MessageMode::Long, n_long),
        ("short", MessageMode::Short, n_short),
    ] {
        let legacy = best_of(n, mode, false);
        let flat = best_of(n, mode, true);
        for (path, secs) in [("legacy", legacy), ("flat", flat)] {
            let melem = (n * P * 2 * ROUNDS) as f64 / secs / 1e6;
            entries.push_str(&format!(
                "    {{\"mode\": \"{mode_label}\", \"path\": \"{path}\", \
                 \"keys_per_rank\": {n}, \"seconds\": {secs:.6}, \
                 \"melem_per_s\": {melem:.2}}},\n"
            ));
        }
        speedups.push_str(&format!("    \"{mode_label}\": {:.2},\n", legacy / flat));
    }
    entries.truncate(entries.len().saturating_sub(2));
    speedups.truncate(speedups.len().saturating_sub(2));

    let body = format!(
        "```json\n{{\n  \"id\": \"remap_bench\",\n  \"procs\": {P},\n  \
         \"rounds\": {ROUNDS},\n  \"samples\": {SAMPLES},\n  \"results\": [\n{entries}\n  ],\n  \
         \"speedup_flat_over_legacy\": {{\n{speedups}\n  }}\n}}\n```\n"
    );
    Experiment {
        id: "remap_bench",
        title: "Remap engine: flat apply_into vs legacy apply, P=16",
        body,
    }
}
