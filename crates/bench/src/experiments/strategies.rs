//! Tables 5.1/5.2 and Figures 5.1/5.2: the three bitonic variants on 32
//! processors, 128K–1M keys per processor.

use super::{metrics_of, Experiment, Scale};
use crate::paper;
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::predict::{predict, CostModel, Messages, StrategyKind};
use logp::LogGpParams;
use spmd::MessageMode;

const P: usize = 32;
const PAPER_SIZES_K: [usize; 4] = [128, 256, 512, 1024];

fn model_prediction(kind: StrategyKind, n: usize) -> f64 {
    let params = LogGpParams::meiko_cs2(P);
    let model = CostModel::meiko_cs2();
    predict(kind, n, P, &params, &model, Messages::Long { fused: true }).total_us()
}

/// Table 5.1 / Figure 5.2 — µs per key, model at paper scale vs published.
#[must_use]
pub fn table5_1() -> Experiment {
    let mut t = Table::new(vec![
        "keys/proc (K)",
        "BM model",
        "BM paper",
        "CB model",
        "CB paper",
        "Smart model",
        "Smart paper",
    ]);
    for (i, &kk) in PAPER_SIZES_K.iter().enumerate() {
        let n = kk * 1024;
        let (_, bm_p, cb_p, s_p) = paper::TABLE_5_1[i];
        t.row(vec![
            kk.to_string(),
            f2(model_prediction(StrategyKind::BlockedMerge, n)),
            f2(bm_p),
            f2(model_prediction(StrategyKind::CyclicBlocked, n)),
            f2(cb_p),
            f2(model_prediction(StrategyKind::Smart, n)),
            f2(s_p),
        ]);
    }
    Experiment {
        id: "table5_1",
        title: "Table 5.1 / Fig 5.2: execution time per key (µs), P=32",
        body: t.render(),
    }
}

/// Table 5.2 / Figure 5.1 — total seconds, model at paper scale vs
/// published.
#[must_use]
pub fn table5_2() -> Experiment {
    let params = LogGpParams::meiko_cs2(P);
    let model = CostModel::meiko_cs2();
    let mut t = Table::new(vec![
        "keys/proc (K)",
        "BM model",
        "BM paper",
        "CB model",
        "CB paper",
        "Smart model",
        "Smart paper",
    ]);
    for (i, &kk) in PAPER_SIZES_K.iter().enumerate() {
        let n = kk * 1024;
        let (_, bm_p, cb_p, s_p) = paper::TABLE_5_2[i];
        // The thesis's totals are per-key × total keys N = n·P (its per-key
        // figures divide the makespan by N).
        let secs = |kind| {
            predict(kind, n, P, &params, &model, Messages::Long { fused: true })
                .total_seconds(n * P)
        };
        t.row(vec![
            kk.to_string(),
            f2(secs(StrategyKind::BlockedMerge)),
            f2(bm_p),
            f2(secs(StrategyKind::CyclicBlocked)),
            f2(cb_p),
            f2(secs(StrategyKind::Smart)),
            f2(s_p),
        ]);
    }
    Experiment {
        id: "table5_2",
        title: "Table 5.2 / Fig 5.1: total execution time (s), P=32",
        body: t.render(),
    }
}

/// Live runs of the three algorithms at host scale: exact R/V/M counters
/// (these match the thesis formulas regardless of hardware) plus measured
/// wall-clock per key on the thread machine.
#[must_use]
pub fn measured(scale: Scale) -> Experiment {
    let mut t = Table::new(vec![
        "keys/proc",
        "algorithm",
        "R",
        "V/n",
        "M",
        "wall µs/key",
        "sorted",
    ]);
    for &kk in &PAPER_SIZES_K[..2] {
        let n = (kk * 1024 / scale.shrink).max(64);
        let keys = uniform_keys(n * P, 42);
        let mut expect = keys.clone();
        expect.sort_unstable();
        for algo in [
            Algorithm::BlockedMerge,
            Algorithm::CyclicBlocked,
            Algorithm::Smart,
        ] {
            let run = run_parallel_sort(&keys, P, MessageMode::Long, algo, LocalStrategy::Merges);
            let m = metrics_of(&run.ranks[0].stats);
            t.row(vec![
                n.to_string(),
                algo.name().to_string(),
                m.remaps.to_string(),
                format!("{:.2}", m.volume as f64 / n as f64),
                m.messages.to_string(),
                f2(run.elapsed.as_secs_f64() * 1e6 / (n * P) as f64),
                (run.output == expect).to_string(),
            ]);
        }
    }
    Experiment {
        id: "strategies_measured",
        title: "Live runs (host scale): counters match Section 3.4 exactly",
        body: t.render(),
    }
}
