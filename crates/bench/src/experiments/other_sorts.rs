//! Figures 5.7/5.8: bitonic vs radix vs sample sort on 16 and 32
//! processors.

use super::{Experiment, Scale};
use crate::report::{f2, Table};
use crate::workloads::uniform_keys;
use baselines::{run_baseline, Baseline};
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use logp::predict::{predict, CostModel, Messages, StrategyKind};
use logp::LogGpParams;
use spmd::MessageMode;

fn comparison(p: usize, id: &'static str, title: &'static str, scale: Scale) -> Experiment {
    let params = LogGpParams::meiko_cs2(p);
    let model = CostModel::meiko_cs2();
    let fused = Messages::Long { fused: true };
    let mut t = Table::new(vec![
        "keys/proc (K, paper)",
        "bitonic model",
        "radix model",
        "sample model",
        "live bitonic ok",
        "live radix ok",
        "live sample ok",
    ]);
    for kk in [16usize, 64, 256, 1024] {
        let n_model = kk * 1024;
        let us = |kind| f2(predict(kind, n_model, p, &params, &model, fused).total_us());
        let n_live = (n_model / scale.shrink).max(64);
        let keys = uniform_keys(n_live * p, 55);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let bitonic = run_parallel_sort(
            &keys,
            p,
            MessageMode::Long,
            Algorithm::Smart,
            LocalStrategy::Merges,
        );
        let radix = run_baseline(&keys, p, MessageMode::Long, Baseline::Radix);
        let sample = run_baseline(&keys, p, MessageMode::Long, Baseline::Sample);
        t.row(vec![
            kk.to_string(),
            us(StrategyKind::Smart),
            us(StrategyKind::RadixSort),
            us(StrategyKind::SampleSort),
            (bitonic.output == expect).to_string(),
            (radix.output == expect).to_string(),
            (sample.output == expect).to_string(),
        ]);
    }
    Experiment {
        id,
        title,
        body: t.render(),
    }
}

/// Figure 5.7 — P = 16: bitonic beats radix across the sweep; sample wins.
#[must_use]
pub fn fig5_7(scale: Scale) -> Experiment {
    comparison(
        16,
        "fig5_7",
        "Fig 5.7: sample/radix/bitonic µs per key, P=16",
        scale,
    )
}

/// Figure 5.8 — P = 32: bitonic beats radix only for small data sets.
#[must_use]
pub fn fig5_8(scale: Scale) -> Experiment {
    comparison(
        32,
        "fig5_8",
        "Fig 5.8: sample/radix/bitonic µs per key, P=32",
        scale,
    )
}
