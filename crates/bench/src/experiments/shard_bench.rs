//! `experiments shard` — sharded serving against a single-pool baseline.
//!
//! The head-of-line problem this measures: a single pool's dispatcher is
//! serial, so a bulk batch parks every small interactive request behind
//! a multi-millisecond machine run no matter how many warm machines the
//! pool holds. Sharding by size class gives small requests their own
//! dispatcher and pool; bulk runs no longer sit in front of them.
//!
//! The benchmark offers the *same* deterministic mixed load — mostly
//! small sorts with a steady minority of band-limit bulk sorts — to two
//! services with **equal total machine count**: a single pool with all
//! the machines, and a [`ShardedService`] splitting them across size
//! classes. Every reply from both is checked against the independent
//! sort oracle; latencies are attributed to the size class the router
//! would pick, so the per-class percentiles compare like for like.
//!
//! The report ends with a machine-readable `SHARD_1` block
//! ([`crate::report::shard_json`]) carrying per-class p50/p95/p99 for
//! the sharded run and the baseline's p99 for the same class — the
//! small-class row is the one the tentpole claim rides on. The `--check`
//! gate demands zero sheds, zero expiries (missed deadlines), zero
//! failed batches, and zero oracle mismatches from *both* services; the
//! latency comparison is reported, not gated (CI hosts are too noisy to
//! gate on).

use super::Scale;
use crate::report::{f2, metrics_json, shard_json, ClassLatency, ShardSummary, Table};
use crate::workloads::uniform_keys;
use bitonic_core::tagged::sorted_independently;
use bitonic_network::Direction;
use sort_service::{
    Rejection, ServiceConfig, ShardedConfig, ShardedService, SortRequest, SortService, Ticket,
};
use std::time::{Duration, Instant};

/// Default machine size for the subcommand (the acceptance configuration).
pub const DEFAULT_PROCS: usize = 4;

/// Default shard count: the canonical small/bulk split.
pub const DEFAULT_SHARDS: usize = 2;

/// Default offered load for the measured window (each request is offered
/// twice: once to the baseline, once to the sharded service).
pub const DEFAULT_REQUESTS: usize = 150;

/// Default master seed (fixed so CI runs are replayable).
pub const DEFAULT_SEED: u64 = 314_159;

/// Requests offered at a given scale.
#[must_use]
pub fn default_requests(scale: Scale) -> usize {
    if scale.shrink == 1 {
        DEFAULT_REQUESTS * 4
    } else {
        DEFAULT_REQUESTS
    }
}

/// One finished sharded-vs-baseline run.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// Human-readable report (tables + the `SHARD_1` block).
    pub report: String,
    /// The bare `SHARD_1` JSON document, for composition into `BENCH_5`.
    pub json: String,
    /// Whether every acceptance check held (correctness only — sheds,
    /// expiries, failures, oracle mismatches).
    pub passed: bool,
    /// Whether the small class's sharded p99 beat the baseline's
    /// (reported in `BENCH_5.json`; not part of `passed`).
    pub small_p99_improved: bool,
    /// The sharded service's final registry as a `METRICS_1` document.
    pub metrics_json: Option<String>,
    /// The same registry in Prometheus text exposition format.
    pub prometheus: Option<String>,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The deterministic mixed load: `(keys, direction, inter-arrival gap)`.
/// Four of every five requests are small (n < P through a few hundred
/// keys, every fourth duplicate-heavy); every fifth is a bulk sort at
/// the top band's limit, so it routes past every smaller class and
/// occupies a machine for a long run.
fn workload(
    requests: usize,
    procs: usize,
    bulk_keys: usize,
    seed: u64,
) -> Vec<(Vec<u32>, Direction, Duration)> {
    let small_sizes = [1, 2, procs - 1, procs, 7, 16, 33, 64, 100, 256];
    let mut rng = seed | 1;
    (0..requests)
        .map(|i| {
            let n = if i % 5 == 4 {
                bulk_keys - (xorshift(&mut rng) % 64) as usize
            } else {
                small_sizes[(xorshift(&mut rng) % small_sizes.len() as u64) as usize]
            };
            let mut keys = uniform_keys(n, seed.wrapping_add(i as u64));
            if i % 4 == 0 {
                for k in &mut keys {
                    *k %= 8;
                }
            }
            let dir = if xorshift(&mut rng) & 1 == 0 {
                Direction::Ascending
            } else {
                Direction::Descending
            };
            let gap = Duration::from_micros(20 + xorshift(&mut rng) % 80);
            (keys, dir, gap)
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx]
}

/// What one open-loop pass over a service produced.
struct Drive {
    /// Per completed request: `(class index, latency µs)`.
    latencies: Vec<(usize, f64)>,
    /// Human-readable failures: sheds, expiries, oracle mismatches.
    failures: Vec<String>,
    /// Oracle mismatches among the failures.
    mismatches: u64,
}

/// Offer `load` open-loop to `submit`, classifying each request with
/// `class_of` and checking every reply against the oracle.
fn drive(
    tag: &str,
    load: &[(Vec<u32>, Direction, Duration)],
    class_of: &dyn Fn(usize) -> usize,
    submit: &dyn Fn(SortRequest) -> Result<Ticket, Rejection>,
) -> Drive {
    let mut waiters = Vec::with_capacity(load.len());
    let mut failures = Vec::new();
    for (i, (keys, dir, gap)) in load.iter().enumerate() {
        std::thread::sleep(*gap);
        let class = class_of(keys.len());
        let expected = sorted_independently(keys, *dir);
        let submitted = Instant::now();
        match submit(SortRequest::new(keys.clone(), *dir)) {
            Ok(ticket) => waiters.push((
                class,
                std::thread::spawn(move || {
                    let reply = ticket.wait();
                    let latency = submitted.elapsed();
                    let verdict = match reply {
                        Ok(out) if out == expected => Ok(()),
                        Ok(_) => Err(format!("request {i}: reply differs from the oracle")),
                        Err(e) => Err(format!("request {i}: {e}")),
                    };
                    (latency, verdict)
                }),
            )),
            Err(r) => failures.push(format!("{tag}: request {i} shed: {r}")),
        }
    }
    let mut latencies = Vec::with_capacity(waiters.len());
    let mut mismatches = 0u64;
    for (class, w) in waiters {
        let (latency, verdict) = w.join().expect("waiter thread");
        latencies.push((class, latency.as_secs_f64() * 1e6));
        if let Err(e) = verdict {
            if e.contains("differs from the oracle") {
                mismatches += 1;
            }
            failures.push(format!("{tag}: {e}"));
        }
    }
    Drive {
        latencies,
        failures,
        mismatches,
    }
}

fn class_percentiles(latencies: &[(usize, f64)], class: usize) -> (f64, f64, f64) {
    let mut us: Vec<f64> = latencies
        .iter()
        .filter(|(c, _)| *c == class)
        .map(|(_, l)| *l)
        .collect();
    us.sort_by(f64::total_cmp);
    (
        percentile(&us, 50.0),
        percentile(&us, 95.0),
        percentile(&us, 99.0),
    )
}

/// Run the comparison: a `shards`-way banded sharded service against a
/// single pool holding the same total machine count, under the same
/// `requests`-request mixed load. Deterministic in `seed` up to host
/// timing.
///
/// # Panics
/// Panics if `procs` is not a power of two (machine requirement).
#[must_use]
pub fn run_shard(procs: usize, shards: usize, requests: usize, seed: u64) -> ShardRun {
    assert!(procs.is_power_of_two(), "machine sizes are powers of two");
    let sharded_cfg = ShardedConfig::banded(procs, shards);
    let total_machines = sharded_cfg.total_machines();
    let bands: Vec<(String, usize)> = sharded_cfg
        .classes
        .iter()
        .map(|c| (c.name.clone(), c.pool.max_request_keys))
        .collect();
    let bulk_keys = bands.last().expect("at least one class").1;
    let bounds: Vec<usize> = bands.iter().map(|(_, b)| *b).collect();
    let class_of = move |keys: usize| -> usize {
        bounds
            .iter()
            .position(|bound| keys <= *bound)
            .expect("workload stays inside the bands")
    };

    let mut baseline_cfg = ServiceConfig::new(procs);
    baseline_cfg.machines = total_machines;
    let load = workload(requests, procs, bulk_keys, seed);

    // Baseline first: a single pool with every machine.
    let baseline = SortService::start(baseline_cfg);
    let base_drive = drive("baseline", &load, &class_of, &|r| baseline.submit(r));
    let base_report = baseline.shutdown();

    // Then the sharded service at equal total machine count.
    let sharded = ShardedService::start(sharded_cfg);
    let shard_drive = drive("sharded", &load, &class_of, &|r| sharded.submit(r));
    let shard_metrics = sharded.metrics();
    let shard_report = sharded.shutdown();

    let mut failures = Vec::new();
    failures.extend(base_drive.failures.iter().cloned());
    failures.extend(shard_drive.failures.iter().cloned());
    let stats = &shard_report.stats;
    if stats.expired() > 0 {
        failures.push(format!("sharded: {} missed deadlines", stats.expired()));
    }
    if stats.failed() > 0 {
        failures.push(format!(
            "sharded: {} lost to failed batches",
            stats.failed()
        ));
    }
    if base_report.stats.expired > 0 {
        failures.push(format!(
            "baseline: {} missed deadlines",
            base_report.stats.expired
        ));
    }
    if stats.unroutable > 0 {
        failures.push(format!("sharded: {} unroutable requests", stats.unroutable));
    }

    // Reconcile the shared registry against every shard's own counters:
    // same events, independent tallies, exact agreement required.
    let mut metrics_doc = None;
    let mut prometheus_doc = None;
    if let Some(m) = shard_metrics {
        let snap = m.snapshot();
        let unroutable = snap.counter_total("bitonic_requests_unroutable_total");
        if unroutable != stats.unroutable {
            failures.push(format!(
                "metrics reconcile: unroutable registry={unroutable} stats={}",
                stats.unroutable
            ));
        }
        for s in &stats.shards {
            let pairs: [(&str, &str, u64); 9] = [
                ("submitted", "bitonic_requests_submitted_total", s.submitted),
                ("admitted", "bitonic_requests_admitted_total", s.admitted),
                ("shed", "bitonic_requests_shed_total", s.shed),
                ("expired", "bitonic_requests_expired_total", s.expired),
                ("failed", "bitonic_requests_failed_total", s.failed),
                ("completed", "bitonic_requests_completed_total", s.completed),
                ("batches", "bitonic_batches_total", s.batches),
                ("steals", "bitonic_steals_total", s.steals),
                (
                    "stolen requests",
                    "bitonic_stolen_requests_total",
                    s.stolen_requests,
                ),
            ];
            for (label, name, stat) in pairs {
                let registry = snap.counter_labeled(name, "class", &s.class);
                if registry != stat {
                    failures.push(format!(
                        "metrics reconcile: {} {label} registry={registry} stats={stat}",
                        s.class
                    ));
                }
            }
        }
        metrics_doc = Some(metrics_json(&snap));
        prometheus_doc = Some(obs::encode_prometheus(&snap));
    }

    let classes: Vec<ClassLatency> = bands
        .iter()
        .enumerate()
        .map(|(i, (name, bound))| {
            let (p50, p95, p99) = class_percentiles(&shard_drive.latencies, i);
            let (_, _, base_p99) = class_percentiles(&base_drive.latencies, i);
            let s = &stats.shards[i];
            ClassLatency {
                class: name.clone(),
                max_keys: *bound,
                machines: s.pool.machines,
                requests: s.submitted,
                completed: s.completed,
                batches: s.batches,
                steals: s.steals,
                stolen_requests: s.stolen_requests,
                scale_ups: s.scale_ups,
                scale_downs: s.scale_downs,
                p50_us: p50,
                p95_us: p95,
                p99_us: p99,
                baseline_p99_us: base_p99,
            }
        })
        .collect();

    let summary = ShardSummary {
        procs,
        shards,
        total_machines,
        baseline_machines: total_machines,
        requests: requests as u64,
        shed: stats.shed(),
        expired: stats.expired(),
        failed: stats.failed(),
        unroutable: stats.unroutable,
        mismatches: shard_drive.mismatches + base_drive.mismatches,
        steals: stats.steals(),
        classes,
    };

    let small = &summary.classes[0];
    let small_p99_improved = small.p99_us > 0.0 && small.p99_us < small.baseline_p99_us;

    let mut t = Table::new(vec![
        "class",
        "band",
        "reqs",
        "batches",
        "steals",
        "p50 (us)",
        "p95 (us)",
        "p99 (us)",
        "single-pool p99",
    ]);
    for c in &summary.classes {
        t.row(vec![
            c.class.clone(),
            format!("<= {}", c.max_keys),
            c.requests.to_string(),
            c.batches.to_string(),
            c.steals.to_string(),
            f2(c.p50_us),
            f2(c.p95_us),
            f2(c.p99_us),
            f2(c.baseline_p99_us),
        ]);
    }

    let json = shard_json(&summary);
    let passed = failures.is_empty();
    let verdict = if passed {
        format!(
            "Both services answered all {requests} requests oracle-correct with \
             zero sheds, zero missed deadlines, and zero failed batches at equal \
             total machine count ({total_machines}). Small-class p99: {} µs \
             sharded vs {} µs single-pool ({}).",
            f2(small.p99_us),
            f2(small.baseline_p99_us),
            if small_p99_improved {
                "sharding wins"
            } else {
                "no win on this host — see BENCH_5.json for the committed run"
            },
        )
    } else {
        let mut v = String::from("FAILED:\n");
        for f in &failures {
            v.push_str("  - ");
            v.push_str(f);
            v.push('\n');
        }
        v
    };
    let report = format!("{}\n{verdict}\n\n```json\n{json}```\n", t.render());
    ShardRun {
        report,
        json,
        passed,
        small_p99_improved,
        metrics_json: metrics_doc,
        prometheus: prometheus_doc,
    }
}

/// Run the sharded-serving benchmark and render it as an experiment.
#[must_use]
pub fn shard(scale: Scale) -> super::Experiment {
    let run = run_shard(
        DEFAULT_PROCS,
        DEFAULT_SHARDS,
        default_requests(scale),
        DEFAULT_SEED,
    );
    super::Experiment {
        id: "shard",
        title: "Sharded serving: size-class router vs a single pool",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_acceptance_load_passes_every_correctness_check() {
        // A smaller offered load than the CI configuration, same checks.
        let run = run_shard(4, 2, 40, DEFAULT_SEED);
        assert!(run.passed, "{}", run.report);
        assert!(run.json.contains("\"schema\": \"SHARD_1\""));
        assert!(run.json.contains("\"class\": \"small\""));
        assert!(run.json.contains("\"class\": \"bulk\""));
        let metrics = run.metrics_json.expect("sharded metrics are on");
        assert!(metrics.contains("\"schema\": \"METRICS_1\""));
        assert!(metrics.contains("\"class\": \"small\""));
        assert!(metrics.contains("\"class\": \"bulk\""));
        assert!(run
            .prometheus
            .expect("prometheus view present")
            .contains("bitonic_requests_completed_total{class=\"small\"}"));
    }

    #[test]
    fn the_workload_mixes_small_and_band_limit_bulk() {
        let load = workload(50, 4, 16384, DEFAULT_SEED);
        assert!(load.iter().any(|(k, _, _)| k.len() < 4), "n < P present");
        assert!(
            load.iter().any(|(k, _, _)| k.len() > 8192),
            "bulk requests route past the small band"
        );
        assert!(load.iter().any(|(_, d, _)| *d == Direction::Descending));
        assert_eq!(load, workload(50, 4, 16384, DEFAULT_SEED), "deterministic");
    }
}
