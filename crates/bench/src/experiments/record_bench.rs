//! `experiments records` / `bench9` — record sorting over real sockets.
//!
//! Where `net_bench` proves the wire can carry bare `u32` sorts, this
//! benchmark proves it can carry *records*: every cell of a key-width ×
//! payload-stride grid ({4, 8, 16} bytes × {0, 8, 64, 256} bytes) sends
//! duplicate-heavy keys with attached payload rows through the `SORT_1`
//! codec, a loopback `TcpListener`, and back. Each reply is checked
//! byte-for-byte against the *stable* record oracle
//! ([`bitonic_core::tagged::records_sorted_independently`]): keys must
//! come back sorted in the requested direction and payload rows must
//! ride their keys, with equal keys keeping submission order — in both
//! directions. The duplicate-heavy pools make ties the common case, so
//! a sort that is merely correct on keys but unstable on payload order
//! cannot pass.
//!
//! The `(width 4, stride 0)` cell deliberately rides the legacy plain
//! path — `is_record()` is false for payload-free u32 frames — and acts
//! as the baseline: its replies are `ok`, every other cell's are
//! `ok_record`, and the final three-way reconciliation demands that
//! [`sort_service::WireStats`], the service's `ServiceStats`, and the
//! metrics registry agree counter-for-counter, including the per-width
//! `bitonic_record_requests_total` counters and the
//! `bitonic_record_payload_bytes` histogram count.
//!
//! The report ends with a machine-readable `RECORD_1` block
//! ([`crate::report::record_json`]); `bench9` wraps it into the
//! committed `BENCH_9.json`.

use super::serve_bench::{percentile, DEFAULT_PROCS, DEFAULT_SEED};
use super::{Experiment, Scale};
use crate::report::{f2, metrics_json, record_json, RecordCell, RecordSummary, Table};
use bitonic_core::tagged::records_sorted_independently;
use bitonic_network::Direction;
use sort_service::{
    RecordKeys, ReplyFrame, RequestFrame, ServiceConfig, WireClient, WireConfig, WireServer,
};
use std::time::{Duration, Instant};

/// Key widths under test, in bytes (every sortable wire width).
pub const WIDTHS: [u8; 3] = [4, 8, 16];

/// Payload strides under test, in bytes per key.
pub const STRIDES: [usize; 4] = [0, 8, 64, 256];

/// Default concurrent client connections. Striping the grid across
/// connections keeps different widths in flight at once, so the
/// dispatcher's same-width-only coalescing is actually exercised.
pub const DEFAULT_CONNS: usize = 4;

/// Request sizes cycled within each cell; 3 < P at the acceptance
/// configuration (P = 4), so the n < P path crosses the wire too.
const SIZES: [usize; 4] = [3, 8, 64, 257];

/// Record requests per grid cell at a given scale.
#[must_use]
pub fn default_requests(scale: Scale) -> usize {
    if scale.shrink > 1 {
        12
    } else {
        48
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One finished record-grid run.
#[derive(Debug, Clone)]
pub struct RecordRun {
    /// Human-readable report (tables + the `RECORD_1` block).
    pub report: String,
    /// The bare `RECORD_1` JSON document, for composition into `BENCH_9`.
    pub json: String,
    /// The final registry as a `METRICS_1` document.
    pub metrics_json: Option<String>,
    /// The final registry in Prometheus text exposition format.
    pub prometheus: Option<String>,
    /// Whether every acceptance check held.
    pub passed: bool,
}

/// One scripted request: which cell it belongs to, the frame to send,
/// and the oracle's expected reply.
struct Scripted {
    cell: usize,
    frame: RequestFrame,
    expect_keys: Vec<u128>,
    expect_payload: Vec<u8>,
    has_dup: bool,
    record: bool,
}

/// One request's outcome: `(cell, latency µs, had duplicate keys,
/// verdict)` where `None` means the reply matched the oracle.
type WorkerOut = Vec<(usize, f64, bool, Option<String>)>;

/// A duplicate-heavy key pool spanning `width` bytes: a handful of
/// distinct values including 0 and the width's maximum, so ties are the
/// common case and the full key domain is touched.
fn key_pool(width: u8, rng: &mut u64) -> Vec<u128> {
    let max = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (8 * u32::from(width))) - 1
    };
    let mut pool = vec![0, max, max / 2];
    for _ in 0..5 {
        let hi = u128::from(splitmix(rng));
        let lo = u128::from(splitmix(rng));
        pool.push(((hi << 64) | lo) & max);
    }
    pool
}

fn widen_reply(keys: &RecordKeys) -> Vec<u128> {
    match keys {
        RecordKeys::U32(v) => v.iter().map(|&k| u128::from(k)).collect(),
        RecordKeys::U64(v) => v.iter().map(|&k| u128::from(k)).collect(),
        RecordKeys::U128(v) => v.clone(),
    }
}

/// Build one cell's worth of scripted requests.
fn script_cell(cell: usize, width: u8, stride: usize, requests: usize, seed: u64) -> Vec<Scripted> {
    let mut rng = seed
        .wrapping_mul(0x5851_F42D_4C95_7F2D)
        .wrapping_add(cell as u64);
    let pool = key_pool(width, &mut rng);
    (0..requests)
        .map(|r| {
            let n = SIZES[r % SIZES.len()];
            let keys: Vec<u128> = (0..n)
                .map(|_| pool[(splitmix(&mut rng) % pool.len() as u64) as usize])
                .collect();
            let dir = if splitmix(&mut rng) & 1 == 0 {
                Direction::Ascending
            } else {
                Direction::Descending
            };
            let payload: Vec<u8> = (0..n * stride).map(|_| splitmix(&mut rng) as u8).collect();
            let oracle = records_sorted_independently(&keys, dir);
            let expect_payload: Vec<u8> = oracle
                .perm
                .iter()
                .flat_map(|&i| payload[i as usize * stride..(i as usize + 1) * stride].to_vec())
                .collect();
            let mut frame = match width {
                4 => {
                    let narrow: Vec<u32> = keys.iter().map(|&k| k as u32).collect();
                    RequestFrame::from_u32_keys(&narrow, dir, None)
                }
                8 => {
                    let narrow: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
                    RequestFrame::from_u64_keys(&narrow, dir, None)
                }
                _ => RequestFrame::from_u128_keys(&keys, dir, None),
            };
            if stride > 0 {
                frame = frame.with_payload(stride as u32, payload);
            }
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            Scripted {
                cell,
                frame,
                expect_keys: oracle.keys,
                expect_payload,
                has_dup: sorted.len() < n,
                record: frame_is_record(width, stride),
            }
        })
        .collect()
}

fn frame_is_record(width: u8, stride: usize) -> bool {
    width != 4 || stride > 0
}

fn check_reply(s: &Scripted, reply: &ReplyFrame) -> Option<String> {
    match (s.record, reply) {
        (false, ReplyFrame::Sorted(got)) => {
            let got: Vec<u128> = got.iter().map(|&k| u128::from(k)).collect();
            (got != s.expect_keys).then(|| "keys differ from the stable oracle".into())
        }
        (true, ReplyFrame::Record { keys, payload, .. }) => {
            if widen_reply(keys) != s.expect_keys {
                Some("keys differ from the stable oracle".into())
            } else if *payload != s.expect_payload {
                Some("payload differs from the stable oracle".into())
            } else {
                None
            }
        }
        (_, other) => Some(format!("{} reply", other.label())),
    }
}

/// Drive the record grid at `procs` ranks with `requests` requests per
/// cell over `conns` loopback connections and render the report.
/// Deterministic in `seed` up to host timing.
///
/// # Panics
/// Panics if `procs` is not a power of two, `conns` is zero, or the
/// loopback listener cannot bind.
#[must_use]
pub fn run_records(procs: usize, requests: usize, conns: usize, seed: u64) -> RecordRun {
    assert!(procs.is_power_of_two(), "machine sizes are powers of two");
    assert!(conns >= 1, "at least one connection");
    let cfg = ServiceConfig::new(procs);
    cfg.validate();

    let srv = WireServer::start(cfg, WireConfig::default(), "127.0.0.1:0")
        .expect("bind loopback listener");
    let addr = srv.local_addr();
    let handle = srv.metrics();

    // The grid, scripted up front: cells in (width, stride) order, then
    // requests striped round-robin across connections so different
    // widths are in flight concurrently (records only coalesce with
    // same-width peers — make the dispatcher prove it).
    let grid: Vec<(u8, usize)> = WIDTHS
        .iter()
        .flat_map(|&w| STRIDES.iter().map(move |&s| (w, s)))
        .collect();
    let mut cell_iters: Vec<_> = grid
        .iter()
        .enumerate()
        .map(|(cell, &(width, stride))| {
            script_cell(cell, width, stride, requests, seed).into_iter()
        })
        .collect();
    let mut scripted: Vec<Scripted> = Vec::new();
    for _ in 0..requests {
        for it in &mut cell_iters {
            scripted.push(it.next().expect("each cell scripts `requests` requests"));
        }
    }
    let total_requests = scripted.len() as u64;
    let record_requests = scripted.iter().filter(|s| s.record).count() as u64;
    let plain_requests = total_requests - record_requests;
    let mut per_width_records = [0u64; 3];
    let mut cell_keys = vec![0u64; grid.len()];
    let mut cell_payload = vec![0u64; grid.len()];
    let mut cell_requests = vec![0u64; grid.len()];
    for s in &scripted {
        let (width, _) = grid[s.cell];
        if s.record {
            let wi = WIDTHS.iter().position(|&w| w == width).expect("grid width");
            per_width_records[wi] += 1;
        }
        cell_requests[s.cell] += 1;
        cell_keys[s.cell] += s.expect_keys.len() as u64;
        cell_payload[s.cell] += s.expect_payload.len() as u64;
    }
    let mut scripts: Vec<Vec<Scripted>> = (0..conns).map(|_| Vec::new()).collect();
    for (i, s) in scripted.into_iter().enumerate() {
        scripts[i % conns].push(s);
    }

    let workers: Vec<std::thread::JoinHandle<WorkerOut>> = scripts
        .into_iter()
        .map(|script| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).expect("loopback connect");
                let mut out = Vec::with_capacity(script.len());
                for s in script {
                    let sent = Instant::now();
                    let verdict = match client.exchange(&s.frame) {
                        Ok(reply) => check_reply(&s, &reply),
                        Err(e) => Some(format!("wire error: {e}")),
                    };
                    out.push((
                        s.cell,
                        sent.elapsed().as_secs_f64() * 1e6,
                        s.has_dup,
                        verdict,
                    ));
                }
                out
            })
        })
        .collect();

    let mut failures: Vec<String> = Vec::new();
    let mut per_cell_us: Vec<Vec<f64>> = vec![Vec::new(); grid.len()];
    let mut per_cell_mismatch = vec![0u64; grid.len()];
    let mut duplicate_key_requests = 0u64;
    for w in workers {
        for (cell, latency_us, has_dup, verdict) in w.join().expect("client thread") {
            if has_dup {
                duplicate_key_requests += 1;
            }
            match verdict {
                None => per_cell_us[cell].push(latency_us),
                Some(e) => {
                    per_cell_mismatch[cell] += 1;
                    let (width, stride) = grid[cell];
                    failures.push(format!("width {width} stride {stride}: {e}"));
                }
            }
        }
    }

    // Let the server observe every client's clean close before the final
    // snapshot, so the disconnect tally is complete.
    let t = Instant::now();
    while t.elapsed() < Duration::from_secs(5) {
        let w = srv.wire_stats();
        if w.connections_closed == w.connections_opened {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = srv.shutdown();
    let wire = report.wire;
    let stats = report.service.stats;
    let mismatches: u64 = per_cell_mismatch.iter().sum();

    // Three-way reconciliation: the wire's tallies, the service's
    // counters, and the metrics registry must agree event-for-event —
    // including the record/plain reply split and the per-width record
    // counters.
    let mut reconcile_failures: Vec<String> = Vec::new();
    let mut check = |name: &str, a: u64, b: u64| {
        if a != b {
            reconcile_failures.push(format!("record reconcile: {name}: {a} != {b}"));
        }
    };
    check("frames vs submitted", wire.frames_read, stats.submitted);
    check(
        "frames vs scripted requests",
        wire.frames_read,
        total_requests,
    );
    check(
        "ok + ok_record replies vs completed",
        wire.replies_ok + wire.replies_record,
        stats.completed,
    );
    check(
        "ok_record replies vs record requests",
        wire.replies_record,
        record_requests,
    );
    check(
        "ok replies vs plain baseline cell",
        wire.replies_ok,
        plain_requests,
    );
    check(
        "connections closed vs opened",
        wire.connections_closed,
        wire.connections_opened,
    );

    let mut metrics_doc = None;
    let mut prometheus_doc = None;
    if let Some(m) = handle {
        let snap = m.snapshot();
        let mut check = |name: &str, a: u64, b: u64| {
            if a != b {
                reconcile_failures.push(format!("registry reconcile: {name}: {a} != {b}"));
            }
        };
        check(
            "wire frames",
            snap.counter_total("bitonic_wire_frames_total"),
            wire.frames_read,
        );
        check(
            "ok_record replies",
            snap.counter_labeled("bitonic_wire_replies_total", "status", "ok_record"),
            wire.replies_record,
        );
        check(
            "ok replies",
            snap.counter_labeled("bitonic_wire_replies_total", "status", "ok"),
            wire.replies_ok,
        );
        check(
            "record requests total",
            snap.counter_total("bitonic_record_requests_total"),
            record_requests,
        );
        for (wi, &width) in WIDTHS.iter().enumerate() {
            let label = match width {
                4 => "4",
                8 => "8",
                _ => "16",
            };
            check(
                &format!("record requests[width={width}]"),
                snap.counter_labeled("bitonic_record_requests_total", "width", label),
                per_width_records[wi],
            );
        }
        check(
            "payload histogram count vs record requests",
            snap.histogram_count("bitonic_record_payload_bytes"),
            record_requests,
        );
        check(
            "completed",
            snap.counter_total("bitonic_requests_completed_total"),
            stats.completed,
        );
        metrics_doc = Some(metrics_json(&snap));
        prometheus_doc = Some(obs::encode_prometheus(&snap));
    }
    let reconciled = reconcile_failures.is_empty();
    failures.extend(reconcile_failures);

    if stats.shed > 0 {
        failures.push(format!("{} requests shed at nominal load", stats.shed));
    }
    if stats.expired > 0 {
        failures.push(format!("{} requests expired", stats.expired));
    }
    if stats.failed > 0 {
        failures.push(format!("{} requests lost to failed batches", stats.failed));
    }
    if wire.frame_errors > 0 {
        failures.push(format!(
            "{} malformed frames under a clean load",
            wire.frame_errors
        ));
    }
    if duplicate_key_requests < total_requests / 2 {
        failures.push(format!(
            "only {duplicate_key_requests} of {total_requests} requests carried \
             duplicate keys — the stability check has no teeth"
        ));
    }

    let cells: Vec<RecordCell> = grid
        .iter()
        .enumerate()
        .map(|(i, &(width, stride))| {
            let us = &mut per_cell_us[i];
            us.sort_by(f64::total_cmp);
            RecordCell {
                width,
                stride,
                requests: cell_requests[i],
                keys: cell_keys[i],
                payload_bytes: cell_payload[i],
                mismatches: per_cell_mismatch[i],
                p50_us: percentile(us, 50.0),
                p95_us: percentile(us, 95.0),
                p99_us: percentile(us, 99.0),
            }
        })
        .collect();

    let summary = RecordSummary {
        procs,
        requests: total_requests,
        frames: wire.frames_read,
        replies_record: wire.replies_record,
        mismatches,
        duplicate_key_requests,
        reconciled,
        cells,
    };

    let mut t = Table::new(vec![
        "width",
        "stride",
        "requests",
        "keys",
        "payload B",
        "mismatch",
        "p50 us",
        "p95 us",
        "p99 us",
    ]);
    for c in &summary.cells {
        t.row(vec![
            c.width.to_string(),
            c.stride.to_string(),
            c.requests.to_string(),
            c.keys.to_string(),
            c.payload_bytes.to_string(),
            c.mismatches.to_string(),
            f2(c.p50_us),
            f2(c.p95_us),
            f2(c.p99_us),
        ]);
    }

    let json = record_json(&summary);
    let passed = failures.is_empty();
    let verdict = if passed {
        format!(
            "All {total_requests} record replies over {conns} connections match the \
             stable record oracle byte-for-byte ({duplicate_key_requests} requests \
             carried duplicate keys, proving payload stability in both directions); \
             WireStats, ServiceStats, and the metrics registry reconcile exactly, \
             per-width record counters included."
        )
    } else {
        let mut v = String::from("FAILED:\n");
        for f in &failures {
            v.push_str("  - ");
            v.push_str(f);
            v.push('\n');
        }
        v
    };
    let report = format!(
        "Key-width x payload-stride grid over loopback TCP (P = {procs}):\n\n\
         {}\n{verdict}\n\n```json\n{json}```\n",
        t.render()
    );
    RecordRun {
        report,
        json,
        metrics_json: metrics_doc,
        prometheus: prometheus_doc,
        passed,
    }
}

/// Run the record grid and render it as an experiment.
#[must_use]
pub fn records(scale: Scale) -> Experiment {
    let run = run_records(
        DEFAULT_PROCS,
        default_requests(scale),
        DEFAULT_CONNS,
        DEFAULT_SEED,
    );
    Experiment {
        id: "records",
        title: "Record sorting over the wire: wide keys + payload carriage",
        body: run.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_record_grid_passes_every_check() {
        // Smaller than the CI configuration, same checks — oracle
        // conformance per cell plus the three-way WireStats /
        // ServiceStats / registry reconciliation with per-width record
        // counters.
        let run = run_records(4, 8, 4, DEFAULT_SEED);
        assert!(run.passed, "{}", run.report);
        assert!(run.json.contains("\"schema\": \"RECORD_1\""));
        assert!(run.json.contains("\"reconciled\": true"));
        assert!(run.json.contains("\"mismatches\": 0"));
        let metrics = run.metrics_json.expect("metrics are on");
        assert!(metrics.contains("bitonic_record_requests_total"));
        assert!(metrics.contains("bitonic_record_payload_bytes"));
    }

    #[test]
    fn scripted_cells_are_deterministic_and_duplicate_heavy() {
        let a = script_cell(3, 8, 64, 8, DEFAULT_SEED);
        let b = script_cell(3, 8, 64, 8, DEFAULT_SEED);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frame, y.frame);
            assert_eq!(x.expect_keys, y.expect_keys);
            assert_eq!(x.expect_payload, y.expect_payload);
        }
        // Requests bigger than the key pool must contain ties.
        assert!(a.iter().filter(|s| s.has_dup).count() >= 6);
        // The oracle's payload permutation carries full rows.
        for s in &a {
            assert_eq!(s.expect_payload.len(), s.expect_keys.len() * 64);
        }
    }
}
