//! Workload generators for the experiments.
//!
//! The thesis uses "random, uniformly-distributed 32-bit keys … in the
//! range 0 through 2³¹ − 1" (Section 5.3). We add the low-entropy and
//! adversarial distributions used to probe sample sort's sensitivity
//! (Section 5.5 remarks) and the bitonic generators for micro-benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key distributions available to experiments and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Uniform in `[0, 2^31)` — the thesis's standard workload.
    Uniform31,
    /// Uniform over `{0, …, 7}` — low entropy, stresses splitter-based
    /// sorts.
    LowEntropy,
    /// All keys identical.
    Constant,
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending.
    ReverseSorted,
}

impl Distribution {
    /// Human-readable label for tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Distribution::Uniform31 => "uniform 31-bit",
            Distribution::LowEntropy => "low entropy",
            Distribution::Constant => "constant",
            Distribution::Sorted => "sorted",
            Distribution::ReverseSorted => "reverse sorted",
        }
    }
}

/// Generate `n` keys of the given distribution, deterministically from
/// `seed`.
#[must_use]
pub fn keys(n: usize, dist: Distribution, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    match dist {
        Distribution::Uniform31 => (0..n).map(|_| rng.gen_range(0..1u32 << 31)).collect(),
        Distribution::LowEntropy => (0..n).map(|_| rng.gen_range(0..8u32)).collect(),
        Distribution::Constant => vec![0x1234_5678 & 0x7FFF_FFFF; n],
        Distribution::Sorted => (0..n as u32).collect(),
        Distribution::ReverseSorted => (0..n as u32).rev().collect(),
    }
}

/// Uniform 31-bit keys — shorthand for the standard workload.
#[must_use]
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u32> {
    keys(n, Distribution::Uniform31, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(uniform_keys(100, 7), uniform_keys(100, 7));
        assert_ne!(uniform_keys(100, 7), uniform_keys(100, 8));
    }

    #[test]
    fn keys_respect_31_bit_range() {
        assert!(uniform_keys(10_000, 3).iter().all(|&k| k < (1 << 31)));
    }

    #[test]
    fn distributions_have_expected_shape() {
        let low = keys(1000, Distribution::LowEntropy, 1);
        assert!(low.iter().all(|&k| k < 8));
        let sorted = keys(100, Distribution::Sorted, 1);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let rev = keys(100, Distribution::ReverseSorted, 1);
        assert!(rev.windows(2).all(|w| w[0] >= w[1]));
        let c = keys(5, Distribution::Constant, 1);
        assert!(c.iter().all(|&k| k == c[0]));
    }
}
