//! Experiment harness regenerating every table and figure of Chapter 5.
//!
//! Each experiment produces two views:
//!
//! * **model** — the LogGP + linear-computation prediction at the paper's
//!   full scale (P up to 32, 128K–1M keys per processor), using the Meiko
//!   CS-2 calibration of the `logp` crate. This is what reproduces the
//!   *shape* of the thesis numbers: who wins, by what factor, where the
//!   crossovers sit.
//! * **measured** — real runs of the algorithms on the thread-based SPMD
//!   machine at a scale the host can handle, reporting the exact
//!   communication counters (R, V, M — which match the thesis formulas
//!   *exactly*, independent of hardware) and wall-clock phase splits.
//!
//! The `experiments` binary renders both, side by side with the published
//! numbers where the thesis tabulates them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workloads;

/// Paper-published reference values, for side-by-side display.
pub mod paper {
    /// Table 5.1 — execution time per key (µs), 32 processors.
    /// Rows: keys/proc in K (128, 256, 512, 1024);
    /// columns: Blocked-Merge, Cyclic-Blocked, Smart.
    pub const TABLE_5_1: [(usize, f64, f64, f64); 4] = [
        (128, 1.07, 0.68, 0.52),
        (256, 1.19, 0.75, 0.51),
        (512, 1.26, 0.89, 0.53),
        (1024, 1.25, 0.86, 0.59),
    ];

    /// Table 5.2 — total execution time (s), 32 processors.
    pub const TABLE_5_2: [(usize, f64, f64, f64); 4] = [
        (128, 5.52, 2.85, 2.18),
        (256, 10.04, 6.35, 4.26),
        (512, 21.14, 14.96, 8.95),
        (1024, 42.03, 28.58, 20.01),
    ];

    /// Table 5.3 — communication time per key (µs), 16 processors:
    /// (keys/proc in K, short messages, long messages).
    pub const TABLE_5_3: [(usize, f64, f64); 4] = [
        (128, 13.23, 0.98),
        (256, 13.25, 1.09),
        (512, 13.26, 1.12),
        (1024, 13.74, 1.21),
    ];

    /// Table 5.4 — breakdown of the long-message communication phase per
    /// key (µs), 16 processors: (keys/proc in K, packing, transfer,
    /// unpacking).
    pub const TABLE_5_4: [(usize, f64, f64, f64); 4] = [
        (128, 0.35, 0.15, 0.15),
        (256, 0.37, 0.15, 0.15),
        (512, 0.38, 0.16, 0.14),
        (1024, 0.38, 0.16, 0.13),
    ];
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_tables_are_monotone_in_strategy() {
        for (_, bm, cb, smart) in super::paper::TABLE_5_1 {
            assert!(smart < cb && cb < bm);
        }
        for (_, short, long) in super::paper::TABLE_5_3 {
            assert!(long < short / 9.0);
        }
    }
}
