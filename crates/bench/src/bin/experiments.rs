//! Regenerate the Chapter 5 tables and figures.
//!
//! ```text
//! experiments                  # run everything at host scale
//! experiments table5_1 fig5_7  # run selected experiments
//! experiments --full all       # measured runs at paper scale (slow!)
//! experiments trace --procs 8 --out trace.json --check
//! ```
//!
//! The `trace` id doubles as a subcommand: `--procs N` and `--keys N`
//! size the traced run, `--out FILE` writes the Chrome trace-event JSON
//! (open it in Perfetto / `chrome://tracing`), and `--check` exits
//! non-zero unless every rank recorded at least one span in every phase.
//!
//! The `chaos` id is a subcommand too: `--procs N`, `--keys N`, and
//! `--seed N` shape the fault-injection sweep, `--out FILE` writes the
//! report (with its `CHAOS_1` JSON block), and `--check` exits non-zero
//! unless every cell sorted correctly and determinism held.

use bitonic_bench::experiments::{all, by_id, chaos, trace, Scale, IDS};
use spmd::MessageMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_host();
    let mut ids: Vec<String> = Vec::new();
    let mut procs = trace::DEFAULT_PROCS;
    let mut keys: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut seed: Option<u64> = None;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{} needs a value", args[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--check" => check = true,
            "--procs" => {
                procs = value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--procs: {e}");
                    std::process::exit(2);
                });
            }
            "--keys" => {
                keys = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--keys: {e}");
                    std::process::exit(2);
                }));
            }
            "--out" => out = Some(value(&args, &mut i)),
            "--seed" => {
                seed = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--full] [all | {}]\n       \
                     experiments trace [--procs N] [--keys N] [--out FILE] [--check]\n       \
                     experiments chaos [--procs N] [--keys N] [--seed N] [--out FILE] [--check]",
                    IDS.join(" | ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    // The trace subcommand: one traced run with its own knobs.
    if ids.iter().any(|id| id == "trace") && ids.len() == 1 {
        let keys = keys.unwrap_or_else(|| trace::default_keys_per_rank(scale));
        let run = trace::run_trace(procs, keys, MessageMode::Long);
        println!("## Per-rank tracing [trace]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.chrome_json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "Chrome trace written to {path} ({} bytes).",
                run.chrome_json.len()
            );
        }
        if check {
            match trace::validate(&run.traces, procs) {
                Ok(()) => println!("check: every rank spans every phase."),
                Err(e) => {
                    eprintln!("check failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    // The chaos subcommand: the fault-injection conformance sweep with its
    // own machine size, working set, and master seed.
    if ids.iter().any(|id| id == "chaos") && ids.len() == 1 {
        let keys = keys.unwrap_or_else(|| chaos::default_keys_per_rank(scale));
        let seed = seed.unwrap_or(chaos::DEFAULT_SEED);
        let run = chaos::run_chaos(procs, keys, seed);
        println!("## Fault-injection conformance [chaos]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.report) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("Chaos report written to {path}.");
        }
        if check {
            if run.passed {
                println!("check: every cell sorted; equal seeds injected equal faults.");
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }
    if out.is_some() || check || keys.is_some() || seed.is_some() {
        eprintln!(
            "--out/--check/--keys/--seed only apply to `experiments trace` or `experiments chaos`"
        );
        std::process::exit(2);
    }
    let run_all = ids.is_empty() || ids.iter().any(|i| i == "all");

    let experiments = if run_all {
        all(scale)
    } else {
        ids.iter()
            .map(|id| {
                by_id(id, scale).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}'; known: {}", IDS.join(", "));
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!(
        "# Chapter 5 reproduction ({} scale)\n",
        if scale.shrink == 1 { "paper" } else { "host" }
    );
    for e in experiments {
        println!("## {} [{}]\n", e.title, e.id);
        println!("{}", e.body);
    }
}
