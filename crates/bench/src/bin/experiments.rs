//! Regenerate the Chapter 5 tables and figures.
//!
//! ```text
//! experiments                  # run everything at host scale
//! experiments table5_1 fig5_7  # run selected experiments
//! experiments --full all       # measured runs at paper scale (slow!)
//! experiments trace --procs 8 --out trace.json --check
//! ```
//!
//! The `trace` id doubles as a subcommand: `--procs N` and `--keys N`
//! size the traced run, `--out FILE` writes the Chrome trace-event JSON
//! (open it in Perfetto / `chrome://tracing`), and `--check` exits
//! non-zero unless every rank recorded at least one span in every phase.
//!
//! The `chaos` id is a subcommand too: `--procs N`, `--keys N`, and
//! `--seed N` shape the fault-injection sweep, `--out FILE` writes the
//! report (with its `CHAOS_1` JSON block), and `--check` exits non-zero
//! unless every cell sorted correctly and determinism held.
//!
//! The `serve` id drives the sort service under open-loop load:
//! `--procs N`, `--requests N`, and `--seed N` shape the load, `--out
//! FILE` writes the bare `SERVE_1` JSON document, and `--check` exits
//! non-zero unless every reply matched the oracle with zero sheds and a
//! 100% steady-state plan-cache hit rate — and unless the live metrics
//! registry reconciles exactly with the service's own counters.
//! `--metrics-out FILE` (also on `shard`, `bench4`, `bench5`) writes the
//! final registry as a `METRICS_1` JSON document plus a Prometheus
//! text-format sibling at `FILE.prom`.
//!
//! `bench4` composes the `remap_bench` `BENCH_1` records and the serving
//! run's `SERVE_1` document into one `BENCH_4` artifact (`--out
//! BENCH_4.json` writes the committed repo-root copy).
//!
//! The `shard` id races a sharded service against a single pool at equal
//! total machine count: `--procs N`, `--shards N`, `--requests N`, and
//! `--seed N` shape the run, `--out FILE` writes the bare `SHARD_1` JSON
//! document, and `--check` exits non-zero on any shed, missed deadline,
//! failed batch, or oracle mismatch from either service. `bench5` wraps
//! the same run into the committed `BENCH_5.json` artifact.
//!
//! `bench6` times the local-kernel matrix (kernel × size class × key
//! width, `KERNEL_1` records) after calibrating the dispatch table:
//! `--quick` runs the reduced CI matrix, `--out FILE` writes the
//! committed `BENCH_6.json` artifact, and `--check` exits non-zero on any
//! oracle mismatch, any dispatch cell more than 5% slower than the seed
//! kernel, or any key width whose selected kernel never beats the seed.
//!
//! The `bulk` id drives cross-shard bulk sorts — requests larger than
//! every band split by sampled splitters, sorted per shard, and k-way
//! merged — against a single pool at equal total machine count:
//! `--procs N`, `--shards N`, `--requests N`, and `--seed N` shape the
//! load, `--out FILE` writes the bare `BULK_1` JSON document, and
//! `--check` exits non-zero on any shed, expiry, failed batch, failed
//! bulk request, oracle mismatch, partition skew beyond the configured
//! bound, or divergence between two same-seed engine-twin replays.
//! `bench8` wraps the same run into the committed `BENCH_8.json`
//! artifact.
//!
//! The `net` id replays the serving workload over real loopback TCP
//! sockets through the `SORT_1` wire codec: `--procs N`, `--requests N`,
//! `--conns N`, and `--seed N` shape the load, `--out FILE` writes the
//! bare `NET_1` JSON document, and `--check` exits non-zero on any oracle
//! mismatch, shed, expiry, frame error, or reconciliation gap between the
//! wire counters, the service counters, and the metrics registry.
//! `bench7` wraps the same run into the committed `BENCH_7.json`
//! artifact.
//!
//! The `records` id proves record sorting end to end over loopback TCP:
//! every cell of the key-width × payload-stride grid ({4, 8, 16} bytes ×
//! {0, 8, 64, 256} bytes) sends duplicate-heavy keys with payload rows
//! and checks each reply byte-for-byte against the stable record oracle.
//! `--procs N`, `--requests N` (per cell), `--conns N`, and `--seed N`
//! shape the load, `--quick` runs the reduced CI grid, `--out FILE`
//! writes the bare `RECORD_1` JSON document, and `--check` exits
//! non-zero on any oracle mismatch (keys *or* payload), shed, expiry,
//! frame error, or reconciliation gap — per-width record counters
//! included. `bench9` wraps the same run into the committed
//! `BENCH_9.json` artifact.

use bitonic_bench::experiments::{
    all, bulk_bench, by_id, chaos, kernels, net_bench, record_bench, remap_bench, serve_bench,
    shard_bench, trace, Scale, IDS,
};
use bitonic_bench::report::bench_json;
use spmd::MessageMode;

/// Write a `METRICS_1` dump to `path` and its Prometheus text-format
/// sibling to `path.prom`. Exits non-zero if the run recorded no metrics
/// or either write fails.
fn write_metrics(path: &str, metrics: Option<&String>, prometheus: Option<&String>) {
    let Some(json) = metrics else {
        eprintln!("--metrics-out: this run recorded no metrics");
        std::process::exit(1);
    };
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("writing {path}: {e}");
        std::process::exit(1);
    }
    let prom_path = format!("{path}.prom");
    if let Some(text) = prometheus {
        if let Err(e) = std::fs::write(&prom_path, text) {
            eprintln!("writing {prom_path}: {e}");
            std::process::exit(1);
        }
    }
    println!("METRICS_1 document written to {path} (Prometheus text at {prom_path}).");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_host();
    let mut ids: Vec<String> = Vec::new();
    let mut procs = trace::DEFAULT_PROCS;
    let mut keys: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut check = false;
    let mut seed: Option<u64> = None;
    let mut requests: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut conns: Option<usize> = None;
    let mut quick = false;

    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{} needs a value", args[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::full(),
            "--check" => check = true,
            "--quick" => quick = true,
            "--procs" => {
                procs = value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--procs: {e}");
                    std::process::exit(2);
                });
            }
            "--keys" => {
                keys = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--keys: {e}");
                    std::process::exit(2);
                }));
            }
            "--out" => out = Some(value(&args, &mut i)),
            "--metrics-out" => metrics_out = Some(value(&args, &mut i)),
            "--requests" => {
                requests = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--requests: {e}");
                    std::process::exit(2);
                }));
            }
            "--seed" => {
                seed = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--seed: {e}");
                    std::process::exit(2);
                }));
            }
            "--shards" => {
                shards = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--shards: {e}");
                    std::process::exit(2);
                }));
            }
            "--conns" => {
                conns = Some(value(&args, &mut i).parse().unwrap_or_else(|e| {
                    eprintln!("--conns: {e}");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--full] [all | {}]\n       \
                     experiments trace [--procs N] [--keys N] [--out FILE] [--check]\n       \
                     experiments chaos [--procs N] [--keys N] [--seed N] [--out FILE] [--check]\n       \
                     experiments serve [--procs N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench4 [--procs N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments shard [--procs N] [--shards N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench5 [--procs N] [--shards N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench6 [--quick] [--out FILE] [--check]\n       \
                     experiments bulk [--procs N] [--shards N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench8 [--procs N] [--shards N] [--requests N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments net [--procs N] [--requests N] [--conns N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench7 [--procs N] [--requests N] [--conns N] [--seed N] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments records [--procs N] [--requests N] [--conns N] [--seed N] [--quick] [--out FILE] [--metrics-out FILE] [--check]\n       \
                     experiments bench9 [--procs N] [--requests N] [--conns N] [--seed N] [--quick] [--out FILE] [--metrics-out FILE] [--check]",
                    IDS.join(" | ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    // The trace subcommand: one traced run with its own knobs.
    if ids.iter().any(|id| id == "trace") && ids.len() == 1 {
        let keys = keys.unwrap_or_else(|| trace::default_keys_per_rank(scale));
        let run = trace::run_trace(procs, keys, MessageMode::Long);
        println!("## Per-rank tracing [trace]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.chrome_json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!(
                "Chrome trace written to {path} ({} bytes).",
                run.chrome_json.len()
            );
        }
        if check {
            match trace::validate(&run.traces, procs) {
                Ok(()) => println!("check: every rank spans every phase."),
                Err(e) => {
                    eprintln!("check failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    // The chaos subcommand: the fault-injection conformance sweep with its
    // own machine size, working set, and master seed.
    if ids.iter().any(|id| id == "chaos") && ids.len() == 1 {
        let keys = keys.unwrap_or_else(|| chaos::default_keys_per_rank(scale));
        let seed = seed.unwrap_or(chaos::DEFAULT_SEED);
        let run = chaos::run_chaos(procs, keys, seed);
        println!("## Fault-injection conformance [chaos]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.report) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("Chaos report written to {path}.");
        }
        if check {
            if run.passed {
                println!("check: every cell sorted; equal seeds injected equal faults.");
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }
    // The serve subcommand: open-loop load against the sort service.
    if ids.iter().any(|id| id == "serve") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| serve_bench::default_requests(scale));
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let run = serve_bench::run_serve(procs, requests, seed);
        println!("## Sort-as-a-service load generation [serve]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("SERVE_1 document written to {path}.");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check {
            if run.passed {
                println!(
                    "check: every reply matched the oracle; zero sheds; \
                     steady-state plan-cache hit rate 100%; metrics registry \
                     reconciles with the service counters."
                );
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }

    // bench4: one artifact combining the remap engine's BENCH_1 records
    // with the serving benchmark's SERVE_1 document.
    if ids.iter().any(|id| id == "bench4") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| serve_bench::default_requests(scale));
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let (records, speedups) = remap_bench::records(scale);
        let run = serve_bench::run_serve(procs, requests, seed);
        // A/B the metrics plane's hot-path cost: the same load with
        // instrumentation compiled out of the request path. Reported, not
        // gated — shared CI hosts are too noisy to gate a few percent.
        let bare = serve_bench::run_serve_metrics(procs, requests, seed, false);
        let overhead_pct = if bare.p99_us > 0.0 {
            (run.p99_us / bare.p99_us - 1.0) * 100.0
        } else {
            0.0
        };
        let doc = format!(
            "{{\n\"schema\": \"BENCH_4\",\n\"bench\": {},\"serve\": {}}}\n",
            bench_json(&records),
            run.json
        );
        println!("## BENCH_4 composition [bench4]\n");
        println!("Remap engine flat-path speedup over legacy: {speedups}.\n");
        println!(
            "Metrics-plane overhead: p99 {:.1} µs with metrics vs {:.1} µs \
             without ({overhead_pct:+.2}%).\n",
            run.p99_us, bare.p99_us
        );
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_4 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check && !(run.passed && bare.passed) {
            eprintln!("check failed: see serve report above.");
            std::process::exit(1);
        }
        return;
    }
    // The shard subcommand: sharded serving vs a single-pool baseline at
    // equal total machine count, under the same mixed load.
    if ids.iter().any(|id| id == "shard") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| shard_bench::default_requests(scale));
        let seed = seed.unwrap_or(shard_bench::DEFAULT_SEED);
        let shards = shards.unwrap_or(shard_bench::DEFAULT_SHARDS);
        let run = shard_bench::run_shard(procs, shards, requests, seed);
        println!("## Sharded serving vs single pool [shard]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("SHARD_1 document written to {path}.");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check {
            if run.passed {
                println!(
                    "check: zero sheds, zero missed deadlines, zero failed \
                     batches, zero oracle mismatches across both services."
                );
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }

    // bench6: the committed local-kernel artifact wrapping KERNEL_1.
    // `--quick` measures the reduced CI matrix; `--check` exits non-zero
    // on any oracle mismatch, a dispatch cell more than 5% slower than
    // the seed kernel, or a key width whose selected kernel never beats
    // the seed on any sort size class.
    if ids.iter().any(|id| id == "bench6") && ids.len() == 1 {
        let run = kernels::run_kernels(quick);
        let doc = kernels::bench6_doc(&run);
        println!("## BENCH_6 composition [bench6]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_6 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if check {
            if run.passed {
                println!(
                    "check: every oracle matched; dispatch within 5% of the \
                     seed on every cell; every width has a winning cell."
                );
            } else {
                eprintln!(
                    "check failed: oracles {} / dispatch bound {} / per-width wins {:?} \
                     — see matrix above.",
                    run.oracles_ok, run.dispatch_within_bound, run.sort_win_per_width
                );
                std::process::exit(1);
            }
        }
        return;
    }

    // bench5: the committed sharded-serving artifact wrapping SHARD_1.
    if ids.iter().any(|id| id == "bench5") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| shard_bench::default_requests(scale));
        let seed = seed.unwrap_or(shard_bench::DEFAULT_SEED);
        let shards = shards.unwrap_or(shard_bench::DEFAULT_SHARDS);
        let run = shard_bench::run_shard(procs, shards, requests, seed);
        let doc = format!(
            "{{\n\"schema\": \"BENCH_5\",\n\"small_p99_improved\": {},\n\"shard\": {}}}\n",
            run.small_p99_improved, run.json
        );
        println!("## BENCH_5 composition [bench5]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_5 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check && !(run.passed && run.small_p99_improved) {
            eprintln!(
                "check failed: correctness {} / small-class p99 win {} — see report above.",
                run.passed, run.small_p99_improved
            );
            std::process::exit(1);
        }
        return;
    }
    // The bulk subcommand: cross-shard bulk sorts vs a single pool that
    // takes each over-band request whole, at equal total machine count.
    if ids.iter().any(|id| id == "bulk") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| bulk_bench::default_requests(scale));
        let seed = seed.unwrap_or(bulk_bench::DEFAULT_SEED);
        let shards = shards.unwrap_or(bulk_bench::DEFAULT_SHARDS);
        let run = bulk_bench::run_bulk(procs, shards, requests, seed);
        println!("## Cross-shard bulk sorts vs single pool [bulk]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BULK_1 document written to {path}.");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check {
            if run.passed {
                println!(
                    "check: every over-band request completed oracle-identical; \
                     partition skew within the bound; two same-seed engine twins \
                     replayed bit for bit."
                );
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }

    // bench8: the committed bulk-sort artifact wrapping BULK_1.
    if ids.iter().any(|id| id == "bench8") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| bulk_bench::default_requests(scale));
        let seed = seed.unwrap_or(bulk_bench::DEFAULT_SEED);
        let shards = shards.unwrap_or(bulk_bench::DEFAULT_SHARDS);
        let run = bulk_bench::run_bulk(procs, shards, requests, seed);
        let doc = format!("{{\n\"schema\": \"BENCH_8\",\n\"bulk\": {}}}\n", run.json);
        println!("## BENCH_8 composition [bench8]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_8 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check && !run.passed {
            eprintln!("check failed: see report above.");
            std::process::exit(1);
        }
        return;
    }
    // The net subcommand: the serving workload over real loopback TCP.
    if ids.iter().any(|id| id == "net") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| net_bench::default_requests(scale));
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let conns = conns.unwrap_or(net_bench::DEFAULT_CONNS);
        let run = net_bench::run_net(procs, requests, conns, seed);
        println!("## TCP wire frontend under load [net]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("NET_1 document written to {path}.");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check {
            if run.passed {
                println!(
                    "check: every wire reply matched the oracle; zero sheds, \
                     expiries, and frame errors; wire, service, and registry \
                     counters reconcile exactly."
                );
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }

    // bench7: the committed wire-frontend artifact wrapping NET_1.
    if ids.iter().any(|id| id == "bench7") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| net_bench::default_requests(scale));
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let conns = conns.unwrap_or(net_bench::DEFAULT_CONNS);
        let run = net_bench::run_net(procs, requests, conns, seed);
        let doc = format!("{{\n\"schema\": \"BENCH_7\",\n\"net\": {}}}\n", run.json);
        println!("## BENCH_7 composition [bench7]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_7 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check && !run.passed {
            eprintln!("check failed: see report above.");
            std::process::exit(1);
        }
        return;
    }
    // The records subcommand: the key-width × payload-stride grid over
    // loopback TCP, every reply checked against the stable record oracle.
    if ids.iter().any(|id| id == "records") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| {
            if quick {
                8
            } else {
                record_bench::default_requests(scale)
            }
        });
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let conns = conns.unwrap_or(record_bench::DEFAULT_CONNS);
        let run = record_bench::run_records(procs, requests, conns, seed);
        println!("## Record sorting over the wire [records]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &run.json) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("RECORD_1 document written to {path}.");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check {
            if run.passed {
                println!(
                    "check: every record reply matched the stable oracle \
                     byte-for-byte across all widths and payload strides; \
                     wire, service, and registry counters reconcile exactly."
                );
            } else {
                eprintln!("check failed: see report above.");
                std::process::exit(1);
            }
        }
        return;
    }

    // bench9: the committed record-sorting artifact wrapping RECORD_1.
    if ids.iter().any(|id| id == "bench9") && ids.len() == 1 {
        let requests = requests.unwrap_or_else(|| {
            if quick {
                8
            } else {
                record_bench::default_requests(scale)
            }
        });
        let seed = seed.unwrap_or(serve_bench::DEFAULT_SEED);
        let conns = conns.unwrap_or(record_bench::DEFAULT_CONNS);
        let run = record_bench::run_records(procs, requests, conns, seed);
        let doc = format!(
            "{{\n\"schema\": \"BENCH_9\",\n\"records\": {}}}\n",
            run.json
        );
        println!("## BENCH_9 composition [bench9]\n");
        println!("{}", run.report);
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            println!("BENCH_9 document written to {path}.");
        } else {
            println!("```json\n{doc}```");
        }
        if let Some(path) = metrics_out {
            write_metrics(&path, run.metrics_json.as_ref(), run.prometheus.as_ref());
        }
        if check && !run.passed {
            eprintln!("check failed: see report above.");
            std::process::exit(1);
        }
        return;
    }
    if out.is_some()
        || metrics_out.is_some()
        || check
        || quick
        || keys.is_some()
        || seed.is_some()
        || requests.is_some()
        || shards.is_some()
        || conns.is_some()
    {
        eprintln!(
            "--out/--metrics-out/--check/--quick/--keys/--seed/--requests/--shards/--conns only \
             apply to the `trace`, `chaos`, `serve`, `bench4`, `shard`, `bench5`, `bench6`, \
             `bulk`, `net`, `bench7`, `bench8`, `records`, or `bench9` subcommands"
        );
        std::process::exit(2);
    }
    let run_all = ids.is_empty() || ids.iter().any(|i| i == "all");

    let experiments = if run_all {
        all(scale)
    } else {
        ids.iter()
            .map(|id| {
                by_id(id, scale).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}'; known: {}", IDS.join(", "));
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!(
        "# Chapter 5 reproduction ({} scale)\n",
        if scale.shrink == 1 { "paper" } else { "host" }
    );
    for e in experiments {
        println!("## {} [{}]\n", e.title, e.id);
        println!("{}", e.body);
    }
}
