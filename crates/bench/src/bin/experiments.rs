//! Regenerate the Chapter 5 tables and figures.
//!
//! ```text
//! experiments                  # run everything at host scale
//! experiments table5_1 fig5_7  # run selected experiments
//! experiments --full all       # measured runs at paper scale (slow!)
//! ```

use bitonic_bench::experiments::{all, by_id, Scale, IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_host();
    let mut ids: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--full" => scale = Scale::full(),
            "--help" | "-h" => {
                println!("usage: experiments [--full] [all | {}]", IDS.join(" | "));
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    let run_all = ids.is_empty() || ids.iter().any(|i| i == "all");

    let experiments = if run_all {
        all(scale)
    } else {
        ids.iter()
            .map(|id| {
                by_id(id, scale).unwrap_or_else(|| {
                    eprintln!("unknown experiment '{id}'; known: {}", IDS.join(", "));
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!(
        "# Chapter 5 reproduction ({} scale)\n",
        if scale.shrink == 1 { "paper" } else { "host" }
    );
    for e in experiments {
        println!("## {} [{}]\n", e.title, e.id);
        println!("{}", e.body);
    }
}
