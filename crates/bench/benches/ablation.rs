//! Ablation benches for the design choices DESIGN.md calls out:
//! merge-based local phases vs compare-exchange simulation, and the smart
//! schedule vs cyclic-blocked remapping at equal computation.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::MessageMode;

fn bench_ablation(c: &mut Criterion) {
    let p = 8;
    let n = 1usize << 12;
    let keys = uniform_keys(n * p, 6);
    let mut group = c.benchmark_group("ablation_local_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    for (label, strategy) in [
        ("merges_theorem_2_3", LocalStrategy::Merges),
        ("one_sort_per_phase_fig_4_5", LocalStrategy::FullSort),
        ("canonical_compare_exchange", LocalStrategy::Canonical),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &keys, |b, keys| {
            b.iter(|| run_parallel_sort(keys, p, MessageMode::Long, Algorithm::Smart, strategy))
        });
    }
    group.finish();

    // Remap-count ablation: same merge-based computation, different
    // remapping strategies — plus the §4.3 fused pipeline.
    let mut group = c.benchmark_group("ablation_remap_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    for algo in [
        Algorithm::Smart,
        Algorithm::SmartFused,
        Algorithm::CyclicBlocked,
    ] {
        group.bench_with_input(BenchmarkId::new(algo.name(), n), &keys, |b, keys| {
            b.iter(|| run_parallel_sort(keys, p, MessageMode::Long, algo, LocalStrategy::Merges))
        });
    }
    group.finish();

    // Lemma 5 shifting ablation: Head vs Tail remap placement.
    use bitonic_core::shift::{shifted_smart_sort, ShiftStrategy};
    use spmd::run_spmd;
    let mut group = c.benchmark_group("ablation_shift_strategy");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    for (label, strategy) in [("head", ShiftStrategy::Head), ("tail", ShiftStrategy::Tail)] {
        group.bench_with_input(BenchmarkId::new(label, n), &keys, |b, keys| {
            b.iter(|| {
                run_spmd::<u32, _, _>(p, MessageMode::Long, |comm| {
                    let me = comm.rank();
                    shifted_smart_sort(comm, keys[me * n..(me + 1) * n].to_vec(), strategy)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
