//! Criterion bench for Tables 5.1/5.2: the three bitonic variants.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::MessageMode;

fn bench_strategies(c: &mut Criterion) {
    let p = 8;
    let mut group = c.benchmark_group("table5_1_strategies");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for lgn in [10u32, 12] {
        let n = 1usize << lgn;
        let keys = uniform_keys(n * p, 1);
        group.throughput(Throughput::Elements((n * p) as u64));
        for algo in [
            Algorithm::BlockedMerge,
            Algorithm::CyclicBlocked,
            Algorithm::Smart,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.name(), n), &keys, |b, keys| {
                b.iter(|| {
                    run_parallel_sort(keys, p, MessageMode::Long, algo, LocalStrategy::Merges)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
