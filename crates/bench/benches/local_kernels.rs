//! Criterion micro-benchmarks for the branch-free local-phase kernels
//! against the seed kernels they dispatch against: radix vs the iterative
//! bitonic network on full sorts, the rotate-copy circular merge vs the
//! comparator network on bitonic inputs, and the dispatched entry points
//! themselves (which must track the winner per size class).

use bitonic_network::Direction;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use local_sorts::bitonic_merge::sort_circular_with_scratch;
use local_sorts::kernels::{bitonic_merge_iterative, bitonic_sort_iterative};
use local_sorts::radix::radix_sort_with_scratch;
use local_sorts::{local_sort_with_scratch, sort_bitonic_with_scratch};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed;
    (0..n).map(|_| splitmix(&mut s)).collect()
}

fn bitonic_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut v = random_keys(n, seed);
    let peak = n / 2;
    v[..peak].sort_unstable();
    v[peak..].sort_unstable_by(|a, b| b.cmp(a));
    v.rotate_left(n / 3);
    v
}

fn bench_local_kernels(c: &mut Criterion) {
    local_sorts::dispatch::ensure_calibrated();

    let mut group = c.benchmark_group("local_kernels/sort");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    // One size class per side of the default u64 crossover.
    for lg in [6u32, 12] {
        let n = 1usize << lg;
        let input = random_keys(n, u64::from(lg));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("radix", n), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut v = input.clone();
                radix_sort_with_scratch(&mut v, &mut scratch);
                v
            })
        });
        group.bench_function(BenchmarkId::new("bitonic_net", n), |b| {
            b.iter(|| {
                let mut v = input.clone();
                bitonic_sort_iterative(&mut v, Direction::Ascending);
                v
            })
        });
        group.bench_function(BenchmarkId::new("dispatch", n), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut v = input.clone();
                local_sort_with_scratch(&mut v, &mut scratch, Direction::Ascending);
                v
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("local_kernels/merge");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for lg in [4u32, 12] {
        let n = 1usize << lg;
        let input = bitonic_keys(n, u64::from(lg));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(BenchmarkId::new("circular_merge", n), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut v = input.clone();
                sort_circular_with_scratch(&mut v, &mut scratch, Direction::Ascending);
                v
            })
        });
        group.bench_function(BenchmarkId::new("network_merge", n), |b| {
            b.iter(|| {
                let mut v = input.clone();
                bitonic_merge_iterative(&mut v, Direction::Ascending);
                v
            })
        });
        group.bench_function(BenchmarkId::new("dispatch", n), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                let mut v = input.clone();
                sort_bitonic_with_scratch(&mut v, &mut scratch, Direction::Ascending);
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_kernels);
criterion_main!(benches);
