//! Criterion bench for Table 5.3 / Figure 5.5: short vs long messages.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::MessageMode;

fn bench_messages(c: &mut Criterion) {
    let p = 4;
    let n = 1usize << 10;
    let keys = uniform_keys(n * p, 4);
    let mut group = c.benchmark_group("table5_3_messages");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    for (label, mode) in [("short", MessageMode::Short), ("long", MessageMode::Long)] {
        group.bench_with_input(BenchmarkId::new(label, n), &keys, |b, keys| {
            b.iter(|| run_parallel_sort(keys, p, mode, Algorithm::Smart, LocalStrategy::Merges))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_messages);
criterion_main!(benches);
