//! Criterion bench for Figure 5.3: fixed total size, varying P.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::MessageMode;

fn bench_scaling(c: &mut Criterion) {
    let total = 1usize << 14;
    let keys = uniform_keys(total, 2);
    let mut group = c.benchmark_group("fig5_3_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(total as u64));
    for p in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                run_parallel_sort(
                    &keys,
                    p,
                    MessageMode::Long,
                    Algorithm::Smart,
                    LocalStrategy::Merges,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
