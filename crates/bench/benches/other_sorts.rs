//! Criterion bench for Figures 5.7/5.8: bitonic vs radix vs sample sort.

use baselines::{run_baseline, Baseline};
use bitonic_bench::workloads::{keys, Distribution};
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::MessageMode;

fn bench_other_sorts(c: &mut Criterion) {
    let p = 8;
    let n = 1usize << 12;
    let mut group = c.benchmark_group("fig5_7_other_sorts");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    for dist in [Distribution::Uniform31, Distribution::LowEntropy] {
        let input = keys(n * p, dist, 5);
        group.bench_with_input(
            BenchmarkId::new("bitonic_smart", dist.name()),
            &input,
            |b, input| {
                b.iter(|| {
                    run_parallel_sort(
                        input,
                        p,
                        MessageMode::Long,
                        Algorithm::Smart,
                        LocalStrategy::Merges,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("radix", dist.name()),
            &input,
            |b, input| b.iter(|| run_baseline(input, p, MessageMode::Long, Baseline::Radix)),
        );
        group.bench_with_input(
            BenchmarkId::new("sample", dist.name()),
            &input,
            |b, input| b.iter(|| run_baseline(input, p, MessageMode::Long, Baseline::Sample)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_other_sorts);
criterion_main!(benches);
