//! Criterion micro-benchmarks for the Chapter 4 local routines.

use bitonic_network::sequence::generate;
use bitonic_network::{bitonic_merge, Direction};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use local_sorts::bitonic_min::bitonic_min_index_with_stats;
use local_sorts::{radix_sort, sort_bitonic};

fn bench_local_sorts(c: &mut Criterion) {
    let n = 1usize << 14;
    let bitonic_input = generate::rotated((0..n as u64).collect(), 2 * n / 3, n / 5);
    let mut group = c.benchmark_group("local_sorts");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements(n as u64));
    // O(n) bitonic merge sort vs the O(n log n) comparator network vs the
    // general-purpose sorts, on the same bitonic input.
    group.bench_function(BenchmarkId::new("bitonic_merge_sort", n), |b| {
        b.iter(|| {
            let mut v = bitonic_input.clone();
            sort_bitonic(&mut v, Direction::Ascending);
            v
        })
    });
    group.bench_function(BenchmarkId::new("network_bitonic_merge", n), |b| {
        b.iter(|| {
            let mut v = bitonic_input.clone();
            bitonic_merge(&mut v, Direction::Ascending);
            v
        })
    });
    group.bench_function(BenchmarkId::new("radix_sort", n), |b| {
        b.iter(|| {
            let mut v = bitonic_input.clone();
            radix_sort(&mut v);
            v
        })
    });
    group.bench_function(BenchmarkId::new("std_sort_unstable", n), |b| {
        b.iter(|| {
            let mut v = bitonic_input.clone();
            v.sort_unstable();
            v
        })
    });
    group.finish();

    // Algorithm 2: O(log n) minimum vs linear scan.
    let mut group = c.benchmark_group("bitonic_minimum");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.bench_function(BenchmarkId::new("splitter_search", n), |b| {
        b.iter(|| bitonic_min_index_with_stats(&bitonic_input).0)
    });
    group.bench_function(BenchmarkId::new("linear_scan", n), |b| {
        b.iter(|| bitonic_network::sequence::min_index_linear(&bitonic_input))
    });
    group.finish();
}

criterion_group!(benches, bench_local_sorts);
criterion_main!(benches);
