//! Criterion bench for Figure 5.4: isolating the computation phases.

use bitonic_bench::workloads::uniform_keys;
use bitonic_core::algorithms::{run_parallel_sort, Algorithm};
use bitonic_core::local::LocalStrategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use local_sorts::radix_sort;
use spmd::MessageMode;

fn bench_breakdown(c: &mut Criterion) {
    let p = 8;
    let n = 1usize << 12;
    let keys = uniform_keys(n * p, 3);
    let mut group = c.benchmark_group("fig5_4_breakdown");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.throughput(Throughput::Elements((n * p) as u64));
    // The initial local computation alone (what the first lg n stages cost).
    group.bench_with_input(BenchmarkId::new("local_radix_only", n), &keys, |b, keys| {
        b.iter(|| {
            let mut v = keys.clone();
            for chunk in v.chunks_mut(n) {
                radix_sort(chunk);
            }
            v
        })
    });
    // The full sort (communication + computation).
    group.bench_with_input(BenchmarkId::new("full_smart_sort", n), &keys, |b, keys| {
        b.iter(|| {
            run_parallel_sort(
                keys,
                p,
                MessageMode::Long,
                Algorithm::Smart,
                LocalStrategy::Merges,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
