//! Criterion bench for the flat-buffer remap engine: the allocation-free
//! [`bitonic_core::SortContext`] hot path against the legacy nested-Vec
//! path (a fresh plan plus [`bitonic_core::RemapPlan::apply`] per remap,
//! as the pre-PR sorts ran), in both message modes.
//!
//! Each iteration boots the SPMD machine and drives `ROUNDS`
//! blocked↔cyclic round trips (2·ROUNDS remaps), the access pattern every
//! sort in the workspace reduces to.

use bitonic_core::layout::{blocked, cyclic};
use bitonic_core::{RemapPlan, SortContext};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spmd::{run_spmd, MessageMode};

const P: usize = 8;
const ROUNDS: usize = 4;

/// Run `ROUNDS` blocked↔cyclic round trips on the whole machine and
/// return a checksum so the work cannot be optimised away.
fn run_remaps(n: usize, mode: MessageMode, flat: bool) -> u64 {
    let lg_n = n.trailing_zeros();
    let lg_p = P.trailing_zeros();
    let results = run_spmd::<u64, _, _>(P, mode, move |comm| {
        let me = comm.rank();
        let b = blocked(lg_n + lg_p, lg_n);
        let c = cyclic(lg_n + lg_p, lg_n);
        let mut data: Vec<u64> = (0..n).map(|x| (me * n + x) as u64).collect();
        if flat {
            let mut ctx = SortContext::new();
            for _ in 0..ROUNDS {
                ctx.remap(comm, &b, &c, &mut data);
                ctx.remap(comm, &c, &b, &mut data);
            }
        } else {
            // Pre-PR hot path: every remap rebuilt its plan from a layout
            // walk and packed into freshly allocated nested Vecs.
            for _ in 0..ROUNDS {
                data = RemapPlan::new(&b, &c, me).apply(comm, &data);
                data = RemapPlan::new(&c, &b, me).apply(comm, &data);
            }
        }
        data[0]
    });
    results.iter().map(|r| r.output).sum()
}

fn bench_remap_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("remap_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for (mode_label, mode, n) in [
        ("long", MessageMode::Long, 1usize << 12),
        ("short", MessageMode::Short, 1usize << 9),
    ] {
        group.throughput(Throughput::Elements((n * P * 2 * ROUNDS) as u64));
        for (path_label, flat) in [("flat", true), ("legacy", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("{path_label}/{mode_label}"), n),
                &n,
                |b, &n| b.iter(|| run_remaps(n, mode, flat)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_remap_throughput);
criterion_main!(benches);
