//! The full bitonic sorting network (Definition 3) and its algorithmic view.
//!
//! The network for `N` keys has `lg N` stages; stage `s` runs steps
//! `s, s−1, …, 1`, and step `j` compare-exchanges every address pair that
//! differs exactly in bit `j − 1`. This module provides the step schedule,
//! an executor over arrays, and small-N exhaustive verification helpers
//! (zero–one principle).

use crate::node::Comparator;
use crate::{lg, Direction};

/// Coordinates of one step of the network: `(stage, step)`, both 1-indexed,
/// with `1 <= step <= stage <= lg N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StepId {
    /// Stage number (`1 ..= lg N`).
    pub stage: u32,
    /// Step inside the stage (`stage ..= 1`, executed in decreasing order).
    pub step: u32,
}

impl StepId {
    /// The address bit (0-indexed) in which compared pairs differ at this
    /// step: `step − 1`.
    #[must_use]
    pub fn bit(&self) -> u32 {
        self.step - 1
    }

    /// The address bit (0-indexed) that determines the merge direction of
    /// this step's stage.
    #[must_use]
    pub fn direction_bit(&self) -> u32 {
        self.stage
    }

    /// The step that follows this one in network order, if any, for a
    /// network of `lg_n_total` = `lg N` stages.
    #[must_use]
    pub fn next(&self, lg_n_total: u32) -> Option<StepId> {
        if self.step > 1 {
            Some(StepId {
                stage: self.stage,
                step: self.step - 1,
            })
        } else if self.stage < lg_n_total {
            Some(StepId {
                stage: self.stage + 1,
                step: self.stage + 1,
            })
        } else {
            None
        }
    }
}

/// The bitonic sorting network for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct BitonicNetwork {
    n: usize,
    stages: u32,
}

impl BitonicNetwork {
    /// Build the network schedule for `n` keys.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let stages = lg(n);
        BitonicNetwork { n, stages }
    }

    /// Number of keys the network sorts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate 1-key network.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Number of stages, `lg N`.
    #[must_use]
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Total number of steps, `lg N (lg N + 1) / 2`.
    #[must_use]
    pub fn step_count(&self) -> usize {
        let s = self.stages as usize;
        s * (s + 1) / 2
    }

    /// Total number of comparators, `N/2` per step.
    #[must_use]
    pub fn comparator_count(&self) -> usize {
        self.step_count() * self.n / 2
    }

    /// All steps in execution order: stage 1 step 1, stage 2 steps 2 then 1, …
    pub fn steps(&self) -> impl Iterator<Item = StepId> + '_ {
        (1..=self.stages)
            .flat_map(|stage| (1..=stage).rev().map(move |step| StepId { stage, step }))
    }

    /// The comparators of one step, each touching a disjoint address pair.
    pub fn comparators(&self, id: StepId) -> impl Iterator<Item = Comparator> + '_ {
        let bit = id.bit();
        let stage = id.stage;
        (0..self.n)
            .filter(move |r| (r >> bit) & 1 == 0)
            .map(move |lo| Comparator::for_pair(stage, bit + 1, lo))
    }

    /// Apply one step of the network to `data` (algorithmic view).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn apply_step<T: Ord>(&self, data: &mut [T], id: StepId) {
        assert_eq!(data.len(), self.n);
        for cmp in self.comparators(id) {
            cmp.apply(data);
        }
    }

    /// Run the whole network over `data`, sorting it ascending.
    pub fn sort<T: Ord>(&self, data: &mut [T]) {
        for id in self.steps() {
            self.apply_step(data, id);
        }
    }

    /// Run only the given stage (all of its steps, in order).
    pub fn apply_stage<T: Ord>(&self, data: &mut [T], stage: u32) {
        assert!(stage >= 1 && stage <= self.stages);
        for step in (1..=stage).rev() {
            self.apply_step(data, StepId { stage, step });
        }
    }

    /// Verify the network sorts *every* 0/1 input of its size — by the
    /// zero–one principle this proves it sorts every input. Exponential in
    /// `n`; intended for `n <= 2^16` in tests.
    #[must_use]
    pub fn satisfies_zero_one_principle(&self) -> bool {
        let n = self.n;
        assert!(n <= 20, "zero-one check is exponential; keep n small");
        for mask in 0u64..(1u64 << n) {
            let mut v: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            self.sort(&mut v);
            if !crate::sequence::is_sorted_asc(&v) {
                return false;
            }
        }
        true
    }
}

/// Direction of the merge block containing `row` during `stage` — re-export
/// of the Definition 3 rule at network level.
#[must_use]
pub fn step_direction(stage: u32, row: usize) -> Direction {
    Direction::of_block(stage, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::is_sorted_asc;

    #[test]
    fn step_schedule_matches_definition() {
        let net = BitonicNetwork::new(8);
        let steps: Vec<(u32, u32)> = net.steps().map(|s| (s.stage, s.step)).collect();
        assert_eq!(
            steps,
            vec![(1, 1), (2, 2), (2, 1), (3, 3), (3, 2), (3, 1)],
            "N=8: 3 stages, stage i has i steps, counted right-to-left"
        );
        assert_eq!(net.step_count(), 6);
        assert_eq!(net.comparator_count(), 6 * 4);
    }

    #[test]
    fn zero_one_principle_small_sizes() {
        for n in [1usize, 2, 4, 8, 16] {
            assert!(
                BitonicNetwork::new(n).satisfies_zero_one_principle(),
                "network of size {n} failed the 0-1 principle"
            );
        }
    }

    #[test]
    fn sorts_random_permutations() {
        let net = BitonicNetwork::new(64);
        // A fixed linear-congruential stream keeps the test deterministic.
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..20 {
            let mut v: Vec<u64> = (0..64)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x >> 33
                })
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            net.sort(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn stage_output_is_alternating_sorted_runs() {
        // Lemma 6: after stage k the array is 2^(lgN−k) alternating sorted
        // runs of length 2^k.
        let net = BitonicNetwork::new(32);
        let mut v: Vec<u32> = (0..32u32)
            .map(|i| i.wrapping_mul(2654435761) >> 16)
            .collect();
        for stage in 1..=net.stages() {
            net.apply_stage(&mut v, stage);
            let run = 1usize << stage;
            for (b, chunk) in v.chunks(run).enumerate() {
                let dir = Direction::of_block(stage, b * run);
                assert!(
                    crate::sequence::is_sorted(chunk, dir),
                    "after stage {stage}, run {b} not sorted {dir:?}: {chunk:?}"
                );
            }
        }
        assert!(is_sorted_asc(&v));
    }

    #[test]
    fn lemma_7_columns_hold_bitonic_sequences() {
        // The data array at column s of stage k consists of 2^(lgN − s)
        // bitonic sequences of length 2^s.
        let net = BitonicNetwork::new(64);
        let mut v: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(2654435761) >> 8)
            .collect();
        for id in net.steps() {
            net.apply_step(&mut v, id);
            // After executing step `s` we are at column s − 1: sequences of
            // length 2^(s−1) are bitonic (and at s = 1, trivially so).
            let len = 1usize << (id.step - 1);
            for chunk in v.chunks(len) {
                assert!(
                    crate::sequence::is_bitonic(chunk),
                    "after {id:?}: {chunk:?} not bitonic"
                );
            }
        }
    }

    #[test]
    fn step_id_next_walks_whole_network() {
        let net = BitonicNetwork::new(16);
        let mut walked = vec![];
        let mut cur = Some(StepId { stage: 1, step: 1 });
        while let Some(id) = cur {
            walked.push(id);
            cur = id.next(net.stages());
        }
        let expect: Vec<StepId> = net.steps().collect();
        assert_eq!(walked, expect);
    }

    #[test]
    fn bits_of_steps() {
        let id = StepId { stage: 5, step: 3 };
        assert_eq!(id.bit(), 2);
        assert_eq!(id.direction_bit(), 5);
    }

    #[test]
    fn apply_step_only_touches_its_bit_pairs() {
        let net = BitonicNetwork::new(8);
        let mut v: Vec<u32> = vec![7, 6, 5, 4, 3, 2, 1, 0];
        // Stage 3 step 3 pairs (i, i+4).
        net.apply_step(&mut v, StepId { stage: 3, step: 3 });
        assert_eq!(v, vec![3, 2, 1, 0, 7, 6, 5, 4]);
    }

    #[test]
    fn sort_is_idempotent() {
        let net = BitonicNetwork::new(16);
        let mut v: Vec<i32> = (0..16).rev().collect();
        net.sort(&mut v);
        let once = v.clone();
        net.sort(&mut v);
        assert_eq!(v, once);
    }
}
