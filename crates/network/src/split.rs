//! The bitonic split (Definition 2).
//!
//! Given a bitonic sequence of even length `n`, a split compare-exchanges
//! element `i` with element `i + n/2`. The two halves that result are both
//! bitonic, and every element of the first half is `<=` every element of the
//! second (for an ascending split; the reverse for a descending one).

use crate::{compare_exchange, Direction};

/// Perform one in-place bitonic split on `data`.
///
/// After the call, for an [ascending](Direction::Ascending) split,
/// `data[..n/2]` holds the element-wise minima and `data[n/2..]` the maxima
/// of the pairs `(data[i], data[i + n/2])` — the sequences `s1` and `s2` of
/// Definition 2.
///
/// # Panics
/// Panics if `data.len()` is odd.
pub fn bitonic_split<T: Ord>(data: &mut [T], dir: Direction) {
    let n = data.len();
    assert!(
        n.is_multiple_of(2),
        "bitonic split needs an even-length sequence"
    );
    let half = n / 2;
    for i in 0..half {
        compare_exchange(data, i, i + half, dir);
    }
}

/// Split `data` and return the two halves as fresh vectors (`(s1, s2)`),
/// leaving the input untouched. Convenience wrapper used in examples and
/// tests that want to inspect both halves.
#[must_use]
pub fn bitonic_split_copy<T: Ord + Clone>(data: &[T], dir: Direction) -> (Vec<T>, Vec<T>) {
    let mut owned: Vec<T> = data.to_vec();
    bitonic_split(&mut owned, dir);
    let hi = owned.split_off(owned.len() / 2);
    (owned, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{generate, is_bitonic};

    fn check_split_properties(input: &[u64]) {
        assert!(is_bitonic(input), "precondition: input must be bitonic");
        let (s1, s2) = bitonic_split_copy(input, Direction::Ascending);
        // Property 1 of Definition 2: both halves are bitonic.
        assert!(is_bitonic(&s1), "s1 not bitonic: {s1:?} from {input:?}");
        assert!(is_bitonic(&s2), "s2 not bitonic: {s2:?} from {input:?}");
        // Property 2: max(s1) <= min(s2).
        if let (Some(max1), Some(min2)) = (s1.iter().max(), s2.iter().min()) {
            assert!(max1 <= min2, "split halves overlap: {s1:?} | {s2:?}");
        }
        // The split permutes the input.
        let mut all: Vec<u64> = s1.iter().chain(s2.iter()).copied().collect();
        all.sort_unstable();
        let mut orig = input.to_vec();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn split_fundamental_properties_on_rotations() {
        for len in [2usize, 4, 8, 16, 64] {
            for peak in [0, len / 3, len / 2, len - 1] {
                let m = generate::distinct_mountain(len, peak);
                for shift in 0..len {
                    let mut r = m.clone();
                    crate::sequence::rotate_left(&mut r, shift);
                    check_split_properties(&r);
                }
            }
        }
    }

    #[test]
    fn split_with_duplicates() {
        check_split_properties(&[1, 3, 3, 7, 7, 3, 3, 1]);
        check_split_properties(&[5, 5, 5, 5]);
    }

    #[test]
    fn descending_split_reverses_halves() {
        let input = [1u64, 4, 6, 7, 5, 3, 2, 0];
        let (s1, s2) = bitonic_split_copy(&input, Direction::Descending);
        assert!(s1.iter().min() >= s2.iter().max());
    }

    #[test]
    #[should_panic(expected = "even-length")]
    fn odd_length_rejected() {
        let mut v = [1, 2, 3];
        bitonic_split(&mut v, Direction::Ascending);
    }

    #[test]
    fn empty_split_is_noop() {
        let mut v: [u32; 0] = [];
        bitonic_split(&mut v, Direction::Ascending);
    }
}
