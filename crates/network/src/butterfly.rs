//! Butterfly communication structure of a bitonic merge (Figure 2.2).
//!
//! A bitonic merge of size `2^k` is a butterfly with `2^k` rows and `k + 1`
//! columns; between column `c+1` and column `c` every row `r` is wired to
//! row `r ⊕ 2^c`. This module materializes that wiring so examples and the
//! layout explorer can render and reason about which arcs cross processor
//! boundaries under a given data layout (Figures 2.5–2.7).

use crate::lg;

/// A butterfly of `rows` rows (power of two) and `lg rows + 1` columns.
#[derive(Debug, Clone)]
pub struct Butterfly {
    rows: usize,
}

/// One wire of the butterfly between two adjacent columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wire {
    /// Row in the earlier (higher-numbered) column.
    pub from_row: usize,
    /// Row in the later column.
    pub to_row: usize,
    /// `true` if this is a cross wire (`from_row != to_row`).
    pub crossing: bool,
}

impl Butterfly {
    /// Butterfly for a merge of `rows` keys.
    ///
    /// # Panics
    /// Panics if `rows` is not a power of two.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        let _ = lg(rows);
        Butterfly { rows }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of comparator columns, `lg rows`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        lg(self.rows)
    }

    /// Wires feeding column `column` (0-indexed from the output side, as in
    /// the thesis: the transition into column `c` flips bit `c`).
    ///
    /// Every row receives a straight wire and a cross wire; this iterator
    /// yields both for each row, `2 * rows` wires total.
    pub fn wires_into_column(&self, column: u32) -> impl Iterator<Item = Wire> + '_ {
        assert!(column < self.levels(), "columns with inputs are 0..levels");
        let bit = 1usize << column;
        (0..self.rows).flat_map(move |r| {
            [
                Wire {
                    from_row: r,
                    to_row: r,
                    crossing: false,
                },
                Wire {
                    from_row: r ^ bit,
                    to_row: r,
                    crossing: true,
                },
            ]
        })
    }

    /// Count wires into `column` whose endpoints live on different
    /// processors when `rows` keys are spread over `procs` processors with
    /// the given address-to-processor map.
    ///
    /// This is how Figures 2.5/2.6 shade remote (black) vs local (grey)
    /// arcs for the blocked and cyclic layouts.
    pub fn remote_wires(
        &self,
        column: u32,
        proc_of: impl Fn(usize) -> usize,
        _procs: usize,
    ) -> usize {
        self.wires_into_column(column)
            .filter(|w| w.crossing && proc_of(w.from_row) != proc_of(w.to_row))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_8_butterfly_shape() {
        let b = Butterfly::new(8);
        assert_eq!(b.levels(), 3);
        assert_eq!(b.wires_into_column(2).count(), 16);
    }

    #[test]
    fn cross_wires_flip_exactly_one_bit() {
        let b = Butterfly::new(16);
        for col in 0..b.levels() {
            for w in b.wires_into_column(col) {
                if w.crossing {
                    assert_eq!(w.from_row ^ w.to_row, 1usize << col);
                } else {
                    assert_eq!(w.from_row, w.to_row);
                }
            }
        }
    }

    #[test]
    fn blocked_layout_top_columns_are_remote() {
        // 16 rows on 4 processors, blocked: proc = row / 4. Columns 3 and 2
        // (bits above lg n = 2) cross processors; columns 1 and 0 are local.
        let b = Butterfly::new(16);
        let proc_of = |r: usize| r / 4;
        assert!(b.remote_wires(3, proc_of, 4) > 0);
        assert!(b.remote_wires(2, proc_of, 4) > 0);
        assert_eq!(b.remote_wires(1, proc_of, 4), 0);
        assert_eq!(b.remote_wires(0, proc_of, 4), 0);
    }

    #[test]
    fn cyclic_layout_reverses_locality() {
        // Cyclic: proc = row mod 4. Now the *low* columns are remote.
        let b = Butterfly::new(16);
        let proc_of = |r: usize| r % 4;
        assert_eq!(b.remote_wires(3, proc_of, 4), 0);
        assert_eq!(b.remote_wires(2, proc_of, 4), 0);
        assert!(b.remote_wires(1, proc_of, 4) > 0);
        assert!(b.remote_wires(0, proc_of, 4) > 0);
    }
}
