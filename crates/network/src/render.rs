//! Rendering the sorting network — Figures 2.4, 2.5 and 2.6 as text.
//!
//! The thesis's figures draw the network with one horizontal line per key
//! address and one vertical comparator arc per compare-exchange, shading
//! arcs by whether their endpoints share a processor under a given data
//! layout (grey = local, black = remote). [`ascii`] reproduces that view
//! in a terminal; [`dot`] emits Graphviz for papers and docs.

use crate::network::{BitonicNetwork, StepId};
use crate::node::Comparator;

/// How a comparator is classified under a data layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArcKind {
    /// Both endpoints on the same processor (grey arcs in Figure 2.5).
    Local,
    /// Endpoints on different processors (black arcs).
    Remote,
}

/// Classify every comparator of every step under `proc_of` (the address →
/// processor map of some layout). Returns, per step, the number of
/// `(local, remote)` comparators — the data behind Figures 2.5/2.6.
#[must_use]
pub fn classify_steps(
    net: &BitonicNetwork,
    proc_of: &dyn Fn(usize) -> usize,
) -> Vec<(StepId, usize, usize)> {
    net.steps()
        .map(|id| {
            let (mut local, mut remote) = (0usize, 0usize);
            for c in net.comparators(id) {
                if proc_of(c.lo) == proc_of(c.hi) {
                    local += 1;
                } else {
                    remote += 1;
                }
            }
            (id, local, remote)
        })
        .collect()
}

/// ASCII rendering of the network: rows are key addresses, one column
/// block per step. `o--o` marks an ascending comparator (minimum at the
/// top, as the shaded nodes of Figure 2.4), `x--x` a descending one;
/// remote comparators (under `proc_of`) are drawn with `=` instead of `-`.
///
/// Intended for small `N` (each step adds 5 columns).
#[must_use]
pub fn ascii(net: &BitonicNetwork, proc_of: &dyn Fn(usize) -> usize) -> String {
    let n = net.len();
    let steps: Vec<StepId> = net.steps().collect();
    // grid[row][step] = cell of width 4.
    let mut grid = vec![vec!["    ".to_string(); steps.len()]; n];
    for (col, &id) in steps.iter().enumerate() {
        // Endpoints first, then span markers into still-blank cells only —
        // overlapping comparators must not erase each other's endpoints.
        for c in net.comparators(id) {
            let remote = proc_of(c.lo) != proc_of(c.hi);
            let line = if remote { '=' } else { '-' };
            let glyph = if c.dir.is_ascending() { 'o' } else { 'x' };
            grid[c.lo][col] = format!("{glyph}{line}{line}{line}");
            grid[c.hi][col] = format!("{glyph}{line}{line}{line}");
        }
        for c in net.comparators(id) {
            let remote = proc_of(c.lo) != proc_of(c.hi);
            let line = if remote { '=' } else { '-' };
            for row in grid[c.lo + 1..c.hi].iter_mut() {
                if row[col].starts_with(' ') {
                    row[col] = format!("|{line}{line}{line}");
                }
            }
        }
    }
    let mut out = String::new();
    // Header: stage.step labels.
    out.push_str("addr ");
    for id in &steps {
        out.push_str(&format!("{}.{}  ", id.stage, id.step));
    }
    out.push('\n');
    for (r, row) in grid.iter().enumerate() {
        out.push_str(&format!("{r:>3}  "));
        for cell in row {
            out.push_str(cell);
            out.push(' ');
        }
        out.push_str(&format!(" p{}\n", proc_of(r)));
    }
    out
}

/// Graphviz DOT rendering: one node per `(step, address)` wire point, one
/// edge per comparator, remote edges bold. Layout-agnostic tooling can
/// then draw the butterfly structure of Figure 2.4.
#[must_use]
pub fn dot(net: &BitonicNetwork, proc_of: &dyn Fn(usize) -> usize) -> String {
    let mut out = String::from("digraph bitonic {\n  rankdir=LR;\n  node [shape=point];\n");
    let steps: Vec<StepId> = net.steps().collect();
    for r in 0..net.len() {
        for (i, _) in steps.iter().enumerate() {
            out.push_str(&format!("  n{r}_{i};\n"));
        }
        // Horizontal wires.
        for i in 1..steps.len() {
            out.push_str(&format!(
                "  n{r}_{} -> n{r}_{i} [arrowhead=none,color=gray];\n",
                i - 1
            ));
        }
    }
    for (i, &id) in steps.iter().enumerate() {
        for Comparator { lo, hi, dir } in net.comparators(id) {
            let remote = proc_of(lo) != proc_of(hi);
            let style = if remote { "penwidth=2" } else { "color=gray50" };
            let arrow = if dir.is_ascending() { "normal" } else { "inv" };
            out.push_str(&format!(
                "  n{lo}_{i} -> n{hi}_{i} [arrowhead={arrow},{style}];\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_5_blocked_counts() {
        // N = 16 on P = 4 blocked: stages 1..2 fully local; stage
        // lg n + k has k remote steps of N/2 comparators each.
        let net = BitonicNetwork::new(16);
        let proc_of = |r: usize| r / 4;
        let counts = classify_steps(&net, &proc_of);
        for (id, local, remote) in counts {
            let expect_remote = id.bit() >= 2; // bits 2,3 are proc bits
            assert_eq!(remote > 0, expect_remote, "{id:?}");
            assert_eq!(local + remote, 8);
            if expect_remote {
                assert_eq!(remote, 8, "remote steps are fully remote under blocked");
            }
        }
    }

    #[test]
    fn figure_2_6_cyclic_counts_are_complementary() {
        // Under cyclic the classification flips: low-bit steps are remote.
        let net = BitonicNetwork::new(16);
        let blocked = |r: usize| r / 4;
        let cyclic = |r: usize| r % 4;
        for ((id, l_b, _), (_, l_c, _)) in classify_steps(&net, &blocked)
            .into_iter()
            .zip(classify_steps(&net, &cyclic))
        {
            let bit = id.bit();
            if bit < 2 {
                assert_eq!(l_b, 8, "low steps local under blocked");
                assert_eq!(l_c, 0, "low steps remote under cyclic");
            } else {
                assert_eq!(l_b, 0);
                assert_eq!(l_c, 8);
            }
        }
    }

    #[test]
    fn ascii_renders_all_rows_and_steps() {
        let net = BitonicNetwork::new(8);
        let art = ascii(&net, &|r| r / 2);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9, "header + 8 address rows");
        assert!(
            art.contains("o---") || art.contains("o==="),
            "comparator glyphs present"
        );
        assert!(art.contains("x"), "descending comparators present");
        assert!(art.contains("==="), "remote arcs marked");
        assert!(lines[1].ends_with("p0"));
        assert!(lines[8].ends_with("p3"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let net = BitonicNetwork::new(8);
        let g = dot(&net, &|r| r / 4);
        assert!(g.starts_with("digraph bitonic {"));
        assert!(g.trim_end().ends_with('}'));
        // 6 steps × 4 comparators = 24 comparator edges.
        assert_eq!(
            g.matches("arrowhead=normal").count() + g.matches("arrowhead=inv").count(),
            24
        );
        assert!(g.contains("penwidth=2"), "remote edges emphasized");
    }

    #[test]
    fn single_processor_has_no_remote_arcs() {
        let net = BitonicNetwork::new(8);
        let counts = classify_steps(&net, &|_| 0);
        assert!(counts.iter().all(|&(_, _, remote)| remote == 0));
        let art = ascii(&net, &|_| 0);
        assert!(!art.contains('='));
    }
}
