//! Batcher's bitonic sorting network.
//!
//! This crate implements the sorting-network substrate of the thesis
//! *Optimizing Parallel Bitonic Sort* (Ionescu, 1996 / IPPS'97): bitonic
//! sequences, the bitonic split and merge primitives (Definitions 1–2), and
//! the full bitonic sorting network of Definition 3 in both of its dual
//! views:
//!
//! * the **network view** — an explicit graph of `(stage, column, row)`
//!   MIN/MAX nodes wired as a concatenation of butterflies ([`node`],
//!   [`butterfly`]);
//! * the **algorithmic view** — each column of the network is an array of
//!   all data elements and the primitive operation is a *compare-exchange*
//!   between addresses that differ in exactly one bit ([`network`]).
//!
//! Everything downstream (data layouts, remap schedules, local-phase
//! optimizations) is defined in terms of `(stage, step)` coordinates of this
//! network, so this crate is the reference semantics the rest of the
//! workspace is tested against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod butterfly;
pub mod merge;
pub mod network;
pub mod node;
pub mod render;
pub mod sequence;
pub mod split;

pub use merge::bitonic_merge;
pub use network::BitonicNetwork;
pub use sequence::is_bitonic;
pub use split::bitonic_split;

/// Sort direction of a monotonic run or a merge network.
///
/// The thesis writes increasing merges as `BM⊕` and decreasing merges as
/// `BM⊖` (Figure 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Monotonically non-decreasing (`BM⊕`).
    Ascending,
    /// Monotonically non-increasing (`BM⊖`).
    Descending,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn reverse(self) -> Self {
        match self {
            Direction::Ascending => Direction::Descending,
            Direction::Descending => Direction::Ascending,
        }
    }

    /// Direction of the merge block containing `row` during `stage`
    /// (1-indexed, as in Definition 3).
    ///
    /// Stage `s` consists of `N/2^s` alternating merges of size `2^s`; the
    /// block is increasing exactly when bit `s` (0-indexed) of the row
    /// address is zero — the `(r div 2^s) mod 2` test of Definition 3.
    #[must_use]
    pub fn of_block(stage: u32, row: usize) -> Self {
        if (row >> stage) & 1 == 0 {
            Direction::Ascending
        } else {
            Direction::Descending
        }
    }

    /// `true` for [`Direction::Ascending`].
    #[must_use]
    pub fn is_ascending(self) -> bool {
        matches!(self, Direction::Ascending)
    }
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
/// Panics if `x` is zero or not a power of two; network sizes, processor
/// counts and per-processor element counts are all required to be powers of
/// two throughout the thesis (Section 2.1.3).
#[must_use]
pub fn lg(x: usize) -> u32 {
    assert!(x.is_power_of_two(), "{x} is not a power of two");
    x.trailing_zeros()
}

/// Compare-exchange two array slots so that `data[lo] <= data[hi]` holds for
/// an ascending pair (and the reverse for a descending pair).
#[inline]
pub fn compare_exchange<T: Ord>(data: &mut [T], lo: usize, hi: usize, dir: Direction) {
    debug_assert!(lo < hi);
    let out_of_order = match dir {
        Direction::Ascending => data[lo] > data[hi],
        Direction::Descending => data[lo] < data[hi],
    };
    if out_of_order {
        data.swap(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lg_of_powers() {
        assert_eq!(lg(1), 0);
        assert_eq!(lg(2), 1);
        assert_eq!(lg(1024), 10);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn lg_rejects_non_powers() {
        let _ = lg(12);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn lg_rejects_zero() {
        let _ = lg(0);
    }

    #[test]
    fn block_direction_alternates() {
        // Stage 1 on 8 rows: blocks of size 2, alternating.
        let dirs: Vec<Direction> = (0..8).map(|r| Direction::of_block(1, r)).collect();
        assert_eq!(
            dirs,
            vec![
                Direction::Ascending,
                Direction::Ascending,
                Direction::Descending,
                Direction::Descending,
                Direction::Ascending,
                Direction::Ascending,
                Direction::Descending,
                Direction::Descending,
            ]
        );
    }

    #[test]
    fn final_stage_is_ascending() {
        // The last stage of an N-input network has a single increasing merge.
        for r in 0..16 {
            assert_eq!(Direction::of_block(4, r), Direction::Ascending);
        }
    }

    #[test]
    fn reverse_is_involutive() {
        assert_eq!(
            Direction::Ascending.reverse().reverse(),
            Direction::Ascending
        );
        assert_eq!(Direction::Descending.reverse(), Direction::Ascending);
    }

    #[test]
    fn compare_exchange_orders_pairs() {
        let mut v = [3, 1];
        compare_exchange(&mut v, 0, 1, Direction::Ascending);
        assert_eq!(v, [1, 3]);
        compare_exchange(&mut v, 0, 1, Direction::Descending);
        assert_eq!(v, [3, 1]);
        // Already in order: untouched.
        compare_exchange(&mut v, 0, 1, Direction::Descending);
        assert_eq!(v, [3, 1]);
    }
}
