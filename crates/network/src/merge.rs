//! The bitonic merge — `lg n` recursive bitonic splits (Section 2.1.2).
//!
//! A bitonic merge takes a bitonic sequence of power-of-two length and sorts
//! it by applying a bitonic split, then recursing into each half. Its
//! communication structure is the butterfly of Figure 2.2.

use crate::{split::bitonic_split, Direction};

/// Sort the bitonic sequence `data` in place in direction `dir` by repeated
/// bitonic splits (`BM⊕` / `BM⊖`, Figure 2.2).
///
/// This is the comparator-network merge: `lg n` split rounds of `n/2`
/// compare-exchanges each, i.e. `O(n log n)` comparisons. The `local-sorts`
/// crate provides the `O(n)` *bitonic merge sort* of Chapter 4 that replaces
/// it on each processor; this version is the network-faithful reference.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (network sizes are powers of
/// two throughout the thesis).
pub fn bitonic_merge<T: Ord>(data: &mut [T], dir: Direction) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "bitonic merge needs a power-of-two length"
    );
    let mut width = n;
    while width > 1 {
        for chunk in data.chunks_mut(width) {
            bitonic_split(chunk, dir);
        }
        width /= 2;
    }
}

/// Merge two sorted runs (`lo` ascending, `hi` descending — i.e. their
/// concatenation is bitonic) into one sorted sequence of direction `dir`.
///
/// This is how stage `k` of the sorting network consumes the output of stage
/// `k − 1`: two neighbouring monotonic sequences form the bitonic input of
/// the next, twice-as-large merge (Definition 3).
#[must_use]
pub fn merge_opposed_runs<T: Ord + Clone>(lo: &[T], hi: &[T], dir: Direction) -> Vec<T> {
    let mut v: Vec<T> = lo.iter().chain(hi.iter()).cloned().collect();
    bitonic_merge(&mut v, dir);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::{generate, is_sorted, is_sorted_asc, is_sorted_desc, rotate_left};

    #[test]
    fn merges_every_rotation_of_a_mountain() {
        for len in [2usize, 8, 32, 128] {
            let m = generate::distinct_mountain(len, len / 2);
            for shift in (0..len).step_by(3) {
                let mut r = m.clone();
                rotate_left(&mut r, shift);
                let mut expect = r.clone();
                expect.sort_unstable();

                let mut asc = r.clone();
                bitonic_merge(&mut asc, Direction::Ascending);
                assert_eq!(asc, expect);

                let mut desc = r;
                bitonic_merge(&mut desc, Direction::Descending);
                expect.reverse();
                assert_eq!(desc, expect);
            }
        }
    }

    #[test]
    fn figure_2_2_size_8_example() {
        // An increasing bitonic merge of size 8 as in Figure 2.2.
        let mut v = [3u32, 5, 8, 9, 7, 4, 2, 1];
        bitonic_merge(&mut v, Direction::Ascending);
        assert_eq!(v, [1, 2, 3, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn merge_with_duplicates() {
        let mut v = [2u32, 7, 7, 9, 9, 7, 2, 2];
        bitonic_merge(&mut v, Direction::Ascending);
        assert!(is_sorted_asc(&v));
        assert_eq!(v.iter().filter(|&&x| x == 7).count(), 3);
    }

    #[test]
    fn merge_opposed_runs_forms_sorted_output() {
        let lo = [1u32, 4, 6, 7];
        let hi = [9u32, 8, 3, 0];
        let out = merge_opposed_runs(&lo, &hi, Direction::Ascending);
        assert_eq!(out, vec![0, 1, 3, 4, 6, 7, 8, 9]);
        let out = merge_opposed_runs(&lo, &hi, Direction::Descending);
        assert!(is_sorted_desc(&out));
    }

    #[test]
    fn singleton_and_empty_are_noops() {
        let mut one = [42u8];
        bitonic_merge(&mut one, Direction::Ascending);
        assert_eq!(one, [42]);
        let mut none: [u8; 0] = [];
        bitonic_merge(&mut none, Direction::Descending);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut v = [3u32, 1, 2];
        bitonic_merge(&mut v, Direction::Ascending);
    }

    #[test]
    fn direction_dispatch() {
        for dir in [Direction::Ascending, Direction::Descending] {
            let mut v = generate::rotated((0..64).collect(), 40, 13);
            bitonic_merge(&mut v, dir);
            assert!(is_sorted(&v, dir));
        }
    }
}
