//! Bitonic sequences (Definition 1) — predicates, analysis and generators.
//!
//! A sequence is *bitonic* if it first monotonically increases and then
//! monotonically decreases, or if it is a cyclic shift of such a sequence
//! (Figure 2.1). Equivalently: walking around the sequence circularly, the
//! comparison sign between neighbours changes at most twice.

use crate::Direction;

/// Is `data` monotonically non-decreasing?
#[must_use]
pub fn is_sorted_asc<T: Ord>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

/// Is `data` monotonically non-increasing?
#[must_use]
pub fn is_sorted_desc<T: Ord>(data: &[T]) -> bool {
    data.windows(2).all(|w| w[0] >= w[1])
}

/// Is `data` sorted in direction `dir`?
#[must_use]
pub fn is_sorted<T: Ord>(data: &[T], dir: Direction) -> bool {
    match dir {
        Direction::Ascending => is_sorted_asc(data),
        Direction::Descending => is_sorted_desc(data),
    }
}

/// Is `data` a bitonic sequence in the full sense of Definition 1, i.e.
/// including every cyclic shift of an increasing-then-decreasing sequence?
///
/// The test counts sign alternations of the circular neighbour differences:
/// after discarding ties, a bitonic sequence changes comparison direction at
/// most twice around the circle (once at the maximum, once at the minimum).
#[must_use]
pub fn is_bitonic<T: Ord>(data: &[T]) -> bool {
    let n = data.len();
    if n <= 2 {
        return true;
    }
    let mut changes = 0usize;
    let mut last_sign: Option<bool> = None; // true = rising edge
    for i in 0..n {
        let a = &data[i];
        let b = &data[(i + 1) % n];
        let sign = match a.cmp(b) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => continue,
        };
        if let Some(prev) = last_sign {
            if prev != sign {
                changes += 1;
            }
        }
        last_sign = Some(sign);
    }
    // Close the circle: compare the final run direction with the first one.
    // The loop above walked the full circle (index n-1 -> 0 included), so
    // `changes` already counts the wrap-around alternation.
    changes <= 2
}

/// Is `data` increasing-then-decreasing *without* any cyclic shift — the
/// canonical "mountain" shape on the left of Figure 2.1?
#[must_use]
pub fn is_mountain<T: Ord>(data: &[T]) -> bool {
    let n = data.len();
    let mut i = 1;
    while i < n && data[i - 1] <= data[i] {
        i += 1;
    }
    while i < n && data[i - 1] >= data[i] {
        i += 1;
    }
    i == n
}

/// Index of a minimum element of a bitonic sequence, found by linear scan.
///
/// This is the `O(n)` reference against which the `O(log n)` splitter search
/// of Algorithm 2 (implemented in the `local-sorts` crate) is verified.
#[must_use]
pub fn min_index_linear<T: Ord>(data: &[T]) -> usize {
    assert!(!data.is_empty());
    let mut best = 0;
    for i in 1..data.len() {
        if data[i] < data[best] {
            best = i;
        }
    }
    best
}

/// Rotate `data` left by `k` positions (a cyclic shift, as used in
/// Definition 1's second clause).
pub fn rotate_left<T>(data: &mut [T], k: usize) {
    if !data.is_empty() {
        let k = k % data.len();
        data.rotate_left(k);
    }
}

/// Deterministic bitonic-sequence generators used by tests, examples and
/// benches.
pub mod generate {
    use crate::Direction;

    /// Build the canonical mountain: `values` sorted ascending for the first
    /// `peak` slots and descending afterwards. `values` may contain
    /// duplicates; all of them appear in the output.
    #[must_use]
    pub fn mountain(mut values: Vec<u64>, peak: usize) -> Vec<u64> {
        let peak = peak.min(values.len());
        values.sort_unstable();
        let mut out = Vec::with_capacity(values.len());
        // Ascending part takes every element at an even index of the sorted
        // order; descending part the rest — this keeps both parts monotonic.
        let (up, down): (Vec<_>, Vec<_>) = {
            let mut up = Vec::with_capacity(peak);
            let mut down = Vec::with_capacity(values.len() - peak);
            for (i, v) in values.into_iter().enumerate() {
                if i < peak {
                    up.push(v);
                } else {
                    down.push(v);
                }
            }
            (up, down)
        };
        // `up` is ascending already; `down` must descend and every element of
        // the descending tail may be anything (the mountain only requires
        // monotonicity of each side).
        out.extend(up);
        let mut down = down;
        down.sort_unstable_by(|a, b| b.cmp(a));
        out.extend(down);
        out
    }

    /// A bitonic sequence obtained by rotating a mountain built from
    /// `values`; `peak` and `shift` select the shape.
    #[must_use]
    pub fn rotated(values: Vec<u64>, peak: usize, shift: usize) -> Vec<u64> {
        let mut m = mountain(values, peak);
        super::rotate_left(&mut m, shift);
        m
    }

    /// `len` distinct keys forming a mountain with the peak at `peak`.
    #[must_use]
    pub fn distinct_mountain(len: usize, peak: usize) -> Vec<u64> {
        mountain((0..len as u64).collect(), peak)
    }

    /// A pair of sorted runs (first ascending, second descending) whose
    /// concatenation is bitonic — the input shape of each merge stage
    /// (Lemma 6).
    #[must_use]
    pub fn alternating_runs(values: Vec<u64>, first: Direction) -> Vec<u64> {
        let mid = values.len() / 2;
        let mut v = values;
        v.sort_unstable();
        let (lo, hi) = v.split_at(mid);
        let mut out = Vec::with_capacity(v.len());
        match first {
            Direction::Ascending => {
                out.extend_from_slice(lo);
                let mut hi = hi.to_vec();
                hi.reverse();
                out.extend(hi);
            }
            Direction::Descending => {
                let mut lo = lo.to_vec();
                lo.reverse();
                out.extend(lo);
                out.extend_from_slice(hi);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_examples_are_bitonic() {
        // The two examples given right after Definition 1.
        let a = [2, 3, 4, 5, 6, 7, 8, 8, 7, 5, 3, 2, 1];
        let b = [6, 7, 8, 8, 7, 5, 3, 2, 1, 2, 3, 4, 5];
        assert!(is_bitonic(&a));
        assert!(is_bitonic(&b));
        assert!(is_mountain(&a));
        assert!(!is_mountain(&b));
    }

    #[test]
    fn sorted_sequences_are_bitonic() {
        assert!(is_bitonic(&[1, 2, 3, 4]));
        assert!(is_bitonic(&[4, 3, 2, 1]));
        assert!(is_bitonic(&[5, 5, 5]));
        assert!(is_bitonic::<i32>(&[]));
        assert!(is_bitonic(&[1]));
    }

    #[test]
    fn zigzag_is_not_bitonic() {
        assert!(!is_bitonic(&[1, 3, 1, 3]));
        assert!(!is_bitonic(&[0, 2, 0, 2, 0, 2]));
        assert!(!is_bitonic(&[5, 1, 4, 2, 3]));
    }

    #[test]
    fn every_rotation_of_a_mountain_is_bitonic() {
        let m = generate::distinct_mountain(16, 9);
        for shift in 0..m.len() {
            let mut r = m.clone();
            rotate_left(&mut r, shift);
            assert!(is_bitonic(&r), "rotation by {shift} should stay bitonic");
        }
    }

    #[test]
    fn min_index_linear_finds_minimum() {
        let m = generate::rotated((0..32).collect(), 20, 7);
        let idx = min_index_linear(&m);
        assert_eq!(m[idx], *m.iter().min().unwrap());
    }

    #[test]
    fn alternating_runs_shape() {
        let v = generate::alternating_runs((0..16).collect(), Direction::Ascending);
        assert!(is_sorted_asc(&v[..8]));
        assert!(is_sorted_desc(&v[8..]));
        assert!(is_bitonic(&v));
    }

    #[test]
    fn is_sorted_direction_dispatch() {
        assert!(is_sorted(&[1, 2, 3], Direction::Ascending));
        assert!(!is_sorted(&[1, 2, 3], Direction::Descending));
        assert!(is_sorted(&[3, 2, 2], Direction::Descending));
    }

    #[test]
    fn two_element_sequences_always_bitonic() {
        assert!(is_bitonic(&[1, 2]));
        assert!(is_bitonic(&[2, 1]));
    }
}
