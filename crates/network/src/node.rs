//! The network view: `(stage, column, row)` nodes and their wiring
//! (Definition 3 and Figure 2.4).
//!
//! Each node of the bitonic sorting network is identified by a 3-tuple
//! `(s, c, r)`: the stage, the column inside the stage and the row. Stage
//! `s` has columns `s, s−1, …, 0`; the transition from column `c` to column
//! `c − 1` is *step* `c`. Node `(s, c, r)` receives its inputs from nodes
//! `(s, c+1, r)` and `(s, c+1, r ⊕ 2^c)` and keeps the minimum of the two
//! exactly when `(r div 2^c) mod 2 = (r div 2^s) mod 2`.

use crate::Direction;

/// A node of the bitonic sorting network in the network view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node {
    /// Stage number, `1 ..= lg N` (1-indexed as in the thesis).
    pub stage: u32,
    /// Column inside the stage, `stage ..= 0`; column 0 is the stage output.
    pub column: u32,
    /// Row — the absolute address of the key slot, `0 .. N`.
    pub row: usize,
}

/// Whether a node keeps the minimum or the maximum of its two inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Shaded node in Figures 2.2/2.4: keeps the smaller key.
    Min,
    /// Unshaded node: keeps the larger key.
    Max,
}

impl Node {
    /// Create a node, validating the coordinate ranges of Definition 3.
    ///
    /// # Panics
    /// Panics if `column > stage` or `stage == 0`.
    #[must_use]
    pub fn new(stage: u32, column: u32, row: usize) -> Self {
        assert!(stage >= 1, "stages are numbered from 1");
        assert!(column <= stage, "stage {stage} has columns {stage}..=0");
        Node { stage, column, row }
    }

    /// The row of the *other* input feeding this node: `r ⊕ 2^c`.
    ///
    /// Only defined for comparator columns (`column < stage`); column
    /// `stage` is the input column of the stage and has no comparator.
    #[must_use]
    pub fn partner_row(&self) -> usize {
        debug_assert!(self.column < self.stage);
        self.row ^ (1usize << self.column)
    }

    /// MIN/MAX classification per Definition 3:
    /// min iff `(r div 2^c) mod 2 == (r div 2^s) mod 2`.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        debug_assert!(self.column < self.stage);
        let c_bit = (self.row >> self.column) & 1;
        let s_bit = (self.row >> self.stage) & 1;
        if c_bit == s_bit {
            NodeKind::Min
        } else {
            NodeKind::Max
        }
    }

    /// Direction of the merge block this node belongs to.
    #[must_use]
    pub fn block_direction(&self) -> Direction {
        Direction::of_block(self.stage, self.row)
    }
}

/// The compare-exchange performed by a MIN/MAX node pair, in the
/// algorithmic view: addresses `lo < hi` differing in exactly one bit, with
/// the minimum placed at `lo` when `ascending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// Lower address of the pair.
    pub lo: usize,
    /// Higher address (`lo ^ 2^bit`).
    pub hi: usize,
    /// Direction: `Ascending` places the minimum at `lo`.
    pub dir: Direction,
}

impl Comparator {
    /// The comparator realized by the node pair at `(stage, column, row)` and
    /// `(stage, column, row ⊕ 2^column)`.
    ///
    /// `step` is the 1-indexed step number (`column + 1`); the pair differs
    /// in bit `column = step − 1`.
    #[must_use]
    pub fn for_pair(stage: u32, step: u32, row_with_zero_bit: usize) -> Self {
        debug_assert!(step >= 1 && step <= stage);
        let bit = step - 1;
        debug_assert_eq!(
            (row_with_zero_bit >> bit) & 1,
            0,
            "row must have a 0 at the step bit"
        );
        let lo = row_with_zero_bit;
        let hi = lo | (1usize << bit);
        // The lower-address node keeps the minimum exactly when its stage bit
        // is 0 (NodeKind::Min with c_bit = 0), i.e. the block is ascending.
        Comparator {
            lo,
            hi,
            dir: Direction::of_block(stage, lo),
        }
    }

    /// Apply this comparator to `data`.
    pub fn apply<T: Ord>(&self, data: &mut [T]) {
        crate::compare_exchange(data, self.lo, self.hi, self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_differs_in_one_bit() {
        let node = Node::new(3, 1, 0b101);
        assert_eq!(node.partner_row(), 0b111);
        assert_eq!((node.row ^ node.partner_row()).count_ones(), 1);
    }

    #[test]
    fn min_max_rule_matches_figure_2_4() {
        // Figure 2.4, N = 8, stage 3 (the final increasing merge): every
        // lower row of a pair keeps the minimum because bit 3 of any row < 8
        // is 0.
        for row in 0..8usize {
            for column in 0..3u32 {
                let node = Node::new(3, column, row);
                let expect = if (row >> column) & 1 == 0 {
                    NodeKind::Min
                } else {
                    NodeKind::Max
                };
                assert_eq!(node.kind(), expect);
            }
        }
    }

    #[test]
    fn stage_one_alternates_pair_direction() {
        // Stage 1 on 8 rows: pairs (0,1) asc, (2,3) desc, (4,5) asc, (6,7) desc.
        let dirs: Vec<Direction> = (0..4)
            .map(|p| Comparator::for_pair(1, 1, 2 * p).dir)
            .collect();
        assert_eq!(
            dirs,
            vec![
                Direction::Ascending,
                Direction::Descending,
                Direction::Ascending,
                Direction::Descending
            ]
        );
    }

    #[test]
    fn comparator_apply_respects_direction() {
        let mut data = vec![9u32, 1, 2, 8];
        // stage 1: pair (0,1) ascending, pair (2,3) descending.
        Comparator::for_pair(1, 1, 0).apply(&mut data);
        Comparator::for_pair(1, 1, 2).apply(&mut data);
        assert_eq!(data, vec![1, 9, 8, 2]);
    }

    #[test]
    fn kind_consistent_with_comparator_dir() {
        // For every pair, the lower node is Min iff the comparator ascends.
        for stage in 1..=4u32 {
            for step in 1..=stage {
                let bit = step - 1;
                for lo in (0..16usize).filter(|r| (r >> bit) & 1 == 0) {
                    let node = Node::new(stage, bit, lo);
                    let cmp = Comparator::for_pair(stage, step, lo);
                    assert_eq!(node.kind() == NodeKind::Min, cmp.dir.is_ascending());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn column_out_of_range_rejected() {
        let _ = Node::new(2, 3, 0);
    }
}
