//! The SPMD executor: one OS thread per rank, shared barrier, channel mesh.
//!
//! Split-C programs are launched as `P` copies of the same program; here
//! [`run_spmd`] spawns `P` scoped threads, hands each a [`Comm`] endpoint
//! and collects each rank's return value together with its communication
//! statistics. Threads are cheap enough that `P` up to a few hundred works
//! even on a single core — ranks block on channels and condition variables,
//! never spin.

use crate::barrier::SenseBarrier;
use crate::comm::{make_mesh, Comm, MessageMode};
use crate::counters::CommStats;
use crate::fault::{FaultConfig, RankFailure};
use obs::{RankTrace, TraceConfig, TraceSink};
use std::sync::Arc;
use std::time::Instant;

/// What one rank produced: its program's return value and its metrics.
#[derive(Debug)]
pub struct RankResult<R> {
    /// The rank id this result belongs to.
    pub rank: usize,
    /// The value returned by the rank's program.
    pub output: R,
    /// Communication statistics gathered during the run.
    pub stats: CommStats,
    /// The rank's recorded span timeline (empty unless the machine was
    /// started with tracing enabled via [`run_spmd_traced`]).
    pub trace: RankTrace,
}

/// Run `program` on `procs` ranks and return the per-rank results in rank
/// order.
///
/// `K` is the key/message element type flowing through the mesh. The
/// program receives a mutable [`Comm`] and may freely mix computation with
/// the collective operations; all ranks must make matching collective
/// calls or the machine deadlocks (as on real hardware).
///
/// # Panics
/// Panics if `procs == 0`, or propagates the panic of any rank.
pub fn run_spmd<K, R, F>(procs: usize, mode: MessageMode, program: F) -> Vec<RankResult<R>>
where
    K: Clone + Send + 'static,
    R: Send,
    F: Fn(&mut Comm<K>) -> R + Sync,
{
    run_spmd_traced(procs, mode, TraceConfig::off(), program)
}

/// [`run_spmd`] with per-rank tracing: every rank gets a recording
/// [`TraceSink`] (reachable as `comm.trace`) sharing one machine-wide
/// epoch, and its finished [`RankTrace`] comes back in
/// [`RankResult::trace`]. With [`TraceConfig::off`] this is exactly
/// `run_spmd` — sinks are disabled and record nothing.
///
/// # Panics
/// Panics if `procs == 0`, or propagates the panic of any rank.
pub fn run_spmd_traced<K, R, F>(
    procs: usize,
    mode: MessageMode,
    trace: TraceConfig,
    program: F,
) -> Vec<RankResult<R>>
where
    K: Clone + Send + 'static,
    R: Send,
    F: Fn(&mut Comm<K>) -> R + Sync,
{
    run_spmd_chaos(procs, mode, trace, FaultConfig::off(), program)
        .expect("a fault-free machine cannot fail")
}

/// [`run_spmd_traced`] on a machine with deterministic fault injection:
/// the mesh misbehaves according to `fault` (drops, duplicates, reorders,
/// latency jitter, whole-rank stalls — all derived from `fault.seed`), and
/// the communicator's recovery machinery has to deliver correct results
/// anyway. With [`FaultConfig::off`] this is exactly `run_spmd_traced`.
///
/// Returns `Err(RankFailure)` when a watchdog gave up on a rank that
/// stayed stalled past `fault.watchdog` — the failure names the lowest
/// failed rank, what it was doing, and how long it waited — instead of
/// deadlocking or poisoning the whole process. Panics from rank programs
/// themselves (assertion failures etc.) still propagate as panics.
///
/// # Errors
/// A [`RankFailure`] if any rank's watchdog fired.
///
/// # Panics
/// Panics if `procs == 0`, if `fault` is invalid (see
/// [`FaultConfig::validate`]), or propagates the panic of any rank.
pub fn run_spmd_chaos<K, R, F>(
    procs: usize,
    mode: MessageMode,
    trace: TraceConfig,
    fault: FaultConfig,
    program: F,
) -> Result<Vec<RankResult<R>>, RankFailure>
where
    K: Clone + Send + 'static,
    R: Send,
    F: Fn(&mut Comm<K>) -> R + Sync,
{
    assert!(procs > 0, "need at least one processor");
    let (sender_meshes, receivers) = make_mesh::<K>(procs);
    let barrier = Arc::new(SenseBarrier::new(procs));
    // One epoch for the whole machine, taken before any rank starts, so
    // every rank's spans land on a common timeline.
    let epoch = Instant::now();
    let program = &program;

    let mut results: Vec<Option<RankResult<R>>> = Vec::new();
    for _ in 0..procs {
        results.push(None);
    }

    // A failed rank drops its channel endpoints, which can cascade into
    // "peer hung up" panics on surviving ranks. Joining every handle
    // before deciding the outcome keeps the scope clean; the structured
    // RankFailure (lowest rank wins, for determinism) takes precedence
    // over any cascade panic.
    let mut failure: Option<RankFailure> = None;
    let mut cascade: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(procs);
        let rank_inputs = sender_meshes.into_iter().zip(receivers).enumerate();
        for (rank, (senders, receiver)) in rank_inputs {
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let sink = TraceSink::new(rank, trace, epoch);
                let mut comm = Comm::new(rank, mode, senders, receiver, barrier, sink, fault);
                let output = program(&mut comm);
                RankResult {
                    rank,
                    output,
                    stats: comm.stats,
                    trace: comm.trace.finish(),
                }
            }));
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(res) => results[rank] = Some(res),
                Err(payload) => match payload.downcast::<RankFailure>() {
                    Ok(f) => {
                        if failure.as_ref().is_none_or(|held| f.rank < held.rank) {
                            failure = Some(*f);
                        }
                    }
                    Err(other) => cascade = Some(other),
                },
            }
        }
    });

    if let Some(f) = failure {
        return Err(f);
    }
    if let Some(payload) = cascade {
        std::panic::resume_unwind(payload);
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every rank produces a result"))
        .collect())
}

/// Collect the per-rank traces of a machine run, in rank order.
#[must_use]
pub fn traces_of<R>(results: &[RankResult<R>]) -> Vec<RankTrace> {
    results.iter().map(|r| r.trace.clone()).collect()
}

/// Fold per-rank stats into the critical-path view used for reporting: the
/// maximum over ranks of each metric (the thesis reports per-processor
/// volumes, which are identical across ranks for the bitonic algorithms).
#[must_use]
pub fn critical_path_stats<R>(results: &[RankResult<R>]) -> CommStats {
    let mut acc = CommStats::new();
    for r in results {
        acc.max_merge(&r.stats);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered_and_distinct() {
        let results = run_spmd::<u8, _, _>(8, MessageMode::Long, |comm| comm.rank() * 2);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.output, i * 2);
        }
    }

    #[test]
    fn single_rank_machine_works() {
        let results = run_spmd::<u8, _, _>(1, MessageMode::Short, |comm| {
            comm.barrier();
            comm.procs()
        });
        assert_eq!(results[0].output, 1);
    }

    #[test]
    fn many_ranks_on_one_core() {
        // Heavily oversubscribed: 64 ranks ping-ponging through a barrier
        // must still complete (blocking, not spinning).
        let results = run_spmd::<u8, _, _>(64, MessageMode::Long, |comm| {
            for _ in 0..5 {
                comm.barrier();
            }
            1u32
        });
        assert_eq!(results.iter().map(|r| r.output).sum::<u32>(), 64);
    }

    #[test]
    fn ring_pass_reaches_everyone() {
        // Each rank sends its id around a ring P-1 times via exchanges; the
        // values must arrive back home.
        const P: usize = 5;
        let results = run_spmd::<usize, _, _>(P, MessageMode::Long, |comm| {
            let me = comm.rank();
            let mut token = me;
            for _ in 0..P {
                let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); P];
                outgoing[(me + 1) % P] = vec![token];
                let incoming = comm.exchange(outgoing);
                token = incoming[(me + P - 1) % P][0];
            }
            token
        });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r.output, rank, "token must come full circle");
        }
    }

    #[test]
    fn critical_path_takes_max() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank();
            // Rank 3 sends more than the others.
            let count = if me == 3 { 10 } else { 1 };
            let outgoing: Vec<Vec<u32>> = (0..4)
                .map(|d| if d == me { vec![] } else { vec![7; count] })
                .collect();
            let _ = comm.exchange(outgoing);
        });
        let crit = critical_path_stats(&results);
        assert_eq!(crit.elements_sent, 30);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        let _ = run_spmd::<u8, _, _>(0, MessageMode::Long, |_| ());
    }
}
