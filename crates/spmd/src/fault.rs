//! Deterministic fault injection for the SPMD machine.
//!
//! The thesis assumes a lossless, in-order Meiko CS-2 network; a
//! production-scale machine does not get that luxury. This module
//! manufactures the failure conditions that dominate real runs — latency
//! jitter, reordering, duplication, drops, and whole-rank stalls — in a
//! way that is *byte-reproducible*: every fault decision is a pure
//! function of the master seed and the message's link coordinates
//! `(src, dst, seq)`, never of wall-clock time or thread scheduling. Two
//! runs with the same [`FaultConfig`] inject exactly the same faults, no
//! matter how the OS schedules the ranks.
//!
//! The *recovery* machinery that makes the faults survivable (sequence
//! numbers, reorder buffers, duplicate suppression, the nack/retransmit
//! path, the barrier watchdog) lives in [`crate::comm`]; this module owns
//! the configuration, the seeded decision function, the fault counters,
//! and the structured [`RankFailure`] error a watchdog converts a
//! permanent stall into.

use std::time::Duration;

/// Configuration of the fault-injection layer, passed to
/// [`crate::runtime::run_spmd_chaos`].
///
/// All rates are per-message probabilities in `[0, 1)`. With
/// [`FaultConfig::off`] (the default) no fault session is created at all
/// and the mesh runs its legacy zero-overhead paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed. Every per-link decision stream is derived from it, so
    /// runs with equal seeds (and equal traffic) inject identical faults.
    pub seed: u64,
    /// Probability that a data message is dropped on the wire (recovered
    /// via the receiver-driven nack/retransmit path).
    pub drop_rate: f64,
    /// Probability that a data message is delivered twice (the duplicate
    /// is suppressed by the receiver's sequence tracking).
    pub dup_rate: f64,
    /// Probability that a data message is held back and emitted *after*
    /// its successor on the same link (bounded reordering; the receiver's
    /// reorder buffer restores sequence order).
    pub reorder_rate: f64,
    /// Maximum injected per-message latency, microseconds (the actual
    /// jitter is drawn uniformly in `0..=jitter_us` per message). 0 = off.
    pub jitter_us: u64,
    /// Rank to afflict with a whole-rank stall ("slow rank" skew).
    pub stall_rank: Option<usize>,
    /// Injected sleep at the start of each collective on `stall_rank`,
    /// microseconds.
    pub stall_us: u64,
    /// How long a receiver waits for an expected message before nacking
    /// the sender (the first retry tick; subsequent ticks back off
    /// exponentially up to [`FaultConfig::backoff_cap`]).
    pub retry_tick: Duration,
    /// Upper bound on the exponential nack backoff.
    pub backoff_cap: Duration,
    /// Cumulative blocked time after which a rank declares the machine
    /// wedged and fails with a [`RankFailure`] instead of deadlocking.
    /// `None` disables the watchdog.
    pub watchdog: Option<Duration>,
}

impl FaultConfig {
    /// No faults, no watchdog: the mesh takes its legacy paths and the
    /// run is indistinguishable from one without a fault layer.
    #[must_use]
    pub fn off() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            jitter_us: 0,
            stall_rank: None,
            stall_us: 0,
            retry_tick: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(8),
            watchdog: None,
        }
    }

    /// A moderate all-classes preset seeded with `seed`: a few percent of
    /// drops and duplicates, noticeable reordering and jitter, and a
    /// generous watchdog so genuine bugs fail fast instead of hanging CI.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_rate: 0.02,
            dup_rate: 0.02,
            reorder_rate: 0.05,
            jitter_us: 20,
            watchdog: Some(Duration::from_secs(10)),
            ..FaultConfig::off()
        }
    }

    /// Whether any fault class or the watchdog is active — i.e. whether
    /// the mesh needs a fault session at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.reorder_rate > 0.0
            || self.jitter_us > 0
            || (self.stall_rank.is_some() && self.stall_us > 0)
            || self.watchdog.is_some()
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics if any rate is outside `[0, 1)` or not finite — a drop rate
    /// of 1.0 would mean *no* copy of a message ever survives, including
    /// retransmissions, so the machine could never make progress.
    pub fn validate(&self) {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("reorder_rate", self.reorder_rate),
        ] {
            assert!(
                rate.is_finite() && (0.0..1.0).contains(&rate),
                "{name} must be in [0, 1), got {rate}"
            );
        }
        assert!(
            self.retry_tick > Duration::ZERO,
            "retry_tick must be positive"
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::off()
    }
}

/// The fault classes a message can be subjected to. Each class consumes
/// its own decision stream, so e.g. raising the drop rate does not change
/// which messages get duplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultClass {
    Drop,
    Duplicate,
    Reorder,
    Jitter,
}

impl FaultClass {
    fn salt(self) -> u64 {
        match self {
            FaultClass::Drop => 0x9E37_79B9_7F4A_7C15,
            FaultClass::Duplicate => 0xD1B5_4A32_D192_ED03,
            FaultClass::Reorder => 0x8CB9_2BA7_2F3D_8DD7,
            FaultClass::Jitter => 0x2545_F491_4F6C_DD1D,
        }
    }
}

/// One xorshift64* step — the mixing core of the decision streams.
fn xorshift_star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The per-link decision stream: a stateless PRF over
/// `(seed, src, dst, class, seq)`. Stateless is the point — the value for
/// message `seq` on link `src→dst` does not depend on how many faults
/// other links drew before it, so fault decisions are independent of
/// thread interleaving. Retransmitted copies reuse the original `seq` and
/// are *not* re-injected, so each data message consumes exactly one draw
/// per class no matter how often it is resent.
#[must_use]
pub(crate) fn fault_draw(seed: u64, src: usize, dst: usize, class: FaultClass, seq: u64) -> u64 {
    let link = ((src as u64) << 32) | dst as u64;
    let mut x = seed ^ class.salt() ^ xorshift_star(link.wrapping_add(0xA076_1D64_78BD_642F));
    x = x.wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Two rounds: one to mix seq in, one to decorrelate adjacent streams.
    xorshift_star(xorshift_star(x | 1))
}

/// Bernoulli decision at probability `rate` from the link's stream.
#[must_use]
pub(crate) fn fault_hit(
    seed: u64,
    src: usize,
    dst: usize,
    class: FaultClass,
    seq: u64,
    rate: f64,
) -> bool {
    if rate <= 0.0 {
        return false;
    }
    // Top 53 bits → uniform f64 in [0, 1).
    let u = (fault_draw(seed, src, dst, class, seq) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < rate
}

/// Fault-layer counters, carried inside [`crate::CommStats`].
///
/// The *injected* counters (`drops_injected`, `dups_injected`,
/// `reorders_injected`, `jitter_events`, `stalls_injected`) and
/// `acks_sent` are deterministic: they depend only on the seed and the
/// traffic, so two runs with equal configs produce equal values — the
/// chaos suite regression-tests this via [`FaultStats::injected`]. The
/// *recovery* counters (`retries`, `nacks_sent`, `dups_suppressed`) and
/// the time fields depend on wall-clock races (how late a message is when
/// the receiver's patience runs out) and legitimately vary between runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Data messages dropped on the wire by injection.
    pub drops_injected: u64,
    /// Data messages delivered twice by injection.
    pub dups_injected: u64,
    /// Data messages held back past a successor by injection.
    pub reorders_injected: u64,
    /// Data messages delayed by injected jitter.
    pub jitter_events: u64,
    /// Whole-rank stalls injected at collective boundaries.
    pub stalls_injected: u64,
    /// Acknowledgements sent (one per distinct sequence number
    /// delivered — deterministic, unlike the recovery counters).
    pub acks_sent: u64,
    /// Payloads retransmitted in response to a peer's nack.
    pub retries: u64,
    /// Nacks sent while waiting out a missing message.
    pub nacks_sent: u64,
    /// Received copies discarded by duplicate suppression (injected
    /// duplicates plus retransmissions that crossed their ack in flight).
    pub dups_suppressed: u64,
    /// Wall-clock spent retransmitting (inside Transfer windows).
    pub retry_time: Duration,
    /// Wall-clock of injected stalls on this rank.
    pub stall_time: Duration,
}

impl FaultStats {
    /// The deterministic subset: equal seeds and traffic give equal
    /// values. This is what the determinism regression test compares —
    /// the recovery counters are timing-dependent by design.
    #[must_use]
    pub fn injected(&self) -> [u64; 6] {
        [
            self.drops_injected,
            self.dups_injected,
            self.reorders_injected,
            self.jitter_events,
            self.stalls_injected,
            self.acks_sent,
        ]
    }

    /// Total injected fault events of every class.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.drops_injected
            + self.dups_injected
            + self.reorders_injected
            + self.jitter_events
            + self.stalls_injected
    }

    /// Field-wise additive merge (the machine-total view over ranks —
    /// what the serving pool folds into its lifetime fault counters).
    pub fn sum_merge(&mut self, other: &FaultStats) {
        self.drops_injected += other.drops_injected;
        self.dups_injected += other.dups_injected;
        self.reorders_injected += other.reorders_injected;
        self.jitter_events += other.jitter_events;
        self.stalls_injected += other.stalls_injected;
        self.acks_sent += other.acks_sent;
        self.retries += other.retries;
        self.nacks_sent += other.nacks_sent;
        self.dups_suppressed += other.dups_suppressed;
        self.retry_time += other.retry_time;
        self.stall_time += other.stall_time;
    }

    /// Field-wise maximum merge (the critical-path view over ranks).
    pub fn max_merge(&mut self, other: &FaultStats) {
        self.drops_injected = self.drops_injected.max(other.drops_injected);
        self.dups_injected = self.dups_injected.max(other.dups_injected);
        self.reorders_injected = self.reorders_injected.max(other.reorders_injected);
        self.jitter_events = self.jitter_events.max(other.jitter_events);
        self.stalls_injected = self.stalls_injected.max(other.stalls_injected);
        self.acks_sent = self.acks_sent.max(other.acks_sent);
        self.retries = self.retries.max(other.retries);
        self.nacks_sent = self.nacks_sent.max(other.nacks_sent);
        self.dups_suppressed = self.dups_suppressed.max(other.dups_suppressed);
        self.retry_time = self.retry_time.max(other.retry_time);
        self.stall_time = self.stall_time.max(other.stall_time);
    }
}

/// Where a failing rank was blocked when its watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePhase {
    /// Waiting at a barrier that never opened.
    Barrier,
    /// Waiting for an expected message that never arrived.
    Receive,
    /// Draining acknowledgements at the end of a collective.
    Drain,
}

impl FailurePhase {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FailurePhase::Barrier => "barrier",
            FailurePhase::Receive => "receive",
            FailurePhase::Drain => "drain",
        }
    }
}

/// A rank's structured report that the machine is permanently wedged —
/// what the barrier/receive watchdogs convert a deadlock into.
/// [`crate::runtime::run_spmd_chaos`] returns it as an error instead of
/// hanging or propagating an opaque panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankFailure {
    /// The rank whose watchdog fired.
    pub rank: usize,
    /// Where it was blocked.
    pub during: FailurePhase,
    /// The peer it was waiting on, when known (receive/drain).
    pub waiting_on: Option<usize>,
    /// How long it had been blocked when it gave up.
    pub waited: Duration,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} stalled in {} for {:.1?}",
            self.rank,
            self.during.name(),
            self.waited
        )?;
        if let Some(peer) = self.waiting_on {
            write!(f, " waiting on rank {peer}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RankFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_valid() {
        let cfg = FaultConfig::off();
        assert!(!cfg.enabled());
        cfg.validate();
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn chaos_preset_is_enabled_and_valid() {
        let cfg = FaultConfig::chaos(42);
        assert!(cfg.enabled());
        cfg.validate();
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn watchdog_alone_enables_a_session() {
        let cfg = FaultConfig {
            watchdog: Some(Duration::from_secs(1)),
            ..FaultConfig::off()
        };
        assert!(cfg.enabled(), "watchdog-only mode still needs the session");
    }

    #[test]
    #[should_panic(expected = "drop_rate must be in [0, 1)")]
    fn full_drop_rate_rejected() {
        FaultConfig {
            drop_rate: 1.0,
            ..FaultConfig::off()
        }
        .validate();
    }

    #[test]
    fn draws_are_reproducible_and_link_dependent() {
        let a = fault_draw(7, 0, 1, FaultClass::Drop, 3);
        assert_eq!(a, fault_draw(7, 0, 1, FaultClass::Drop, 3));
        assert_ne!(a, fault_draw(8, 0, 1, FaultClass::Drop, 3), "seed");
        assert_ne!(a, fault_draw(7, 1, 0, FaultClass::Drop, 3), "link");
        assert_ne!(a, fault_draw(7, 0, 1, FaultClass::Duplicate, 3), "class");
        assert_ne!(a, fault_draw(7, 0, 1, FaultClass::Drop, 4), "seq");
    }

    #[test]
    fn hit_rate_tracks_probability() {
        let mut hits = 0u32;
        const N: u64 = 20_000;
        for seq in 0..N {
            if fault_hit(99, 2, 5, FaultClass::Drop, seq, 0.25) {
                hits += 1;
            }
        }
        let rate = f64::from(hits) / N as f64;
        assert!((rate - 0.25).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn zero_rate_never_hits() {
        assert!((0..1000).all(|s| !fault_hit(1, 0, 1, FaultClass::Drop, s, 0.0)));
    }

    #[test]
    fn stats_merge_takes_field_wise_max() {
        let mut a = FaultStats {
            drops_injected: 5,
            retries: 1,
            ..Default::default()
        };
        let b = FaultStats {
            drops_injected: 2,
            retries: 9,
            stall_time: Duration::from_millis(3),
            ..Default::default()
        };
        a.max_merge(&b);
        assert_eq!(a.drops_injected, 5);
        assert_eq!(a.retries, 9);
        assert_eq!(a.stall_time, Duration::from_millis(3));
    }

    #[test]
    fn failure_display_names_peer() {
        let f = RankFailure {
            rank: 3,
            during: FailurePhase::Receive,
            waiting_on: Some(1),
            waited: Duration::from_millis(250),
        };
        let s = f.to_string();
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("receive"), "{s}");
        assert!(s.contains("rank 1"), "{s}");
    }
}
