//! A persistent SPMD machine: ranks that outlive individual runs.
//!
//! [`run_spmd`](crate::run_spmd) spawns `P` scoped threads per call and
//! tears the mesh down when the program returns — the right shape for a
//! one-shot experiment, and the wrong one for a server. A
//! [`SpmdMachine`] keeps the `P` rank threads, the channel mesh, the
//! barrier and each rank's [`Comm`] alive across an arbitrary number of
//! *jobs*, so state that is expensive to rebuild — cached remap plans,
//! warmed buffer pools — survives from one run to the next.
//!
//! Each rank additionally owns a private state value `S`, constructed
//! in-thread by the `init` closure when the machine boots. Because `S`
//! never crosses a thread boundary it does not need to be `Send`; the
//! sort layer exploits this to park `Rc`-based plan caches inside the
//! machine.
//!
//! A job is a closure broadcast to every rank; as in
//! [`run_spmd`](crate::run_spmd), all ranks must make matching
//! collective calls. Per-job metrics are harvested by *taking* each
//! rank's [`CommStats`](crate::CommStats) and draining its
//! [`obs::TraceSink`], so every job gets isolated stats and traces
//! while the communicator's recycled buffers stay warm.
//!
//! Failure containment follows the fault layer's watchdog design: boot the machine
//! with a [`FaultConfig`] watchdog and a rank that stalls past the
//! deadline fails *one job* — the machine reports the structured
//! [`RankFailure`], marks itself broken, and the owner (the service's
//! worker pool) replaces it. The process never deadlocks on a wedged
//! batch.

use crate::barrier::SenseBarrier;
use crate::comm::{make_mesh, Comm, MessageMode};
use crate::fault::{FaultConfig, RankFailure};
use crate::runtime::RankResult;
use crossbeam::channel::{Receiver, Sender};
use obs::{TraceConfig, TraceSink};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a [`SpmdMachine`] is shaped: size, transfer regime, tracing, and
/// the fault/watchdog configuration armed for every job it runs.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of ranks (`P`).
    pub procs: usize,
    /// The transfer regime of every job.
    pub mode: MessageMode,
    /// Per-rank tracing; drained into each job's [`RankResult::trace`].
    pub trace: TraceConfig,
    /// Fault/watchdog configuration. `FaultConfig { watchdog: Some(d),
    /// ..FaultConfig::off() }` gives fault-free execution with a per-job
    /// deadline of `d` per blocking wait.
    pub fault: FaultConfig,
    /// After a failure is observed, how long to keep waiting for the
    /// remaining ranks to report before writing the machine off.
    pub drain_grace: Duration,
}

impl MachineConfig {
    /// A fault-free, untraced machine of `procs` ranks in long-message
    /// mode.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        MachineConfig {
            procs,
            mode: MessageMode::Long,
            trace: TraceConfig::off(),
            fault: FaultConfig::off(),
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// Why a job (and with it the machine) failed.
#[derive(Debug, Clone)]
pub enum MachineFailure {
    /// A rank's watchdog gave up — the structured PR 3 failure, naming
    /// the lowest failed rank.
    Rank(RankFailure),
    /// A rank's job panicked (assertion failure, poisoned state, …).
    Panic(String),
    /// The machine was already broken by an earlier failure, or its ranks
    /// stopped reporting; it must be replaced.
    Broken(String),
}

impl std::fmt::Display for MachineFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineFailure::Rank(r) => write!(f, "{r}"),
            MachineFailure::Panic(msg) => write!(f, "rank panicked: {msg}"),
            MachineFailure::Broken(msg) => write!(f, "machine broken: {msg}"),
        }
    }
}

impl std::error::Error for MachineFailure {}

type Job<K, S, R> = Arc<dyn Fn(&mut Comm<K>, &mut S) -> R + Send + Sync>;
type Outcome<R> = (usize, Result<RankResult<R>, MachineFailure>);

/// `P` long-lived rank threads behind a job queue.
///
/// `K` is the element type flowing through the mesh, `S` the per-rank
/// retained state (need not be `Send` — it is built and dropped on its
/// rank's thread), `R` the job return type.
///
/// See the [module docs](self) for the execution and failure model.
pub struct SpmdMachine<K, S, R> {
    job_txs: Vec<Sender<Job<K, S, R>>>,
    results: Receiver<Outcome<R>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    procs: usize,
    drain_grace: Duration,
    broken: bool,
    runs: u64,
    /// Pool-membership gauge stamped into every job's per-rank
    /// [`CommStats`](crate::CommStats) (see
    /// [`SpmdMachine::set_pool_machines`]); 0 = not pool-managed.
    pool_gauge: Arc<AtomicU64>,
}

impl<K, S, R> SpmdMachine<K, S, R>
where
    K: Clone + Send + 'static,
    S: 'static,
    R: Send + 'static,
{
    /// Boot a machine: spawn `config.procs` rank threads, each building
    /// its [`Comm`] endpoint and its private state `init(rank)`.
    ///
    /// # Panics
    /// Panics if `config.procs == 0` or `config.fault` is invalid.
    #[must_use]
    pub fn boot(config: MachineConfig, init: impl Fn(usize) -> S + Send + Sync + 'static) -> Self {
        assert!(config.procs > 0, "need at least one processor");
        config.fault.validate();
        let procs = config.procs;
        let (sender_meshes, receivers) = make_mesh::<K>(procs);
        let barrier = Arc::new(SenseBarrier::new(procs));
        let epoch = Instant::now();
        let (result_tx, results) = crossbeam::channel::unbounded::<Outcome<R>>();
        let init = Arc::new(init);
        let pool_gauge = Arc::new(AtomicU64::new(0));

        let mut job_txs = Vec::with_capacity(procs);
        let mut handles = Vec::with_capacity(procs);
        let rank_inputs = sender_meshes.into_iter().zip(receivers).enumerate();
        for (rank, (senders, receiver)) in rank_inputs {
            let (job_tx, job_rx) = crossbeam::channel::unbounded::<Job<K, S, R>>();
            job_txs.push(job_tx);
            let barrier = Arc::clone(&barrier);
            let result_tx = result_tx.clone();
            let init = Arc::clone(&init);
            let pool_gauge = Arc::clone(&pool_gauge);
            handles.push(std::thread::spawn(move || {
                let sink = TraceSink::new(rank, config.trace, epoch);
                let mut comm = Comm::new(
                    rank,
                    config.mode,
                    senders,
                    receiver,
                    barrier,
                    sink,
                    config.fault,
                );
                let mut state = init(rank);
                while let Ok(job) = job_rx.recv() {
                    match catch_unwind(AssertUnwindSafe(|| job(&mut comm, &mut state))) {
                        Ok(output) => {
                            let mut stats = std::mem::take(&mut comm.stats);
                            stats.pool_machines = pool_gauge.load(Ordering::Relaxed);
                            let res = RankResult {
                                rank,
                                output,
                                stats,
                                trace: comm.trace.drain(),
                            };
                            if result_tx.send((rank, Ok(res))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            // The communicator may hold half-finished
                            // protocol state; this rank retires and the
                            // machine is replaced wholesale.
                            let failure = match payload.downcast::<RankFailure>() {
                                Ok(f) => MachineFailure::Rank(*f),
                                Err(other) => MachineFailure::Panic(panic_text(other.as_ref())),
                            };
                            let _ = result_tx.send((rank, Err(failure)));
                            break;
                        }
                    }
                }
            }));
        }
        SpmdMachine {
            job_txs,
            results,
            handles,
            procs,
            drain_grace: config.drain_grace,
            broken: false,
            runs: 0,
            pool_gauge,
        }
    }

    /// Record that this machine belongs to a warm pool of `machines`
    /// machines. Every subsequent job stamps the gauge into each rank's
    /// [`CommStats::pool_machines`](crate::CommStats), so per-job stats
    /// and traces can attribute runs to the pool capacity that served
    /// them. Pools call this at boot and again on every grow/shrink.
    pub fn set_pool_machines(&self, machines: u64) {
        self.pool_gauge.store(machines, Ordering::Relaxed);
    }

    /// Number of ranks in the machine (`P`).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Jobs completed successfully so far.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Whether a failure has retired this machine. A broken machine
    /// refuses further jobs; build a replacement.
    #[must_use]
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Broadcast `job` to every rank and collect the per-rank results in
    /// rank order.
    ///
    /// Blocks until every rank reports. When a rank fails, the remaining
    /// ranks get [`MachineConfig::drain_grace`] to report (under a
    /// watchdog they fail themselves promptly; a rank that stays silent
    /// past the grace is abandoned), the machine is marked broken, and
    /// the most significant failure — the lowest-rank [`RankFailure`],
    /// else the first panic — is returned.
    ///
    /// # Errors
    /// A [`MachineFailure`] if the machine was already broken or any rank
    /// failed during the job.
    pub fn run(
        &mut self,
        job: impl Fn(&mut Comm<K>, &mut S) -> R + Send + Sync + 'static,
    ) -> Result<Vec<RankResult<R>>, MachineFailure> {
        if self.broken {
            return Err(MachineFailure::Broken(
                "an earlier job failed on this machine".to_string(),
            ));
        }
        let job: Job<K, S, R> = Arc::new(job);
        for tx in &self.job_txs {
            if tx.send(Arc::clone(&job)).is_err() {
                self.broken = true;
                return Err(MachineFailure::Broken("a rank thread is gone".to_string()));
            }
        }

        let mut results: Vec<Option<RankResult<R>>> = Vec::new();
        for _ in 0..self.procs {
            results.push(None);
        }
        let mut failure: Option<MachineFailure> = None;
        let mut reported = 0;
        while reported < self.procs {
            // Fault-free collection blocks like `run_spmd`; once any rank
            // has failed the rest get a bounded grace to report.
            let next = if failure.is_none() {
                self.results.recv().map_err(|_| ())
            } else {
                self.results.recv_timeout(self.drain_grace).map_err(|_| ())
            };
            match next {
                Ok((rank, Ok(res))) => {
                    results[rank] = Some(res);
                    reported += 1;
                }
                Ok((_, Err(f))) => {
                    merge_failure(&mut failure, f);
                    reported += 1;
                }
                Err(()) => {
                    self.broken = true;
                    return Err(failure.unwrap_or_else(|| {
                        MachineFailure::Broken("ranks stopped reporting".to_string())
                    }));
                }
            }
        }
        if let Some(f) = failure {
            self.broken = true;
            return Err(f);
        }
        self.runs += 1;
        Ok(results
            .into_iter()
            .map(|r| r.expect("every rank reports exactly once"))
            .collect())
    }
}

impl<K, S, R> std::fmt::Debug for SpmdMachine<K, S, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmdMachine")
            .field("procs", &self.procs)
            .field("runs", &self.runs)
            .field("broken", &self.broken)
            .finish_non_exhaustive()
    }
}

impl<K, S, R> Drop for SpmdMachine<K, S, R> {
    fn drop(&mut self) {
        // Closing the job queues ends each rank's loop; joining a healthy
        // machine is then immediate. A broken machine may still have a
        // rank wedged inside the failed job, so its threads are detached
        // instead — under the watchdog they fail themselves and exit.
        self.job_txs.clear();
        if !self.broken {
            for h in self.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

/// Pick the most significant failure: the lowest-rank [`RankFailure`]
/// wins (matching `run_spmd_chaos`); any `RankFailure` beats a panic.
fn merge_failure(held: &mut Option<MachineFailure>, new: MachineFailure) {
    let replace = match (&held, &new) {
        (None, _) => true,
        (Some(MachineFailure::Rank(a)), MachineFailure::Rank(b)) => b.rank < a.rank,
        (Some(MachineFailure::Rank(_)), _) => false,
        (Some(_), MachineFailure::Rank(_)) => true,
        (Some(_), _) => false,
    };
    if replace {
        *held = Some(new);
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn state_survives_across_jobs() {
        // Per-rank state is a non-Send Rc counter; three jobs increment
        // it and the third job reads back 3 on every rank.
        let mut m: SpmdMachine<u32, Rc<Cell<u32>>, u32> =
            SpmdMachine::boot(MachineConfig::new(4), |_| Rc::new(Cell::new(0)));
        for _ in 0..2 {
            let r = m.run(|_, s| {
                s.set(s.get() + 1);
                s.get()
            });
            assert!(r.is_ok());
        }
        let r = m
            .run(|_, s| {
                s.set(s.get() + 1);
                s.get()
            })
            .unwrap();
        assert_eq!(r.len(), 4);
        for rr in &r {
            assert_eq!(rr.output, 3, "rank {} kept its state", rr.rank);
        }
        assert_eq!(m.runs(), 3);
        assert!(!m.is_broken());
    }

    #[test]
    fn jobs_get_isolated_stats() {
        // Each job exchanges one element per peer; stats must not leak
        // between jobs (elements_sent identical each time, not cumulative).
        let mut m: SpmdMachine<u32, (), ()> = SpmdMachine::boot(MachineConfig::new(3), |_| ());
        let job = |comm: &mut Comm<u32>, _: &mut ()| {
            let me = comm.rank();
            let outgoing: Vec<Vec<u32>> = (0..3)
                .map(|d| if d == me { vec![] } else { vec![me as u32] })
                .collect();
            let _ = comm.exchange(outgoing);
        };
        let first = m.run(job).unwrap();
        let second = m.run(job).unwrap();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.stats.elements_sent, 2);
            assert_eq!(b.stats.elements_sent, 2, "stats reset between jobs");
            assert_eq!(b.stats.remap_count(), 1);
        }
    }

    #[test]
    fn collectives_work_across_persistent_ranks() {
        // A barrier-heavy job run repeatedly: the sense-reversing barrier
        // must stay coherent across job boundaries.
        let mut m: SpmdMachine<u8, (), u32> = SpmdMachine::boot(MachineConfig::new(8), |_| ());
        for _ in 0..5 {
            let r = m
                .run(|comm, _| {
                    for _ in 0..3 {
                        comm.barrier();
                    }
                    1u32
                })
                .unwrap();
            assert_eq!(r.iter().map(|x| x.output).sum::<u32>(), 8);
        }
    }

    #[test]
    fn the_pool_gauge_is_stamped_into_every_ranks_stats() {
        let mut m: SpmdMachine<u32, (), ()> = SpmdMachine::boot(MachineConfig::new(2), |_| ());
        let r = m.run(|_, _| ()).unwrap();
        assert!(
            r.iter().all(|rr| rr.stats.pool_machines == 0),
            "standalone machines report no pool"
        );
        m.set_pool_machines(3);
        let r = m.run(|_, _| ()).unwrap();
        assert!(r.iter().all(|rr| rr.stats.pool_machines == 3));
        // The gauge tracks autoscaling: a later change shows up in the
        // next job's stats.
        m.set_pool_machines(2);
        let r = m.run(|_, _| ()).unwrap();
        assert!(r.iter().all(|rr| rr.stats.pool_machines == 2));
    }

    #[test]
    fn a_panicking_job_breaks_the_machine() {
        let mut m: SpmdMachine<u32, (), ()> = SpmdMachine::boot(MachineConfig::new(2), |_| ());
        let err = m
            .run(|comm, _| {
                if comm.rank() == 1 {
                    panic!("deliberate");
                }
            })
            .unwrap_err();
        match err {
            MachineFailure::Panic(msg) => assert!(msg.contains("deliberate")),
            other => panic!("expected a panic failure, got {other}"),
        }
        assert!(m.is_broken());
        // A broken machine refuses further jobs instead of deadlocking.
        assert!(matches!(m.run(|_, _| ()), Err(MachineFailure::Broken(_))));
    }

    #[test]
    fn watchdog_fails_one_job_with_a_structured_failure() {
        // One rank stalls past the watchdog: peers give up with a
        // RankFailure rather than hanging the machine's owner.
        let config = MachineConfig {
            fault: FaultConfig {
                watchdog: Some(Duration::from_millis(40)),
                ..FaultConfig::off()
            },
            drain_grace: Duration::from_secs(2),
            ..MachineConfig::new(2)
        };
        let mut m: SpmdMachine<u32, (), Vec<u32>> = SpmdMachine::boot(config, |_| ());
        let err = m
            .run(|comm, _| {
                if comm.rank() == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                let me = comm.rank();
                let outgoing: Vec<Vec<u32>> = (0..2)
                    .map(|d| if d == me { vec![] } else { vec![me as u32] })
                    .collect();
                comm.exchange(outgoing).into_iter().flatten().collect()
            })
            .unwrap_err();
        assert!(
            matches!(err, MachineFailure::Rank(_)),
            "watchdog must surface the structured failure, got: {err}"
        );
        assert!(m.is_broken());
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        let _: SpmdMachine<u8, (), ()> = SpmdMachine::boot(MachineConfig::new(0), |_| ());
    }
}
