//! A sense-reversing barrier.
//!
//! SPMD programs alternate between compute and communication phases, and
//! every remap is fenced by a barrier (the Split-C `barrier()` primitive).
//! This is the classic two-phase *sense-reversing* construction: a shared
//! count plus a generation ("sense") flag, so the barrier is immediately
//! reusable without a second synchronization round. Waiters block on a
//! condition variable rather than spinning — on the single-core CI machine
//! a spinning barrier with 32 ranks would livelock the scheduler.

use parking_lot::{Condvar, Mutex};

struct State {
    /// Ranks still missing in the current generation.
    remaining: usize,
    /// Flips every time the barrier opens; waiters wait for a flip rather
    /// than for a count, which makes the barrier reusable.
    sense: bool,
}

/// A reusable barrier for a fixed set of participants.
pub struct SenseBarrier {
    parties: usize,
    state: Mutex<State>,
    condvar: Condvar,
}

impl SenseBarrier {
    /// Barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    #[must_use]
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        SenseBarrier {
            parties,
            state: Mutex::new(State {
                remaining: parties,
                sense: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all `parties` ranks have arrived. Returns `true` on the
    /// last rank to arrive (the one that released the others), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock();
        let my_sense = state.sense;
        state.remaining -= 1;
        if state.remaining == 0 {
            // Last arrival: reset for the next generation and release.
            state.remaining = self.parties;
            state.sense = !state.sense;
            drop(state);
            self.condvar.notify_all();
            true
        } else {
            while state.sense == my_sense {
                self.condvar.wait(&mut state);
            }
            false
        }
    }

    /// Like [`SenseBarrier::wait`], but give up after `timeout`:
    /// `Some(leader)` when the barrier opened, `None` on timeout. A
    /// timed-out waiter *withdraws its registration* (the arrival count is
    /// restored under the lock), so the barrier stays coherent for the
    /// ranks still waiting — this is what lets a watchdog convert a
    /// permanently missing rank into an error instead of a deadlock.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> Option<bool> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.state.lock();
        let my_sense = state.sense;
        state.remaining -= 1;
        if state.remaining == 0 {
            state.remaining = self.parties;
            state.sense = !state.sense;
            drop(state);
            self.condvar.notify_all();
            return Some(true);
        }
        while state.sense == my_sense {
            let now = std::time::Instant::now();
            if now >= deadline {
                // Still the same generation: nobody counted on us yet
                // (remaining never reached 0 with our decrement in), so
                // withdrawing is safe and leaves the barrier consistent.
                state.remaining += 1;
                return None;
            }
            let _ = self.condvar.wait_for(&mut state, deadline - now);
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_do_not_interleave() {
        // Each thread increments a phase counter between barrier crossings;
        // if the barrier leaked a generation, some thread would observe a
        // counter from the wrong phase.
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen, (round + 1) * THREADS, "barrier admitted a rank early");
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 6;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                scope.spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_parties_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn wait_timeout_withdraws_cleanly() {
        use std::time::Duration;
        let b = SenseBarrier::new(2);
        // Alone at a 2-party barrier: must time out...
        assert_eq!(b.wait_timeout(Duration::from_millis(10)), None);
        // ...and the withdrawal must leave the barrier usable: two timed
        // waiters now open it normally.
        std::thread::scope(|scope| {
            let t = scope.spawn(|| b.wait_timeout(Duration::from_secs(5)));
            let mine = b.wait_timeout(Duration::from_secs(5));
            let theirs = t.join().unwrap();
            assert!(mine.is_some() && theirs.is_some());
            assert_eq!(
                mine.map_or(0, u64::from) + theirs.map_or(0, u64::from),
                1,
                "exactly one leader"
            );
        });
    }
}
