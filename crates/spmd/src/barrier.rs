//! A sense-reversing barrier.
//!
//! SPMD programs alternate between compute and communication phases, and
//! every remap is fenced by a barrier (the Split-C `barrier()` primitive).
//! This is the classic two-phase *sense-reversing* construction: a shared
//! count plus a generation ("sense") flag, so the barrier is immediately
//! reusable without a second synchronization round. Waiters block on a
//! condition variable rather than spinning — on the single-core CI machine
//! a spinning barrier with 32 ranks would livelock the scheduler.

use parking_lot::{Condvar, Mutex};

struct State {
    /// Ranks still missing in the current generation.
    remaining: usize,
    /// Flips every time the barrier opens; waiters wait for a flip rather
    /// than for a count, which makes the barrier reusable.
    sense: bool,
}

/// A reusable barrier for a fixed set of participants.
pub struct SenseBarrier {
    parties: usize,
    state: Mutex<State>,
    condvar: Condvar,
}

impl SenseBarrier {
    /// Barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    #[must_use]
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        SenseBarrier {
            parties,
            state: Mutex::new(State {
                remaining: parties,
                sense: false,
            }),
            condvar: Condvar::new(),
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all `parties` ranks have arrived. Returns `true` on the
    /// last rank to arrive (the one that released the others), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let mut state = self.state.lock();
        let my_sense = state.sense;
        state.remaining -= 1;
        if state.remaining == 0 {
            // Last arrival: reset for the next generation and release.
            state.remaining = self.parties;
            state.sense = !state.sense;
            drop(state);
            self.condvar.notify_all();
            true
        } else {
            while state.sense == my_sense {
                self.condvar.wait(&mut state);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_do_not_interleave() {
        // Each thread increments a phase counter between barrier crossings;
        // if the barrier leaked a generation, some thread would observe a
        // counter from the wrong phase.
        const THREADS: usize = 8;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let seen = counter.load(Ordering::SeqCst);
                        assert_eq!(seen, (round + 1) * THREADS, "barrier admitted a rank early");
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 6;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                scope.spawn(move || {
                    for _ in 0..20 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 20);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_parties_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
