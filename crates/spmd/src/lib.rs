//! A channel-based SPMD runtime — the parallel-machine substrate.
//!
//! The thesis implements its algorithms in Split-C on a 64-node Meiko CS-2
//! (Sections 5.1–5.2). Neither is available here, so this crate provides
//! the same programming model on one address space: `P` "processors" run as
//! threads, each executing the same program over its own slice of the data
//! (*single program, multiple data*), communicating through a full
//! point-to-point channel mesh.
//!
//! The primitives mirror what the Split-C implementation uses:
//!
//! * [`run_spmd`] — spawn `P` ranks and run a program to completion;
//! * [`Comm::exchange`] — the all-to-all personalized exchange performed by
//!   every data remap (Figure 3.17: pack → transfer → unpack);
//! * [`Comm::sendrecv`] — the pairwise bulk exchange used by the
//!   blocked-merge baseline;
//! * [`Comm::barrier`] — a sense-reversing barrier separating phases;
//! * [`MessageMode`] — *short messages* (one key per message) versus *long
//!   messages* (one packed message per destination), the two regimes
//!   contrasted in Section 5.4.
//!
//! Every rank keeps [`CommStats`]: the number of communication steps
//! (remaps), messages, and elements transferred, plus wall-clock per phase.
//! These are exactly the metrics the LogP/LogGP analysis of Section 3.4
//! consumes, so the `logp` crate can turn a run on this substrate into a
//! predicted Meiko CS-2 execution time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod comm;
pub mod counters;
pub mod fault;
pub mod machine;
pub mod runtime;

pub use barrier::SenseBarrier;
pub use comm::{Comm, MessageMode};
pub use counters::{CommStats, Phase, RemapRecord};
pub use fault::{FailurePhase, FaultConfig, FaultStats, RankFailure};
pub use machine::{MachineConfig, MachineFailure, SpmdMachine};
pub use obs::{RankTrace, TraceConfig, TraceSink};
pub use runtime::{run_spmd, run_spmd_chaos, run_spmd_traced, traces_of, RankResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_exchange_identity() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank();
            let outgoing: Vec<Vec<u32>> = (0..4).map(|dst| vec![(me * 10 + dst) as u32]).collect();
            let incoming = comm.exchange(outgoing);
            incoming.into_iter().flatten().collect::<Vec<u32>>()
        });
        for (rank, r) in results.iter().enumerate() {
            let expect: Vec<u32> = (0..4).map(|src| (src * 10 + rank) as u32).collect();
            assert_eq!(r.output, expect, "rank {rank}");
        }
    }
}
