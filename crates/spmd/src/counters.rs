//! Per-rank instrumentation: the communication metrics of Section 3.4.
//!
//! The thesis evaluates remapping strategies by three metrics — the number
//! of communication steps (`R`), the total volume of elements transferred
//! per processor (`V`), and the number of messages sent (`M`) — plus the
//! wall-clock split between computation and communication phases
//! (Figure 5.4) and, within communication, between packing, transfer and
//! unpacking (Table 5.4). [`CommStats`] records all of them.

use std::time::Duration;

/// The execution phases whose durations the experiments break down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Purely local computation (sorts, merges, compare-exchange steps).
    Compute,
    /// Gathering elements into per-destination long messages (Section 3.3).
    Pack,
    /// The channel transfer itself (send + receive).
    Transfer,
    /// Scattering received elements to their local addresses.
    Unpack,
    /// Time blocked in barriers.
    Barrier,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::Pack,
        Phase::Transfer,
        Phase::Unpack,
        Phase::Barrier,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::Pack => 1,
            Phase::Transfer => 2,
            Phase::Unpack => 3,
            Phase::Barrier => 4,
        }
    }
}

/// What one remap (communication step) cost this rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemapRecord {
    /// Elements sent to other ranks (the per-remap contribution to `V`).
    pub elements_sent: u64,
    /// Elements kept locally (`N_keep` of Section 3.2.1).
    pub elements_kept: u64,
    /// Non-empty messages sent (the per-remap contribution to `M`).
    pub messages_sent: u64,
    /// Elements received from other ranks during this step.
    pub elements_received: u64,
    /// Size of the communication group (`2^{N_BitsChanged}`, Lemma 4);
    /// zero when not applicable (e.g. pairwise exchanges).
    pub group_size: u64,
}

/// Cumulative per-rank statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// One record per communication step, in order — `R = remaps.len()`.
    pub remaps: Vec<RemapRecord>,
    /// Total elements sent (`V`).
    pub elements_sent: u64,
    /// Total non-empty messages sent (`M`).
    pub messages_sent: u64,
    /// Wall-clock spent per phase.
    phase_time: [Duration; 5],
}

impl CommStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of communication steps performed (`R` of Section 3.4.2).
    #[must_use]
    pub fn remap_count(&self) -> u64 {
        self.remaps.len() as u64
    }

    /// Record a completed remap.
    pub fn push_remap(&mut self, record: RemapRecord) {
        self.elements_sent += record.elements_sent;
        self.messages_sent += record.messages_sent;
        self.remaps.push(record);
    }

    /// Accrue `d` into `phase`.
    pub fn add_time(&mut self, phase: Phase, d: Duration) {
        self.phase_time[phase.index()] += d;
    }

    /// Wall-clock accumulated in `phase`.
    #[must_use]
    pub fn time(&self, phase: Phase) -> Duration {
        self.phase_time[phase.index()]
    }

    /// Total communication wall-clock: pack + transfer + unpack + barrier.
    #[must_use]
    pub fn communication_time(&self) -> Duration {
        self.time(Phase::Pack)
            + self.time(Phase::Transfer)
            + self.time(Phase::Unpack)
            + self.time(Phase::Barrier)
    }

    /// Merge another rank's stats into a fleet-wide maximum view: counters
    /// take the per-rank maximum (the critical path), matching how the
    /// thesis reports per-processor volumes.
    pub fn max_merge(&mut self, other: &CommStats) {
        self.elements_sent = self.elements_sent.max(other.elements_sent);
        self.messages_sent = self.messages_sent.max(other.messages_sent);
        if other.remaps.len() > self.remaps.len() {
            self.remaps = other.remaps.clone();
        }
        for p in Phase::ALL {
            if other.time(p) > self.time(p) {
                self.phase_time[p.index()] = other.phase_time[p.index()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remap_accumulates_totals() {
        let mut s = CommStats::new();
        s.push_remap(RemapRecord {
            elements_sent: 10,
            elements_kept: 6,
            messages_sent: 3,
            group_size: 4,
            ..Default::default()
        });
        s.push_remap(RemapRecord {
            elements_sent: 5,
            elements_kept: 11,
            messages_sent: 1,
            group_size: 2,
            ..Default::default()
        });
        assert_eq!(s.remap_count(), 2);
        assert_eq!(s.elements_sent, 15);
        assert_eq!(s.messages_sent, 4);
    }

    #[test]
    fn phase_times_are_separate() {
        let mut s = CommStats::new();
        s.add_time(Phase::Pack, Duration::from_millis(5));
        s.add_time(Phase::Transfer, Duration::from_millis(7));
        s.add_time(Phase::Pack, Duration::from_millis(1));
        assert_eq!(s.time(Phase::Pack), Duration::from_millis(6));
        assert_eq!(s.time(Phase::Transfer), Duration::from_millis(7));
        assert_eq!(s.time(Phase::Unpack), Duration::ZERO);
        assert_eq!(s.communication_time(), Duration::from_millis(13));
    }

    #[test]
    fn max_merge_takes_critical_path() {
        let mut a = CommStats::new();
        a.push_remap(RemapRecord {
            elements_sent: 10,
            ..Default::default()
        });
        a.add_time(Phase::Compute, Duration::from_millis(3));
        let mut b = CommStats::new();
        b.push_remap(RemapRecord {
            elements_sent: 4,
            ..Default::default()
        });
        b.add_time(Phase::Compute, Duration::from_millis(9));
        a.max_merge(&b);
        assert_eq!(a.elements_sent, 10);
        assert_eq!(a.time(Phase::Compute), Duration::from_millis(9));
    }
}
