//! Per-rank instrumentation: the communication metrics of Section 3.4.
//!
//! The thesis evaluates remapping strategies by three metrics — the number
//! of communication steps (`R`), the total volume of elements transferred
//! per processor (`V`), and the number of messages sent (`M`) — plus the
//! wall-clock split between computation and communication phases
//! (Figure 5.4) and, within communication, between packing, transfer and
//! unpacking (Table 5.4). [`CommStats`] records all of them.

use std::time::Duration;

/// The execution phases whose durations the experiments break down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Purely local computation (sorts, merges, compare-exchange steps).
    Compute,
    /// Gathering elements into per-destination long messages (Section 3.3).
    Pack,
    /// The channel transfer itself (send + receive).
    Transfer,
    /// Scattering received elements to their local addresses.
    Unpack,
    /// Time blocked in barriers.
    Barrier,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 5] = [
        Phase::Compute,
        Phase::Pack,
        Phase::Transfer,
        Phase::Unpack,
        Phase::Barrier,
    ];

    fn index(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::Pack => 1,
            Phase::Transfer => 2,
            Phase::Unpack => 3,
            Phase::Barrier => 4,
        }
    }
}

impl From<Phase> for obs::TracePhase {
    fn from(p: Phase) -> obs::TracePhase {
        match p {
            Phase::Compute => obs::TracePhase::Compute,
            Phase::Pack => obs::TracePhase::Pack,
            Phase::Transfer => obs::TracePhase::Transfer,
            Phase::Unpack => obs::TracePhase::Unpack,
            Phase::Barrier => obs::TracePhase::Barrier,
        }
    }
}

/// What one remap (communication step) cost this rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemapRecord {
    /// Elements sent to other ranks (the per-remap contribution to `V`).
    pub elements_sent: u64,
    /// Elements kept locally (`N_keep` of Section 3.2.1).
    pub elements_kept: u64,
    /// Non-empty messages sent (the per-remap contribution to `M`).
    pub messages_sent: u64,
    /// Elements received from other ranks during this step.
    pub elements_received: u64,
    /// Size of the communication group (`2^{N_BitsChanged}`, Lemma 4);
    /// zero when not applicable (e.g. pairwise exchanges).
    pub group_size: u64,
}

impl RemapRecord {
    /// Merge `other` into the field-wise maximum — the per-step critical
    /// path over ranks.
    pub fn max_merge(&mut self, other: &RemapRecord) {
        self.elements_sent = self.elements_sent.max(other.elements_sent);
        self.elements_kept = self.elements_kept.max(other.elements_kept);
        self.messages_sent = self.messages_sent.max(other.messages_sent);
        self.elements_received = self.elements_received.max(other.elements_received);
        self.group_size = self.group_size.max(other.group_size);
    }
}

impl From<RemapRecord> for obs::RemapCounters {
    fn from(r: RemapRecord) -> obs::RemapCounters {
        obs::RemapCounters {
            elements_sent: r.elements_sent,
            elements_kept: r.elements_kept,
            messages_sent: r.messages_sent,
            elements_received: r.elements_received,
            group_size: r.group_size,
        }
    }
}

/// Cumulative per-rank statistics for one run.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    /// One record per communication step, in order — `R = remaps.len()`.
    pub remaps: Vec<RemapRecord>,
    /// Total elements sent (`V`).
    pub elements_sent: u64,
    /// Total non-empty messages sent (`M`).
    pub messages_sent: u64,
    /// Fault-injection counters (all zero unless the machine was started
    /// through [`crate::runtime::run_spmd_chaos`] with faults enabled).
    pub faults: crate::fault::FaultStats,
    /// Remap-plan cache hits recorded by the sort layer (a plan was
    /// reused instead of recomputed). Zero for programs that never go
    /// through a plan cache.
    pub plan_hits: u64,
    /// Remap-plan cache misses recorded by the sort layer (a plan had to
    /// be computed). A warm machine at steady state records only hits.
    pub plan_misses: u64,
    /// Machines in the warm pool this rank's machine belongs to, at the
    /// time the job's stats were harvested. Zero for machines that are
    /// not pool-managed (one-shot `run_spmd` runs, standalone machines).
    /// The serving layer's pools keep this gauge current across
    /// autoscaling, so every job's stats record the pool capacity that
    /// served it.
    pub pool_machines: u64,
    /// Local-kernel invocation counts recorded by the sort layer, as
    /// `(kernel name, count)` pairs in first-seen order. Which kernel
    /// serves a local phase is decided per size class by the dispatch
    /// table in `local_sorts::dispatch`; drivers drain the sort layer's
    /// tally after each compute phase and accumulate it here.
    pub local_kernels: Vec<(&'static str, u64)>,
    /// Wall-clock spent per phase.
    phase_time: [Duration; 5],
}

impl CommStats {
    /// Fresh, all-zero statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of communication steps performed (`R` of Section 3.4.2).
    #[must_use]
    pub fn remap_count(&self) -> u64 {
        self.remaps.len() as u64
    }

    /// Record a completed remap.
    pub fn push_remap(&mut self, record: RemapRecord) {
        self.elements_sent += record.elements_sent;
        self.messages_sent += record.messages_sent;
        self.remaps.push(record);
    }

    /// Count `count` further uses of local kernel `name`.
    pub fn note_kernel(&mut self, name: &'static str, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(entry) = self.local_kernels.iter_mut().find(|(n, _)| *n == name) {
            entry.1 += count;
        } else {
            self.local_kernels.push((name, count));
        }
    }

    /// Uses of local kernel `name` recorded so far.
    #[must_use]
    pub fn kernel_count(&self, name: &str) -> u64 {
        self.local_kernels
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, c)| *c)
    }

    /// Accrue `d` into `phase`.
    pub fn add_time(&mut self, phase: Phase, d: Duration) {
        self.phase_time[phase.index()] += d;
    }

    /// Wall-clock accumulated in `phase`.
    #[must_use]
    pub fn time(&self, phase: Phase) -> Duration {
        self.phase_time[phase.index()]
    }

    /// Total communication wall-clock: pack + transfer + unpack + barrier.
    #[must_use]
    pub fn communication_time(&self) -> Duration {
        self.time(Phase::Pack)
            + self.time(Phase::Transfer)
            + self.time(Phase::Unpack)
            + self.time(Phase::Barrier)
    }

    /// Merge another rank's stats into a fleet-wide maximum view: counters
    /// take the per-rank maximum (the critical path), matching how the
    /// thesis reports per-processor volumes. Remap records are merged
    /// element-wise — step `i` of the result is the field-wise max of every
    /// rank's step `i` — so no rank's traffic is silently discarded.
    pub fn max_merge(&mut self, other: &CommStats) {
        self.elements_sent = self.elements_sent.max(other.elements_sent);
        self.messages_sent = self.messages_sent.max(other.messages_sent);
        self.plan_hits = self.plan_hits.max(other.plan_hits);
        self.plan_misses = self.plan_misses.max(other.plan_misses);
        self.pool_machines = self.pool_machines.max(other.pool_machines);
        // Kernel counts merge by name: the critical-path view keeps each
        // kernel's per-rank maximum, same as the scalar counters.
        for &(name, count) in &other.local_kernels {
            if let Some(entry) = self.local_kernels.iter_mut().find(|(n, _)| *n == name) {
                entry.1 = entry.1.max(count);
            } else {
                self.local_kernels.push((name, count));
            }
        }
        self.faults.max_merge(&other.faults);
        if other.remaps.len() > self.remaps.len() {
            self.remaps
                .resize(other.remaps.len(), RemapRecord::default());
        }
        for (mine, theirs) in self.remaps.iter_mut().zip(&other.remaps) {
            mine.max_merge(theirs);
        }
        for p in Phase::ALL {
            if other.time(p) > self.time(p) {
                self.phase_time[p.index()] = other.phase_time[p.index()];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_remap_accumulates_totals() {
        let mut s = CommStats::new();
        s.push_remap(RemapRecord {
            elements_sent: 10,
            elements_kept: 6,
            messages_sent: 3,
            group_size: 4,
            ..Default::default()
        });
        s.push_remap(RemapRecord {
            elements_sent: 5,
            elements_kept: 11,
            messages_sent: 1,
            group_size: 2,
            ..Default::default()
        });
        assert_eq!(s.remap_count(), 2);
        assert_eq!(s.elements_sent, 15);
        assert_eq!(s.messages_sent, 4);
    }

    #[test]
    fn kernel_counts_accumulate_and_merge_by_name() {
        let mut a = CommStats::new();
        a.note_kernel("radix", 2);
        a.note_kernel("bitonic_net", 5);
        a.note_kernel("radix", 1);
        a.note_kernel("circular_merge", 0); // ignored
        assert_eq!(a.kernel_count("radix"), 3);
        assert_eq!(a.kernel_count("bitonic_net"), 5);
        assert_eq!(a.kernel_count("circular_merge"), 0);

        let mut b = CommStats::new();
        b.note_kernel("radix", 7);
        b.note_kernel("network_merge", 4);
        a.max_merge(&b);
        assert_eq!(a.kernel_count("radix"), 7, "per-name max");
        assert_eq!(a.kernel_count("bitonic_net"), 5, "absent in b, kept");
        assert_eq!(a.kernel_count("network_merge"), 4, "new name merged in");
    }

    #[test]
    fn phase_times_are_separate() {
        let mut s = CommStats::new();
        s.add_time(Phase::Pack, Duration::from_millis(5));
        s.add_time(Phase::Transfer, Duration::from_millis(7));
        s.add_time(Phase::Pack, Duration::from_millis(1));
        assert_eq!(s.time(Phase::Pack), Duration::from_millis(6));
        assert_eq!(s.time(Phase::Transfer), Duration::from_millis(7));
        assert_eq!(s.time(Phase::Unpack), Duration::ZERO);
        assert_eq!(s.communication_time(), Duration::from_millis(13));
    }

    #[test]
    fn max_merge_takes_critical_path() {
        let mut a = CommStats::new();
        a.push_remap(RemapRecord {
            elements_sent: 10,
            ..Default::default()
        });
        a.add_time(Phase::Compute, Duration::from_millis(3));
        let mut b = CommStats::new();
        b.push_remap(RemapRecord {
            elements_sent: 4,
            ..Default::default()
        });
        b.add_time(Phase::Compute, Duration::from_millis(9));
        a.max_merge(&b);
        assert_eq!(a.elements_sent, 10);
        assert_eq!(a.time(Phase::Compute), Duration::from_millis(9));
    }

    #[test]
    fn max_merge_merges_remaps_element_wise() {
        // Rank a: step 0 heavy on volume, step 1 light.
        let mut a = CommStats::new();
        a.push_remap(RemapRecord {
            elements_sent: 100,
            messages_sent: 1,
            ..Default::default()
        });
        a.push_remap(RemapRecord {
            elements_sent: 5,
            messages_sent: 5,
            ..Default::default()
        });
        // Rank b: heavy where a is light, plus an extra third step.
        let mut b = CommStats::new();
        b.push_remap(RemapRecord {
            elements_sent: 7,
            messages_sent: 9,
            elements_kept: 40,
            ..Default::default()
        });
        b.push_remap(RemapRecord {
            elements_sent: 80,
            messages_sent: 2,
            ..Default::default()
        });
        b.push_remap(RemapRecord {
            elements_sent: 3,
            group_size: 8,
            ..Default::default()
        });
        a.max_merge(&b);
        // Step count follows the longest rank; each step is the field-wise
        // max, not a wholesale copy of whichever rank had more steps.
        assert_eq!(a.remap_count(), 3);
        assert_eq!(a.remaps[0].elements_sent, 100, "a's heavy step survives");
        assert_eq!(a.remaps[0].messages_sent, 9, "b's message count survives");
        assert_eq!(a.remaps[0].elements_kept, 40);
        assert_eq!(a.remaps[1].elements_sent, 80);
        assert_eq!(a.remaps[1].messages_sent, 5);
        assert_eq!(a.remaps[2].group_size, 8);
        // And merging the shorter one in again changes nothing.
        let snapshot = a.remaps.clone();
        let shorter = CommStats::new();
        a.max_merge(&shorter);
        assert_eq!(a.remaps, snapshot);
    }
}
